//! Crash-consistent service checkpoints.
//!
//! A [`ServiceCheckpoint`] is the whole multi-tenant engine frozen at a
//! round boundary: every project's shard states and agent core, the
//! shared [`AccountBook`](crowdrl_serve::AccountBook), the
//! [`PoolBroker`](crate::PoolBroker)'s load and quarantine evidence, the
//! admission queue, and the merged trace. The cut happens *after* the
//! round's settlements merged and finished projects finalized — nothing
//! is mid-flight, so a killed service resumed from the snapshot replays
//! the remaining rounds bit-identically to an uninterrupted run, in
//! either [`ExecMode`].
//!
//! The wire format reuses `crowdrl-serve`'s checkpoint codec: one
//! deterministic JSON document, `f64`s as 16-hex-digit IEEE-754 bit
//! patterns (resume must not round-trip money or clocks through decimal
//! text), objects in `BTreeMap` key order so the same checkpoint always
//! renders the same bytes.
//!
//! Restore is guarded by [`service_fingerprint`]: an FNV-1a hash of the
//! service configuration and every submitted spec, with the
//! observationally-neutral knobs canonicalized out first — [`ExecMode`]
//! (checkpoints cross SingleThread↔WorkerPool), the service-wide
//! [`DecideConfig`](crowdrl_core::DecideConfig) override (scoring
//! strategy never changes selections), and the checkpoint cadence
//! itself. A mismatch is a typed
//! [`ServiceError::ConfigMismatch`](crate::ServiceError), not a silent
//! divergence.
//!
//! [`ExecMode`]: crowdrl_serve::ExecMode

use crate::config::{ProjectSpec, ServiceConfig};
use crate::error::ServiceError;
use crowdrl_core::outcome::LabellingOutcome;
use crowdrl_obs::json::{parse, Value};
use crowdrl_serve::checkpoint as codec;
use crowdrl_serve::core_loop::CoreState;
use crowdrl_serve::{AccountState, AssignmentRecord, Event, ExecMode, ServiceMetrics, TraceEvent};
use crowdrl_sim::AnnotatorPool;
use crowdrl_types::{AnswerSet, ClassId, ObjectId, Result, SimTime};

/// Format version stamped into every service checkpoint.
const VERSION: u64 = 1;

/// One shard frozen at a round boundary: its event queue, ledger slice,
/// uid/label mappings, and merge frontier.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// The shard clock (event-queue `now`).
    pub now: SimTime,
    /// Event-queue sequence counter.
    pub next_seq: u64,
    /// Pending events in deterministic (pop) order.
    pub events: Vec<Event>,
    /// Every ledger record this shard ever issued, in local-id order.
    pub records: Vec<AssignmentRecord>,
    /// Shard-local assignment id → service-wide uid.
    pub uids: Vec<u64>,
    /// Shard-local assignment id → sampled label (`None` = dropped).
    pub labels: Vec<Option<ClassId>>,
    /// The horizon the shard was last advanced to.
    pub frontier: SimTime,
}

/// The raw metrics counters of one running project (the
/// [`MetricsCollector`](crowdrl_serve::MetricsCollector) fields,
/// bit-exact).
#[derive(Debug, Clone, Default)]
pub struct CollectorState {
    /// Delivered-answer latencies in arrival order.
    pub latencies: Vec<f64>,
    /// Questions dispatched.
    pub dispatched: usize,
    /// Answers delivered.
    pub delivered: usize,
    /// Answers rejected late.
    pub rejected: usize,
    /// Timeouts fired.
    pub timeouts: usize,
    /// Objects requeued.
    pub requeues: usize,
    /// Refreshes run.
    pub refreshes: usize,
    /// Events processed.
    pub events: usize,
}

/// Everything a running project carries: the agent core's learning
/// state plus the service-side scheduling state around it.
#[derive(Debug, Clone)]
pub struct ActiveProjectState {
    /// The agent core (classifier, DQN, label states, qualities).
    pub core: CoreState,
    /// One snapshot per shard, in shard order.
    pub shards: Vec<ShardState>,
    /// Merged answers across shards, in merge order.
    pub answers: AnswerSet,
    /// Answers merged since the last refresh.
    pub answers_since: usize,
    /// When the last refresh ran.
    pub last_refresh: SimTime,
    /// Per-object requeue counts.
    pub requeues: Vec<usize>,
    /// Objects that exhausted their requeue allowance, ascending.
    pub abandoned: Vec<ObjectId>,
    /// Raw metrics counters.
    pub collector: CollectorState,
    /// When the project activated.
    pub started_at: SimTime,
    /// The core reported all objects labelled.
    pub done: bool,
    /// The last dispatch round was starved by pool contention.
    pub starved: bool,
}

/// One submitted project's state inside a [`ServiceCheckpoint`], tagged
/// by lifecycle stage. `Rejected` and `Queued` carry nothing — both are
/// reconstructed deterministically from the restoring config and spec.
#[derive(Debug, Clone)]
pub enum ProjectCheckpoint {
    /// Refused at admission (policy `Reject`, or shed).
    Rejected,
    /// Waiting for a capacity slot; its fresh core is rebuilt at restore
    /// from the same submission-order seed the original run drew.
    Queued,
    /// Running — the full live state.
    Active(Box<ActiveProjectState>),
    /// Finished; frozen outcome and metrics.
    Completed {
        /// The final labelling outcome.
        outcome: LabellingOutcome,
        /// The final per-project metrics.
        metrics: ServiceMetrics,
    },
    /// Failed mid-run and isolated; frozen metrics plus the reason.
    Failed {
        /// The panic payload or abort reason.
        reason: String,
        /// The metrics accumulated before the failure.
        metrics: ServiceMetrics,
    },
}

/// The whole multi-tenant engine at one consistent round boundary.
#[derive(Debug, Clone)]
pub struct ServiceCheckpoint {
    /// [`service_fingerprint`] of the config + specs that produced this
    /// run; restore refuses a mismatch with a typed error.
    pub fingerprint: u64,
    /// Annotator-pool size the run was started with.
    pub annotators: usize,
    /// The service clock.
    pub now: SimTime,
    /// Scheduling rounds completed.
    pub rounds: usize,
    /// Service-wide assignment counter.
    pub next_uid: u64,
    /// Submission indices still waiting for a slot, FIFO order.
    pub queued: Vec<usize>,
    /// Submission indices of running projects, ascending.
    pub active: Vec<usize>,
    /// Every account's budget state, dense by submission index.
    pub accounts: Vec<AccountState>,
    /// Broker per-annotator in-flight load.
    pub broker_load: Vec<usize>,
    /// Broker per-annotator quarantine evidence (project indices,
    /// ascending).
    pub broker_evidence: Vec<Vec<usize>>,
    /// The merged service trace so far, `(project, event)` pairs.
    pub trace: Vec<(usize, TraceEvent)>,
    /// One entry per submitted project, in submission order.
    pub projects: Vec<ProjectCheckpoint>,
}

impl ServiceCheckpoint {
    /// Serialize to a single deterministic JSON document: the same
    /// checkpoint always renders the same bytes.
    pub fn encode(&self) -> String {
        codec::obj([
            ("version", Value::Num(VERSION as f64)),
            ("fingerprint", codec::hex_u64(self.fingerprint)),
            ("annotators", codec::num(self.annotators)),
            ("now", codec::bits_f64(self.now.as_f64())),
            ("rounds", codec::num(self.rounds)),
            ("next_uid", codec::hex_u64(self.next_uid)),
            ("queued", usizes(&self.queued)),
            ("active", usizes(&self.active)),
            (
                "accounts",
                Value::Arr(self.accounts.iter().map(enc_account).collect()),
            ),
            ("broker_load", usizes(&self.broker_load)),
            (
                "broker_evidence",
                Value::Arr(self.broker_evidence.iter().map(|e| usizes(e)).collect()),
            ),
            (
                "trace",
                Value::Arr(self.trace.iter().map(enc_traced).collect()),
            ),
            (
                "projects",
                Value::Arr(self.projects.iter().map(enc_project).collect()),
            ),
        ])
        .render()
    }

    /// Parse a document produced by [`encode`](Self::encode). Anything
    /// malformed — bad JSON, wrong version, missing fields, inconsistent
    /// shapes — is a typed
    /// [`ServiceError::CorruptCheckpoint`](crate::ServiceError).
    pub fn decode(text: &str) -> Result<Self> {
        let v = parse(text).map_err(|e| corrupt(format!("bad JSON: {e}")))?;
        let version = codec::get_u64_plain(&v, "version")?;
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported service checkpoint version {version} (expected {VERSION})"
            )));
        }
        let accounts = codec::get_arr(&v, "accounts")?
            .iter()
            .map(dec_account)
            .collect::<Result<Vec<_>>>()?;
        let broker_evidence = codec::get_arr(&v, "broker_evidence")?
            .iter()
            .map(|e| dec_usizes(e, "broker_evidence"))
            .collect::<Result<Vec<_>>>()?;
        let trace = codec::get_arr(&v, "trace")?
            .iter()
            .map(dec_traced)
            .collect::<Result<Vec<_>>>()?;
        let projects = codec::get_arr(&v, "projects")?
            .iter()
            .map(dec_project)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            fingerprint: codec::get_hex_u64(&v, "fingerprint")?,
            annotators: codec::get_usize(&v, "annotators")?,
            now: codec::get_sim_time(&v, "now")?,
            rounds: codec::get_usize(&v, "rounds")?,
            next_uid: codec::get_hex_u64(&v, "next_uid")?,
            queued: codec::arr_usize(&v, "queued")?,
            active: codec::arr_usize(&v, "active")?,
            accounts,
            broker_load: codec::arr_usize(&v, "broker_load")?,
            broker_evidence,
            trace,
            projects,
        })
    }
}

/// FNV-1a fingerprint of everything that must match for a checkpoint to
/// resume: the service config with its observationally-neutral knobs
/// canonicalized out (exec mode, the decide override, the checkpoint
/// cadence), the pool size, and each spec's name, priority, config
/// fingerprint and dataset shape.
pub fn service_fingerprint(
    cfg: &ServiceConfig,
    specs: &[ProjectSpec],
    pool: &AnnotatorPool,
) -> u64 {
    let mut canonical = cfg.clone();
    canonical.mode = ExecMode::SingleThread;
    canonical.decide = None;
    canonical.checkpoint_every_rounds = 0;
    let mut h = Fnv::new();
    h.write(format!("{canonical:?}").as_bytes());
    h.write(&(pool.len() as u64).to_le_bytes());
    for spec in specs {
        h.write(spec.name.as_bytes());
        h.write(&spec.priority.to_le_bytes());
        h.write(&spec.config.fingerprint().to_le_bytes());
        h.write(&(spec.dataset.len() as u64).to_le_bytes());
        h.write(&(spec.dataset.num_classes() as u64).to_le_bytes());
    }
    h.0
}

/// Incremental FNV-1a over raw bytes.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn corrupt(msg: impl Into<String>) -> crowdrl_types::Error {
    ServiceError::CorruptCheckpoint(msg.into()).into()
}

fn usizes(xs: &[usize]) -> Value {
    Value::Arr(xs.iter().map(|&x| codec::num(x)).collect())
}

fn dec_usizes(v: &Value, what: &str) -> Result<Vec<usize>> {
    let Value::Arr(items) = v else {
        return Err(corrupt(format!("{what} is not an array")));
    };
    items
        .iter()
        .enumerate()
        .map(|(i, x)| match x {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
            _ => Err(corrupt(format!("{what}[{i}] is not a count"))),
        })
        .collect()
}

fn enc_account(a: &AccountState) -> Value {
    codec::obj([
        ("total", codec::bits_f64(a.total)),
        ("spent", codec::bits_f64(a.spent)),
        ("charges", codec::num(a.charges)),
        ("reserved", codec::bits_f64(a.reserved)),
    ])
}

fn dec_account(v: &Value) -> Result<AccountState> {
    Ok(AccountState {
        total: codec::get_f64_bits(v, "total")?,
        spent: codec::get_f64_bits(v, "spent")?,
        charges: codec::get_usize(v, "charges")?,
        reserved: codec::get_f64_bits(v, "reserved")?,
    })
}

fn enc_traced(entry: &(usize, TraceEvent)) -> Value {
    codec::obj([
        ("p", codec::num(entry.0)),
        ("e", codec::enc_trace_event(&entry.1)),
    ])
}

fn dec_traced(v: &Value) -> Result<(usize, TraceEvent)> {
    Ok((
        codec::get_usize(v, "p")?,
        codec::dec_trace_event(codec::field(v, "e")?)?,
    ))
}

fn enc_labels(labels: &[Option<ClassId>]) -> Value {
    Value::Arr(
        labels
            .iter()
            .map(|l| codec::opt(*l, |c| codec::num(c.0)))
            .collect(),
    )
}

fn dec_labels(v: &Value, key: &str) -> Result<Vec<Option<ClassId>>> {
    codec::get_arr(v, key)?
        .iter()
        .enumerate()
        .map(|(i, x)| match x {
            Value::Null => Ok(None),
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(ClassId(*n as usize))),
            _ => Err(corrupt(format!("{key}[{i}] is not null or a class"))),
        })
        .collect()
}

fn enc_shard(s: &ShardState) -> Value {
    codec::obj([
        ("now", codec::bits_f64(s.now.as_f64())),
        ("next_seq", codec::hex_u64(s.next_seq)),
        (
            "events",
            Value::Arr(s.events.iter().map(codec::enc_event).collect()),
        ),
        (
            "records",
            Value::Arr(s.records.iter().map(codec::enc_record).collect()),
        ),
        (
            "uids",
            Value::Arr(s.uids.iter().map(|&u| codec::hex_u64(u)).collect()),
        ),
        ("labels", enc_labels(&s.labels)),
        ("frontier", codec::bits_f64(s.frontier.as_f64())),
    ])
}

fn dec_shard(v: &Value) -> Result<ShardState> {
    let events = codec::get_arr(v, "events")?
        .iter()
        .map(codec::dec_event)
        .collect::<Result<Vec<_>>>()?;
    let records = codec::get_arr(v, "records")?
        .iter()
        .map(codec::dec_record)
        .collect::<Result<Vec<_>>>()?;
    let uids = codec::get_arr(v, "uids")?
        .iter()
        .enumerate()
        .map(|(i, x)| match x {
            Value::Str(s) => codec::parse_hex_u64(s, "shard uid"),
            _ => Err(corrupt(format!("uids[{i}] is not a hex string"))),
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(ShardState {
        now: codec::get_sim_time(v, "now")?,
        next_seq: codec::get_hex_u64(v, "next_seq")?,
        events,
        records,
        uids,
        labels: dec_labels(v, "labels")?,
        frontier: codec::get_sim_time(v, "frontier")?,
    })
}

fn enc_collector(c: &CollectorState) -> Value {
    codec::obj([
        ("latencies", codec::f64s(&c.latencies)),
        ("dispatched", codec::num(c.dispatched)),
        ("delivered", codec::num(c.delivered)),
        ("rejected", codec::num(c.rejected)),
        ("timeouts", codec::num(c.timeouts)),
        ("requeues", codec::num(c.requeues)),
        ("refreshes", codec::num(c.refreshes)),
        ("events", codec::num(c.events)),
    ])
}

fn dec_collector(v: &Value) -> Result<CollectorState> {
    Ok(CollectorState {
        latencies: codec::get_f64s(v, "latencies")?,
        dispatched: codec::get_usize(v, "dispatched")?,
        delivered: codec::get_usize(v, "delivered")?,
        rejected: codec::get_usize(v, "rejected")?,
        timeouts: codec::get_usize(v, "timeouts")?,
        requeues: codec::get_usize(v, "requeues")?,
        refreshes: codec::get_usize(v, "refreshes")?,
        events: codec::get_usize(v, "events")?,
    })
}

fn enc_outcome(o: &LabellingOutcome) -> Value {
    codec::obj([
        ("labels", enc_labels(&o.labels)),
        (
            "label_states",
            Value::Arr(
                o.label_states
                    .iter()
                    .map(|&l| codec::enc_label_state(l))
                    .collect(),
            ),
        ),
        ("budget_spent", codec::bits_f64(o.budget_spent)),
        ("iterations", codec::num(o.iterations)),
        ("total_answers", codec::num(o.total_answers)),
        ("enriched", codec::num(o.enriched_count)),
        ("fallback", codec::num(o.fallback_count)),
        (
            "trace",
            Value::Arr(o.trace.iter().map(codec::enc_stats).collect()),
        ),
    ])
}

fn dec_outcome(v: &Value) -> Result<LabellingOutcome> {
    let label_states = codec::get_arr(v, "label_states")?
        .iter()
        .map(codec::dec_label_state)
        .collect::<Result<Vec<_>>>()?;
    let trace = codec::get_arr(v, "trace")?
        .iter()
        .map(codec::dec_stats)
        .collect::<Result<Vec<_>>>()?;
    Ok(LabellingOutcome {
        labels: dec_labels(v, "labels")?,
        label_states,
        budget_spent: codec::get_f64_bits(v, "budget_spent")?,
        iterations: codec::get_usize(v, "iterations")?,
        total_answers: codec::get_usize(v, "total_answers")?,
        enriched_count: codec::get_usize(v, "enriched")?,
        fallback_count: codec::get_usize(v, "fallback")?,
        trace,
    })
}

fn enc_metrics(m: &ServiceMetrics) -> Value {
    codec::obj([
        ("dispatched", codec::num(m.dispatched)),
        ("answers_delivered", codec::num(m.answers_delivered)),
        ("answers_rejected", codec::num(m.answers_rejected)),
        ("timeouts", codec::num(m.timeouts)),
        ("requeues", codec::num(m.requeues)),
        ("refreshes", codec::num(m.refreshes)),
        ("events_processed", codec::num(m.events_processed)),
        ("sim_duration", codec::bits_f64(m.sim_duration.as_f64())),
        ("wall_seconds", codec::bits_f64(m.wall_seconds)),
        ("latency_p50", codec::bits_f64(m.latency_p50)),
        ("latency_p95", codec::bits_f64(m.latency_p95)),
        ("latency_p99", codec::bits_f64(m.latency_p99)),
        (
            "answers_per_time_unit",
            codec::bits_f64(m.answers_per_time_unit),
        ),
        ("events_per_second", codec::bits_f64(m.events_per_second)),
        ("budget_spent", codec::bits_f64(m.budget_spent)),
        ("budget_burn_rate", codec::bits_f64(m.budget_burn_rate)),
    ])
}

fn dec_metrics(v: &Value) -> Result<ServiceMetrics> {
    Ok(ServiceMetrics {
        dispatched: codec::get_usize(v, "dispatched")?,
        answers_delivered: codec::get_usize(v, "answers_delivered")?,
        answers_rejected: codec::get_usize(v, "answers_rejected")?,
        timeouts: codec::get_usize(v, "timeouts")?,
        requeues: codec::get_usize(v, "requeues")?,
        refreshes: codec::get_usize(v, "refreshes")?,
        events_processed: codec::get_usize(v, "events_processed")?,
        sim_duration: codec::get_sim_time(v, "sim_duration")?,
        wall_seconds: codec::get_f64_bits(v, "wall_seconds")?,
        latency_p50: codec::get_f64_bits(v, "latency_p50")?,
        latency_p95: codec::get_f64_bits(v, "latency_p95")?,
        latency_p99: codec::get_f64_bits(v, "latency_p99")?,
        answers_per_time_unit: codec::get_f64_bits(v, "answers_per_time_unit")?,
        events_per_second: codec::get_f64_bits(v, "events_per_second")?,
        budget_spent: codec::get_f64_bits(v, "budget_spent")?,
        budget_burn_rate: codec::get_f64_bits(v, "budget_burn_rate")?,
    })
}

fn enc_active(a: &ActiveProjectState) -> Value {
    codec::obj([
        ("core", codec::enc_core(&a.core)),
        (
            "shards",
            Value::Arr(a.shards.iter().map(enc_shard).collect()),
        ),
        ("answers", codec::enc_answers(&a.answers)),
        ("answers_since", codec::num(a.answers_since)),
        ("last_refresh", codec::bits_f64(a.last_refresh.as_f64())),
        ("requeues", usizes(&a.requeues)),
        (
            "abandoned",
            Value::Arr(a.abandoned.iter().map(|o| codec::num(o.index())).collect()),
        ),
        ("collector", enc_collector(&a.collector)),
        ("started_at", codec::bits_f64(a.started_at.as_f64())),
        ("done", Value::Bool(a.done)),
        ("starved", Value::Bool(a.starved)),
    ])
}

fn dec_active(v: &Value) -> Result<ActiveProjectState> {
    let shards = codec::get_arr(v, "shards")?
        .iter()
        .map(dec_shard)
        .collect::<Result<Vec<_>>>()?;
    Ok(ActiveProjectState {
        core: codec::dec_core(codec::field(v, "core")?)?,
        shards,
        answers: codec::dec_answers(v, "answers")?,
        answers_since: codec::get_usize(v, "answers_since")?,
        last_refresh: codec::get_sim_time(v, "last_refresh")?,
        requeues: codec::arr_usize(v, "requeues")?,
        abandoned: codec::arr_usize(v, "abandoned")?
            .into_iter()
            .map(ObjectId)
            .collect(),
        collector: dec_collector(codec::field(v, "collector")?)?,
        started_at: codec::get_sim_time(v, "started_at")?,
        done: codec::get_bool(v, "done")?,
        starved: codec::get_bool(v, "starved")?,
    })
}

fn enc_project(p: &ProjectCheckpoint) -> Value {
    match p {
        ProjectCheckpoint::Rejected => codec::obj([("status", Value::Str("rejected".into()))]),
        ProjectCheckpoint::Queued => codec::obj([("status", Value::Str("queued".into()))]),
        ProjectCheckpoint::Active(state) => codec::obj([
            ("status", Value::Str("active".into())),
            ("state", enc_active(state)),
        ]),
        ProjectCheckpoint::Completed { outcome, metrics } => codec::obj([
            ("status", Value::Str("completed".into())),
            ("outcome", enc_outcome(outcome)),
            ("metrics", enc_metrics(metrics)),
        ]),
        ProjectCheckpoint::Failed { reason, metrics } => codec::obj([
            ("status", Value::Str("failed".into())),
            ("reason", Value::Str(reason.clone())),
            ("metrics", enc_metrics(metrics)),
        ]),
    }
}

fn dec_project(v: &Value) -> Result<ProjectCheckpoint> {
    match codec::get_str(v, "status")? {
        "rejected" => Ok(ProjectCheckpoint::Rejected),
        "queued" => Ok(ProjectCheckpoint::Queued),
        "active" => Ok(ProjectCheckpoint::Active(Box::new(dec_active(
            codec::field(v, "state")?,
        )?))),
        "completed" => Ok(ProjectCheckpoint::Completed {
            outcome: dec_outcome(codec::field(v, "outcome")?)?,
            metrics: dec_metrics(codec::field(v, "metrics")?)?,
        }),
        "failed" => Ok(ProjectCheckpoint::Failed {
            reason: codec::get_str(v, "reason")?.to_string(),
            metrics: dec_metrics(codec::field(v, "metrics")?)?,
        }),
        other => Err(corrupt(format!("unknown project status '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::LabelState;

    fn sample_metrics() -> ServiceMetrics {
        ServiceMetrics {
            dispatched: 10,
            answers_delivered: 7,
            answers_rejected: 1,
            timeouts: 2,
            requeues: 2,
            refreshes: 3,
            events_processed: 19,
            sim_duration: SimTime::new(42.5).unwrap(),
            wall_seconds: 0.0,
            latency_p50: 3.25,
            latency_p95: 9.5,
            latency_p99: 11.0,
            answers_per_time_unit: 7.0 / 42.5,
            events_per_second: 0.0,
            budget_spent: 13.5,
            budget_burn_rate: 13.5 / 42.5,
        }
    }

    fn sample_checkpoint() -> ServiceCheckpoint {
        ServiceCheckpoint {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            annotators: 4,
            now: SimTime::new(17.25).unwrap(),
            rounds: 9,
            next_uid: 123,
            queued: vec![3],
            active: vec![],
            accounts: vec![
                AccountState {
                    total: 60.0,
                    spent: 13.5,
                    charges: 7,
                    reserved: 0.1 + 0.2, // deliberately non-decimal bits
                },
                AccountState {
                    total: 40.0,
                    spent: 0.0,
                    charges: 0,
                    reserved: 0.0,
                },
            ],
            broker_load: vec![1, 0, 2, 0],
            broker_evidence: vec![vec![], vec![0, 2], vec![], vec![1]],
            trace: vec![(
                0,
                TraceEvent::Dispatched {
                    at: SimTime::new(1.5).unwrap(),
                    id: crowdrl_types::AssignmentId(5),
                    object: ObjectId(2),
                    annotator: crowdrl_types::AnnotatorId(1),
                },
            )],
            projects: vec![
                ProjectCheckpoint::Completed {
                    outcome: LabellingOutcome {
                        labels: vec![Some(ClassId(1)), None, Some(ClassId(0))],
                        label_states: vec![
                            LabelState::Inferred(ClassId(1)),
                            LabelState::Unlabelled,
                            LabelState::Enriched(ClassId(0)),
                        ],
                        budget_spent: 13.5,
                        iterations: 3,
                        total_answers: 7,
                        enriched_count: 1,
                        fallback_count: 0,
                        trace: Vec::new(),
                    },
                    metrics: sample_metrics(),
                },
                ProjectCheckpoint::Failed {
                    reason: "injected shard panic at t=10".into(),
                    metrics: sample_metrics(),
                },
                ProjectCheckpoint::Rejected,
                ProjectCheckpoint::Queued,
            ],
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let cp = sample_checkpoint();
        let text = cp.encode();
        let decoded = ServiceCheckpoint::decode(&text).unwrap();
        assert_eq!(decoded.encode(), text);
        assert_eq!(decoded.fingerprint, cp.fingerprint);
        assert_eq!(decoded.queued, cp.queued);
        // The deliberately non-decimal reserved amount survives bit-exact.
        assert_eq!(
            decoded.accounts[0].reserved.to_bits(),
            cp.accounts[0].reserved.to_bits()
        );
    }

    #[test]
    fn corruption_is_rejected_with_a_typed_error() {
        let text = sample_checkpoint().encode();
        let wrong_version = text.replacen("\"version\":1", "\"version\":99", 1);
        let err = ServiceCheckpoint::decode(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version"));
        assert!(ServiceCheckpoint::decode("not json").is_err());
        let truncated = &text[..text.len() / 2];
        assert!(ServiceCheckpoint::decode(truncated).is_err());
    }

    #[test]
    fn fingerprint_canonicalizes_neutral_knobs_and_tracks_real_ones() {
        use crowdrl_sim::PoolSpec;
        use crowdrl_types::rng::seeded;
        let mut rng = seeded(3);
        let pool = PoolSpec::new(4, 1).generate(2, &mut rng).unwrap();
        let config = crowdrl_core::CrowdRlConfig::builder()
            .budget(30.0)
            .build()
            .unwrap();
        let dataset = crowdrl_sim::DatasetSpec::gaussian("d", 10, 3, 2)
            .generate(&mut rng)
            .unwrap();
        let specs = vec![ProjectSpec::new("p", config, dataset)];
        let base = ServiceConfig::default();
        let f = service_fingerprint(&base, &specs, &pool);
        // Exec mode, decide override, and cadence are neutral.
        let pooled = base
            .clone()
            .with_mode(ExecMode::WorkerPool { workers: 4 })
            .with_checkpoint_every(2);
        assert_eq!(service_fingerprint(&pooled, &specs, &pool), f);
        // Capacity is not.
        let narrower = base.clone().with_capacity(1);
        assert_ne!(service_fingerprint(&narrower, &specs, &pool), f);
        // Neither is the spec set.
        let reprioritized = vec![specs[0].clone().with_priority(5)];
        assert_ne!(service_fingerprint(&base, &reprioritized, &pool), f);
    }
}
