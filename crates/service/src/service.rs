//! The service orchestrator: admission, scheduling rounds, the
//! deterministic cross-shard merge, and pool arbitration.
//!
//! # One scheduling round
//!
//! 1. **Horizon.** Take the earliest pending event across every active
//!    shard and add [`ServiceConfig::epoch`] of slack — that is the
//!    round's horizon.
//! 2. **Advance (parallel).** Every shard of every active project
//!    advances to the horizon concurrently on the shared thread pool.
//!    Shards own disjoint state, so this is embarrassingly parallel;
//!    each produces a [`ShardBatch`] of settlements in its own event
//!    order.
//! 3. **Merge (sequential).** Batches are applied in *(project, shard,
//!    event)* order: deliveries charge the project's account
//!    ([`AccountBook`]) and release broker slots, expiries release
//!    reservations and requeue objects. The merged answer stream, money
//!    movement, and trace are therefore identical at any thread count.
//! 4. **Refresh (parallel).** Projects whose watermark is due run truth
//!    inference + DQN training concurrently — each project's
//!    [`AgentCore`] is private state.
//! 5. **Grant (sequential).** Panels are arbitrated through the
//!    [`PoolBroker`] in *(priority descending, submission index
//!    ascending)* order; response sampling for the granted assignments
//!    fans out on the pool (pure per-uid streams), and the assignments
//!    open on their shards.
//!
//! # Why both exec modes are bit-identical
//!
//! [`ExecMode`] does not select an algorithm — it sets the thread cap
//! around *one* implementation (`SingleThread` caps the pool at 1).
//! Every parallel section writes disjoint, pre-indexed slots and every
//! stateful effect happens in the sequential merge/grant phases, so the
//! trace is invariant by construction, not by testing luck.
//!
//! [`ShardBatch`]: crate::shard::ShardBatch
//! [`AccountBook`]: crowdrl_serve::AccountBook
//! [`AgentCore`]: crowdrl_serve::core_loop::AgentCore

use crate::broker::PoolBroker;
use crate::config::{AdmissionPolicy, ProjectSpec, ServiceConfig};
use crate::metrics::{AggregateMetrics, ProjectReport, ServiceOutcome};
use crate::project::{Project, ProjectStatus};
use crate::shard::{Shard, ShardBatch, ShardEvent};
use crowdrl_linalg::pool::{self as tpool, SendPtr};
use crowdrl_obs as obs;
use crowdrl_serve::core_loop::{
    AgentCore, BudgetView, FinalizeRequest, RefreshReply, RefreshRequest,
};
use crowdrl_serve::metrics::MetricsCollector;
use crowdrl_serve::sampler::{sample_outcome, SampleJob, SampledOutcome};
use crowdrl_serve::{AccountBook, ExecMode, TraceEvent};
use crowdrl_sim::{AnnotatorDynamics, AnnotatorPool};
use crowdrl_types::{AnnotatorId, Answer, AnswerSet, AssignmentId, Error, Result, SimTime};
use rand::Rng;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Sampling fan-out granularity (assignments per worker chunk).
const SAMPLE_CHUNK: usize = 64;

/// A multi-tenant labelling service: many concurrent CrowdRL projects
/// over one shared annotator pool. See the module docs for the round
/// structure and the determinism argument.
#[derive(Debug, Clone)]
pub struct Service {
    config: ServiceConfig,
}

impl Service {
    /// A service with the given configuration.
    pub fn new(config: ServiceConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Run every submitted project to completion and return one report
    /// per project plus the merged trace and cross-project aggregate.
    ///
    /// `rng` seeds the shared virtual crowd (latency dynamics) and each
    /// project's agent core, all drawn up front in submission order —
    /// the run itself is deterministic given (specs, pool, rng state,
    /// config) and bit-identical across [`ExecMode`]s.
    pub fn run<R: Rng + ?Sized>(
        &self,
        specs: &[ProjectSpec],
        pool: &AnnotatorPool,
        rng: &mut R,
    ) -> Result<ServiceOutcome> {
        if specs.is_empty() {
            return Err(Error::InvalidParameter(
                "service run needs at least one project".into(),
            ));
        }
        if pool.is_empty() {
            return Err(Error::InvalidParameter("annotator pool is empty".into()));
        }
        for spec in specs {
            spec.config.validate()?;
            if spec.dataset.is_empty() {
                return Err(Error::InvalidParameter(format!(
                    "project '{}' has an empty dataset",
                    spec.name
                )));
            }
        }
        obs::init_from_env();
        let run_span = obs::span("service.run");

        // All randomness is drawn here, in submission order, before any
        // scheduling happens — the engine itself never touches `rng`.
        let dynamics = self.config.dynamics.generate(pool, rng)?;
        let capacities = self.config.annotator_capacity.generate(pool)?;
        let seeds: Vec<u64> = specs.iter().map(|_| rng.random()).collect();

        // ExecMode = thread cap around one shared implementation.
        let threads = match self.config.mode {
            ExecMode::SingleThread => 1,
            ExecMode::WorkerPool { workers } => workers,
        };
        let previous = tpool::max_threads();
        tpool::set_threads(threads);
        let started = Instant::now();
        let result = (|| -> Result<ServiceOutcome> {
            let mut engine = Engine::new(&self.config, specs, pool, &dynamics, capacities, &seeds)?;
            engine.run()?;
            Ok(engine.into_outcome(started.elapsed().as_secs_f64()))
        })();
        tpool::set_threads(previous);
        let outcome = result?;
        drop(run_span);
        outcome.aggregate.emit_trace();
        obs::checkpoint();
        Ok(outcome)
    }
}

/// One granted assignment, between arbitration and opening on a shard.
#[derive(Debug, Clone, Copy)]
struct Grant {
    project: usize,
    shard: usize,
    object: crowdrl_types::ObjectId,
    annotator: crowdrl_types::AnnotatorId,
    cost: f64,
    uid: u64,
}

/// The live scheduling state for one service run.
struct Engine<'a> {
    cfg: &'a ServiceConfig,
    specs: &'a [ProjectSpec],
    pool: &'a AnnotatorPool,
    dynamics: &'a [AnnotatorDynamics],
    /// One slot per submitted project; `None` = refused at admission.
    projects: Vec<Option<Project<'a>>>,
    /// Submission indices waiting for a capacity slot (policy `Queue`).
    queued: VecDeque<usize>,
    /// Submission indices of running projects, ascending (initial fill
    /// and FIFO promotion both preserve submission order).
    active: Vec<usize>,
    accounts: AccountBook,
    broker: PoolBroker,
    trace: Vec<(usize, TraceEvent)>,
    /// Service-wide assignment counter: trace id and sampling-stream
    /// index for every dispatch, across all projects.
    next_uid: u64,
    now: SimTime,
    rounds: usize,
    timeout: SimTime,
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a ServiceConfig,
        specs: &'a [ProjectSpec],
        pool: &'a AnnotatorPool,
        dynamics: &'a [AnnotatorDynamics],
        capacities: Vec<usize>,
        seeds: &[u64],
    ) -> Result<Self> {
        let mut accounts = AccountBook::new();
        let mut projects: Vec<Option<Project<'a>>> = Vec::with_capacity(specs.len());
        let mut queued = VecDeque::new();
        for (i, spec) in specs.iter().enumerate() {
            // Account ids are dense and opened in submission order, so
            // account id == submission index — even for rejected
            // projects (their accounts just never move).
            let account = accounts.open(spec.config.budget)?;
            debug_assert_eq!(account, i);
            let admitted = i < cfg.capacity || cfg.admission == AdmissionPolicy::Queue;
            if !admitted {
                projects.push(None);
                continue;
            }
            let mut project_config = spec.config.clone();
            if let Some(decide) = cfg.decide {
                // Service-wide decide override (observationally neutral:
                // selections are bit-identical across modes).
                project_config.decide = decide;
            }
            let mut core = AgentCore::new(
                project_config,
                &spec.dataset,
                pool,
                seeds[i],
                cfg.quarantine.clone(),
            )?;
            core.set_obs_scope(format!("project.{i}."));
            projects.push(Some(Project {
                index: i,
                name: spec.name.clone(),
                priority: spec.priority,
                core,
                shards: Vec::new(),
                answers: Arc::new(AnswerSet::new(spec.dataset.len())),
                answers_since: 0,
                last_refresh: SimTime::ZERO,
                requeues: vec![0; spec.dataset.len()],
                abandoned: HashSet::new(),
                collector: MetricsCollector::default(),
                started_at: SimTime::ZERO,
                status: ProjectStatus::Queued,
                done: false,
                starved: false,
                outcome: None,
                metrics: None,
            }));
            // Every admitted project starts queued; the first
            // `fill_active` promotes the first `capacity` of them at
            // time zero.
            queued.push_back(i);
        }
        Ok(Self {
            cfg,
            specs,
            pool,
            dynamics,
            projects,
            queued,
            active: Vec::new(),
            accounts,
            broker: PoolBroker::new(capacities, cfg.shared_evidence_threshold),
            trace: Vec::new(),
            next_uid: 0,
            now: SimTime::ZERO,
            rounds: 0,
            timeout: SimTime::new(cfg.timeout)?,
        })
    }

    fn project(&self, i: usize) -> &Project<'a> {
        self.projects[i].as_ref().expect("admitted project")
    }

    fn project_mut(&mut self, i: usize) -> &mut Project<'a> {
        self.projects[i].as_mut().expect("admitted project")
    }

    /// Promote queued projects into free capacity slots, activating them
    /// at the current simulated time.
    fn fill_active(&mut self) -> Result<()> {
        while self.active.len() < self.cfg.capacity {
            let Some(i) = self.queued.pop_front() else {
                break;
            };
            self.activate(i)?;
        }
        Ok(())
    }

    /// Start project `i` now: create its shards, mark it active, and
    /// dispatch its initial stratified panels through the broker.
    fn activate(&mut self, i: usize) -> Result<()> {
        let at = self.now;
        let shards = self
            .cfg
            .shards_per_project
            .min(self.specs[i].dataset.len())
            .max(1);
        let panels = {
            let p = self.project_mut(i);
            p.status = ProjectStatus::Active;
            p.started_at = at;
            p.last_refresh = at;
            p.shards = (0..shards).map(|_| Shard::new(at)).collect();
            p.core.initial_panels()
        };
        self.active.push(i);
        let (grants, contended) = self.grant(i, &panels)?;
        let dispatched = self.dispatch(grants)?;
        self.project_mut(i).starved = contended && dispatched == 0;
        Ok(())
    }

    /// Arbitrate one project's panels through the broker: reserve budget
    /// and take annotator slots for every admissible assignment, in the
    /// deterministic panel order the core proposed. Returns the grants
    /// plus whether anything was refused *for pool contention* (slots
    /// held by in-flight work — the one kind of refusal that resolves by
    /// itself as time advances).
    fn grant(
        &mut self,
        i: usize,
        panels: &[(crowdrl_types::ObjectId, Vec<crowdrl_types::AnnotatorId>)],
    ) -> Result<(Vec<Grant>, bool)> {
        let mut grants = Vec::new();
        let mut contended = false;
        for (object, annotators) in panels {
            for &annotator in annotators {
                let a = annotator.index();
                let cost = self.pool.profile(annotator).cost;
                let shard = {
                    let p = self.project(i);
                    let s = p.shard_of(*object);
                    if p.shards[s].pair_claimed(*object, annotator) {
                        continue;
                    }
                    s
                };
                if !self.accounts.can_reserve(i, cost) {
                    continue;
                }
                if self.broker.blocked(a) {
                    continue;
                }
                if !self.broker.has_slot(a) {
                    contended = true;
                    continue;
                }
                self.accounts.reserve(i, cost)?;
                self.broker.acquire(a);
                let uid = self.next_uid;
                self.next_uid += 1;
                self.trace.push((
                    i,
                    TraceEvent::Dispatched {
                        at: self.now,
                        id: AssignmentId(uid),
                        object: *object,
                        annotator,
                    },
                ));
                grants.push(Grant {
                    project: i,
                    shard,
                    object: *object,
                    annotator,
                    cost,
                    uid,
                });
            }
        }
        self.project_mut(i).collector.dispatched += grants.len();
        Ok((grants, contended))
    }

    /// Sample the virtual crowd's responses for a batch of grants (in
    /// parallel — each uid keys an independent stream) and open the
    /// assignments on their shards.
    fn dispatch(&mut self, grants: Vec<Grant>) -> Result<usize> {
        if grants.is_empty() {
            return Ok(0);
        }
        let jobs: Vec<SampleJob> = grants
            .iter()
            .map(|g| SampleJob {
                id: AssignmentId(g.uid),
                object: g.object,
                annotator: g.annotator,
                truth: self.specs[g.project].dataset.truth(g.object.index()),
            })
            .collect();
        let seed = self.cfg.sampling_seed;
        let (pool_ref, dynamics) = (self.pool, self.dynamics);
        let outcomes: Vec<SampledOutcome> = tpool::map_chunks(jobs.len(), SAMPLE_CHUNK, |range| {
            range
                .map(|k| sample_outcome(seed, jobs[k], pool_ref, dynamics))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let deadline = self.now + self.timeout;
        let now = self.now;
        for (grant, outcome) in grants.iter().zip(outcomes) {
            debug_assert_eq!(outcome.id.0, grant.uid);
            self.project_mut(grant.project).shards[grant.shard].open(
                grant.object,
                grant.annotator,
                grant.cost,
                grant.uid,
                now,
                deadline,
                outcome.response,
            )?;
        }
        Ok(grants.len())
    }

    /// Advance every active shard to `horizon` in parallel, then merge
    /// the settlements sequentially in (project, shard, event) order.
    fn advance_and_merge(&mut self, horizon: SimTime) -> Result<()> {
        let work: Vec<(usize, usize)> = self
            .active
            .iter()
            .flat_map(|&i| (0..self.project(i).shards.len()).map(move |s| (i, s)))
            .collect();
        if work.is_empty() {
            return Ok(());
        }
        let mut ptrs: Vec<SendPtr<Shard>> = Vec::with_capacity(work.len());
        for &(i, s) in &work {
            ptrs.push(SendPtr(
                &mut self.projects[i].as_mut().expect("active project").shards[s] as *mut Shard,
            ));
        }
        let mut batches: Vec<Option<Result<ShardBatch>>> = (0..work.len()).map(|_| None).collect();
        let slots = SendPtr(batches.as_mut_ptr());
        let ptrs_ref = &ptrs;
        // SAFETY: `ptrs` point at distinct shards (disjoint (i, s) pairs
        // over distinct projects), and slot k is written only by chunk k
        // — every write target is private to its chunk.
        tpool::run_chunks(work.len(), move |k| {
            let shard = unsafe { &mut *ptrs_ref[k].get() };
            let batch = shard.advance(horizon);
            unsafe { *slots.get().add(k) = Some(batch) };
        });
        for (k, &(i, _)) in work.iter().enumerate() {
            let batch = batches[k].take().expect("chunk ran")?;
            for event in batch.events {
                self.apply(i, event)?;
            }
            self.project_mut(i).collector.events += batch.processed;
        }
        Ok(())
    }

    /// Apply one settlement to the shared books, the project state, and
    /// the trace. Called only from the sequential merge.
    fn apply(&mut self, i: usize, event: ShardEvent) -> Result<()> {
        match event {
            ShardEvent::Delivered {
                uid,
                object,
                annotator,
                label,
                latency,
                cost,
                at,
            } => {
                self.accounts.charge(i, cost)?;
                self.broker.release(annotator.index());
                let p = self.projects[i].as_mut().expect("active project");
                Arc::make_mut(&mut p.answers).record(Answer {
                    object,
                    annotator,
                    label,
                })?;
                p.answers_since += 1;
                p.collector.delivered += 1;
                p.collector.latencies.push(latency.as_f64());
                self.trace.push((
                    i,
                    TraceEvent::Delivered {
                        at,
                        id: AssignmentId(uid),
                        label,
                    },
                ));
            }
            ShardEvent::RejectedLate { uid, at } => {
                let p = self.projects[i].as_mut().expect("active project");
                p.collector.rejected += 1;
                self.trace.push((
                    i,
                    TraceEvent::Rejected {
                        at,
                        id: AssignmentId(uid),
                    },
                ));
            }
            ShardEvent::Expired {
                uid,
                object,
                annotator,
                cost,
                at,
            } => {
                self.accounts.release(i, cost)?;
                self.broker.release(annotator.index());
                let max_requeues = self.cfg.max_requeues;
                let p = self.projects[i].as_mut().expect("active project");
                p.collector.timeouts += 1;
                p.requeues[object.index()] += 1;
                let requeued = p.requeues[object.index()] <= max_requeues;
                if requeued {
                    p.collector.requeues += 1;
                } else {
                    p.abandoned.insert(object);
                }
                self.trace.push((
                    i,
                    TraceEvent::Expired {
                        at,
                        id: AssignmentId(uid),
                        requeued,
                    },
                ));
            }
        }
        Ok(())
    }

    /// Run truth inference + training for every due project in parallel,
    /// then handle the replies — quarantine evidence, trace, and grant
    /// arbitration — sequentially in `due` order (priority descending,
    /// submission ascending). Returns total assignments dispatched.
    fn refresh_round(&mut self, due: &[usize]) -> Result<usize> {
        if due.is_empty() {
            return Ok(0);
        }
        // One shared snapshot of the pool's free concurrency slots for
        // the whole round: the cores skip exhausted annotators during
        // selection and spread a batch across annotators that can
        // actually take it. The map is read before any of this round's
        // grants, which keeps it identical for every due project
        // regardless of handling order; the broker still arbitrates at
        // grant time, so the snapshot being optimistic across projects
        // costs at most a skipped grant, never an overcommit.
        let slots: HashMap<AnnotatorId, usize> = (0..self.broker.annotators())
            .map(|a| (AnnotatorId(a), self.broker.free_slots(a)))
            .collect();
        let mut requests = Vec::with_capacity(due.len());
        for &i in due {
            let p = self.project(i);
            requests.push(RefreshRequest {
                answers: Arc::clone(&p.answers),
                view: BudgetView {
                    total: self.accounts.total(i),
                    spent: self.accounts.spent(i),
                    reserved: self.accounts.reserved(i),
                },
                blocked: p.blocked(),
                slots: Some(slots.clone()),
                now: p.watermark(),
                answers_since: p.answers_since,
            });
        }
        let mut ptrs: Vec<SendPtr<Project<'a>>> = Vec::with_capacity(due.len());
        for &i in due {
            ptrs.push(SendPtr(
                self.projects[i].as_mut().expect("active project") as *mut Project<'a>
            ));
        }
        let mut replies: Vec<Option<Result<RefreshReply>>> = (0..due.len()).map(|_| None).collect();
        let slots = SendPtr(replies.as_mut_ptr());
        let requests_ref = &requests;
        let ptrs_ref = &ptrs;
        // SAFETY: `due` holds distinct submission indices, so the
        // pointers target distinct projects; slot k is written only by
        // chunk k. Each chunk mutates only its own project's core.
        tpool::run_chunks(due.len(), move |k| {
            let p = unsafe { &mut *ptrs_ref[k].get() };
            let reply = p.core.refresh(&requests_ref[k]).inspect(|_| p.core.train());
            unsafe { *slots.get().add(k) = Some(reply) };
        });
        let mut total_dispatched = 0;
        for (k, &i) in due.iter().enumerate() {
            let reply = replies[k].take().expect("chunk ran")?;
            let at = requests[k].now;
            {
                let p = self.projects[i].as_mut().expect("active project");
                p.collector.refreshes += 1;
                p.answers_since = 0;
                p.last_refresh = at;
                p.done = reply.done;
                let answers = p.answers.total_answers();
                self.trace.push((
                    i,
                    TraceEvent::Refreshed {
                        at,
                        answers,
                        labelled: reply.labelled,
                    },
                ));
            }
            for q in &reply.quarantine {
                self.broker
                    .note_quarantine(i, q.annotator.index(), q.entered);
                self.trace.push((
                    i,
                    if q.entered {
                        TraceEvent::Quarantined {
                            at,
                            annotator: q.annotator,
                        }
                    } else {
                        TraceEvent::QuarantineReleased {
                            at,
                            annotator: q.annotator,
                        }
                    },
                ));
            }
            let (grants, contended) = self.grant(i, &reply.panels)?;
            let dispatched = self.dispatch(grants)?;
            self.project_mut(i).starved = contended && dispatched == 0;
            total_dispatched += dispatched;
        }
        Ok(total_dispatched)
    }

    /// Retire project `i`: cancel in-flight work (returning its budget
    /// reservations and broker slots), withdraw its quarantine evidence,
    /// run the core's final inference, and freeze its metrics.
    fn finalize(&mut self, i: usize) -> Result<()> {
        let released = {
            let p = self.projects[i].as_mut().expect("active project");
            let mut released = Vec::new();
            for shard in &mut p.shards {
                released.extend(shard.cancel_in_flight()?);
            }
            released
        };
        for (annotator, cost) in released {
            self.broker.release(annotator.index());
            self.accounts.release(i, cost)?;
        }
        self.broker.clear_project(i);
        let spent = self.accounts.spent(i);
        let p = self.projects[i].as_mut().expect("active project");
        let request = FinalizeRequest {
            answers: Arc::clone(&p.answers),
            budget_spent: spent,
        };
        let outcome = p.core.finalize(&request)?;
        let duration = p.watermark() - p.started_at;
        let scope = format!("project.{}.", p.index);
        let collector = std::mem::take(&mut p.collector);
        let metrics = collector.finish(duration, 0.0, spent);
        metrics.emit_trace_scoped(&scope);
        p.outcome = Some(outcome);
        p.metrics = Some(metrics);
        p.status = ProjectStatus::Completed;
        self.active.retain(|&x| x != i);
        Ok(())
    }

    /// The round loop (see module docs).
    fn run(&mut self) -> Result<()> {
        self.fill_active()?;
        while !self.active.is_empty() {
            self.rounds += 1;
            let next_event = self
                .active
                .iter()
                .filter_map(|&i| self.project(i).next_event_at())
                .min();
            let had_events = next_event.is_some();
            if let Some(t) = next_event {
                let horizon = SimTime::new(t.as_f64() + self.cfg.epoch)?.max(self.now);
                self.now = horizon;
                self.advance_and_merge(horizon)?;
            }
            let mut due: Vec<usize> = self
                .active
                .iter()
                .copied()
                .filter(|&i| {
                    let p = self.project(i);
                    p.refresh_due(self.cfg.answer_watermark, self.cfg.time_watermark)
                })
                .collect();
            due.sort_by(|&a, &b| {
                self.project(b)
                    .priority
                    .cmp(&self.project(a).priority)
                    .then(a.cmp(&b))
            });
            let dispatched = self.refresh_round(&due)?;
            // A project retires when its core says every object is
            // labelled, or when it is fully drained: no pending events,
            // nothing dispatched this round, and not merely starved by
            // pool contention (contended slots belong to in-flight work
            // elsewhere, so time will advance and free them).
            let mut finished: Vec<usize> = self
                .active
                .iter()
                .copied()
                .filter(|&i| {
                    let p = self.project(i);
                    p.done || (p.is_idle() && !p.starved)
                })
                .collect();
            // Stall-breaker: no events anywhere and a full refresh round
            // dispatched nothing — nobody can ever make progress again.
            if !had_events && dispatched == 0 {
                finished = self.active.clone();
            }
            for i in finished {
                if self.active.contains(&i) {
                    self.finalize(i)?;
                }
            }
            self.fill_active()?;
        }
        Ok(())
    }

    /// Assemble the reports (submission order), aggregate, and trace.
    fn into_outcome(self, wall_seconds: f64) -> ServiceOutcome {
        let mut reports = Vec::with_capacity(self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            match &self.projects[i] {
                None => reports.push(ProjectReport {
                    name: spec.name.clone(),
                    status: ProjectStatus::Rejected,
                    outcome: None,
                    metrics: None,
                }),
                Some(p) => reports.push(ProjectReport {
                    name: p.name.clone(),
                    status: p.status,
                    outcome: p.outcome.clone(),
                    metrics: p.metrics.clone(),
                }),
            }
        }
        let completed: Vec<&ProjectReport> = reports
            .iter()
            .filter(|r| r.status == ProjectStatus::Completed)
            .collect();
        let delivered: Vec<usize> = completed
            .iter()
            .filter_map(|r| r.metrics.as_ref())
            .map(|m| m.answers_delivered)
            .collect();
        let sum = |f: &dyn Fn(&crowdrl_serve::ServiceMetrics) -> usize| -> usize {
            completed
                .iter()
                .filter_map(|r| r.metrics.as_ref())
                .map(f)
                .sum()
        };
        let answers_delivered = sum(&|m| m.answers_delivered);
        let aggregate = AggregateMetrics {
            admitted: reports
                .iter()
                .filter(|r| r.status != ProjectStatus::Rejected)
                .count(),
            rejected: reports
                .iter()
                .filter(|r| r.status == ProjectStatus::Rejected)
                .count(),
            dispatched: sum(&|m| m.dispatched),
            answers_delivered,
            timeouts: sum(&|m| m.timeouts),
            events_processed: sum(&|m| m.events_processed),
            rounds: self.rounds,
            sim_duration: self.now,
            wall_seconds,
            total_spent: (0..self.specs.len()).map(|i| self.accounts.spent(i)).sum(),
            answers_per_time_unit: if self.now.as_f64() > 0.0 {
                answers_delivered as f64 / self.now.as_f64()
            } else {
                0.0
            },
            fairness_spread: AggregateMetrics::spread(&delivered),
        };
        ServiceOutcome {
            reports,
            trace: self.trace,
            aggregate,
        }
    }
}
