//! The service orchestrator: admission, scheduling rounds, the
//! deterministic cross-shard merge, and pool arbitration.
//!
//! # One scheduling round
//!
//! 1. **Horizon.** Take the earliest pending event across every active
//!    shard and add [`ServiceConfig::epoch`] of slack — that is the
//!    round's horizon.
//! 2. **Advance (parallel).** Every shard of every active project
//!    advances to the horizon concurrently on the shared thread pool.
//!    Shards own disjoint state, so this is embarrassingly parallel;
//!    each produces a [`ShardBatch`] of settlements in its own event
//!    order.
//! 3. **Merge (sequential).** Batches are applied in *(project, shard,
//!    event)* order: deliveries charge the project's account
//!    ([`AccountBook`]) and release broker slots, expiries release
//!    reservations and requeue objects. The merged answer stream, money
//!    movement, and trace are therefore identical at any thread count.
//! 4. **Refresh (parallel).** Projects whose watermark is due run truth
//!    inference + DQN training concurrently — each project's
//!    [`AgentCore`] is private state.
//! 5. **Grant (sequential).** Panels are arbitrated through the
//!    [`PoolBroker`] in *(priority descending, submission index
//!    ascending)* order; response sampling for the granted assignments
//!    fans out on the pool (pure per-uid streams), and the assignments
//!    open on their shards.
//!
//! # Why both exec modes are bit-identical
//!
//! [`ExecMode`] does not select an algorithm — it sets the thread cap
//! around *one* implementation (`SingleThread` caps the pool at 1).
//! Every parallel section writes disjoint, pre-indexed slots and every
//! stateful effect happens in the sequential merge/grant phases, so the
//! trace is invariant by construction, not by testing luck.
//!
//! [`ShardBatch`]: crate::shard::ShardBatch
//! [`AccountBook`]: crowdrl_serve::AccountBook
//! [`AgentCore`]: crowdrl_serve::core_loop::AgentCore

use crate::broker::PoolBroker;
use crate::checkpoint::{
    service_fingerprint, ActiveProjectState, CollectorState, ProjectCheckpoint, ServiceCheckpoint,
};
use crate::config::{AdmissionPolicy, ProjectSpec, ServiceConfig};
use crate::error::ServiceError;
use crate::metrics::{AggregateMetrics, ProjectReport, ServiceOutcome};
use crate::project::{Project, ProjectStatus};
use crate::shard::{Shard, ShardBatch, ShardEvent};
use crowdrl_linalg::pool::{self as tpool, SendPtr};
use crowdrl_obs as obs;
use crowdrl_serve::core_loop::{
    AgentCore, BudgetView, FinalizeRequest, RefreshReply, RefreshRequest,
};
use crowdrl_serve::metrics::MetricsCollector;
use crowdrl_serve::sampler::{sample_outcome, SampleJob, SampledOutcome};
use crowdrl_serve::{AccountBook, ExecMode, RunControl, TraceEvent};
use crowdrl_sim::{AnnotatorDynamics, AnnotatorPool};
use crowdrl_types::{
    AnnotatorId, Answer, AnswerSet, AssignmentId, Error, ObjectId, Result, SimTime,
};
use rand::Rng;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Sampling fan-out granularity (assignments per worker chunk).
const SAMPLE_CHUNK: usize = 64;

/// Receives each [`ServiceCheckpoint`] as it is cut and decides whether
/// the run continues (mirrors `crowdrl-serve`'s `CheckpointSink`).
pub type ServiceCheckpointSink<'s> = &'s mut dyn FnMut(ServiceCheckpoint) -> RunControl;

/// How a checkpoint-aware service run ended.
#[derive(Debug)]
pub enum ServiceRunOutcome {
    /// Every project ran to completion (or failure/rejection) and the
    /// full outcome is available.
    Completed(Box<ServiceOutcome>),
    /// A checkpoint sink requested a halt mid-run. The checkpoint just
    /// handed to the sink resumes the run exactly where it stopped.
    Halted,
}

/// A multi-tenant labelling service: many concurrent CrowdRL projects
/// over one shared annotator pool. See the module docs for the round
/// structure and the determinism argument.
#[derive(Debug, Clone)]
pub struct Service {
    config: ServiceConfig,
}

impl Service {
    /// A service with the given configuration.
    pub fn new(config: ServiceConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Run every submitted project to completion and return one report
    /// per project plus the merged trace and cross-project aggregate.
    ///
    /// `rng` seeds the shared virtual crowd (latency dynamics) and each
    /// project's agent core, all drawn up front in submission order —
    /// the run itself is deterministic given (specs, pool, rng state,
    /// config) and bit-identical across [`ExecMode`]s.
    pub fn run<R: Rng + ?Sized>(
        &self,
        specs: &[ProjectSpec],
        pool: &AnnotatorPool,
        rng: &mut R,
    ) -> Result<ServiceOutcome> {
        match self.run_inner(specs, pool, rng, None, None)? {
            ServiceRunOutcome::Completed(outcome) => Ok(*outcome),
            ServiceRunOutcome::Halted => unreachable!("no sink, nothing can halt"),
        }
    }

    /// [`run`](Self::run), cutting a [`ServiceCheckpoint`] into `sink`
    /// every [`ServiceConfig::checkpoint_every_rounds`] scheduling
    /// rounds. The sink returning [`RunControl::Halt`] stops the run as
    /// [`ServiceRunOutcome::Halted`]; [`resume`](Self::resume) with the
    /// last checkpoint finishes it bit-identically to an uninterrupted
    /// run — in either [`ExecMode`].
    pub fn run_with_checkpoints<R: Rng + ?Sized>(
        &self,
        specs: &[ProjectSpec],
        pool: &AnnotatorPool,
        rng: &mut R,
        sink: ServiceCheckpointSink<'_>,
    ) -> Result<ServiceRunOutcome> {
        self.run_inner(specs, pool, rng, Some(sink), None)
    }

    /// Resume a halted run from `checkpoint`. `specs`, `pool`, and the
    /// rng must be handed over exactly as they were to the original run
    /// (the checkpoint's config fingerprint is verified and a mismatch
    /// is a typed [`ServiceError::ConfigMismatch`]); the rng is consumed
    /// identically, so the same seeding discipline reproduces the same
    /// virtual crowd.
    pub fn resume<R: Rng + ?Sized>(
        &self,
        specs: &[ProjectSpec],
        pool: &AnnotatorPool,
        rng: &mut R,
        checkpoint: ServiceCheckpoint,
        sink: ServiceCheckpointSink<'_>,
    ) -> Result<ServiceRunOutcome> {
        self.run_inner(specs, pool, rng, Some(sink), Some(checkpoint))
    }

    fn run_inner<R: Rng + ?Sized>(
        &self,
        specs: &[ProjectSpec],
        pool: &AnnotatorPool,
        rng: &mut R,
        mut sink: Option<ServiceCheckpointSink<'_>>,
        checkpoint: Option<ServiceCheckpoint>,
    ) -> Result<ServiceRunOutcome> {
        if specs.is_empty() {
            return Err(Error::InvalidParameter(
                "service run needs at least one project".into(),
            ));
        }
        if pool.is_empty() {
            return Err(Error::InvalidParameter("annotator pool is empty".into()));
        }
        for spec in specs {
            spec.config.validate()?;
            if spec.dataset.is_empty() {
                return Err(Error::InvalidParameter(format!(
                    "project '{}' has an empty dataset",
                    spec.name
                )));
            }
        }
        obs::init_from_env();
        let run_span = obs::span("service.run");

        // All randomness is drawn here, in submission order, before any
        // scheduling happens — the engine itself never touches `rng`.
        // Resume draws identically, so the same rng reproduces the same
        // virtual crowd and the same per-project seeds.
        let dynamics = self.config.dynamics.generate(pool, rng)?;
        let capacities = self.config.annotator_capacity.generate(pool)?;
        let seeds: Vec<u64> = specs.iter().map(|_| rng.random()).collect();

        // ExecMode = thread cap around one shared implementation.
        let threads = match self.config.mode {
            ExecMode::SingleThread => 1,
            ExecMode::WorkerPool { workers } => workers,
        };
        let previous = tpool::max_threads();
        tpool::set_threads(threads);
        let started = Instant::now();
        let result = (|| -> Result<ServiceRunOutcome> {
            let mut engine = Engine::new(
                &self.config,
                specs,
                pool,
                &dynamics,
                capacities.clone(),
                &seeds,
            )?;
            if let Some(cp) = checkpoint {
                let t0 = Instant::now();
                engine.restore(cp, capacities)?;
                obs::counter_add("service.checkpoint.restore", 1);
                obs::gauge(
                    "service.checkpoint.restore_ns",
                    t0.elapsed().as_nanos() as f64,
                );
            }
            if engine.run(&mut sink)? {
                return Ok(ServiceRunOutcome::Halted);
            }
            Ok(ServiceRunOutcome::Completed(Box::new(
                engine.into_outcome(started.elapsed().as_secs_f64()),
            )))
        })();
        tpool::set_threads(previous);
        let outcome = result?;
        drop(run_span);
        if let ServiceRunOutcome::Completed(o) = &outcome {
            o.aggregate.emit_trace();
        }
        obs::checkpoint();
        Ok(outcome)
    }
}

/// One granted assignment, between arbitration and opening on a shard.
#[derive(Debug, Clone, Copy)]
struct Grant {
    project: usize,
    shard: usize,
    object: crowdrl_types::ObjectId,
    annotator: crowdrl_types::AnnotatorId,
    cost: f64,
    uid: u64,
}

/// The live scheduling state for one service run.
struct Engine<'a> {
    cfg: &'a ServiceConfig,
    specs: &'a [ProjectSpec],
    pool: &'a AnnotatorPool,
    dynamics: &'a [AnnotatorDynamics],
    /// One slot per submitted project; `None` = refused at admission.
    projects: Vec<Option<Project<'a>>>,
    /// Submission indices waiting for a capacity slot (policy `Queue`).
    queued: VecDeque<usize>,
    /// Submission indices of running projects, ascending (initial fill
    /// and FIFO promotion both preserve submission order).
    active: Vec<usize>,
    accounts: AccountBook,
    broker: PoolBroker,
    trace: Vec<(usize, TraceEvent)>,
    /// Service-wide assignment counter: trace id and sampling-stream
    /// index for every dispatch, across all projects.
    next_uid: u64,
    now: SimTime,
    rounds: usize,
    timeout: SimTime,
    /// Per-submission typed error, `None` for projects that are healthy
    /// (or still running). Admission refusals are recorded at
    /// construction, mid-run failures by [`fail_project`](Self::fail_project).
    errors: Vec<Option<ServiceError>>,
    /// How many submissions the bounded admission queue shed (a subset
    /// of the rejected count). Recomputed deterministically from the
    /// config at construction, so checkpoints need not carry it.
    shed: usize,
}

/// What one shard's parallel advance produced: a normal batch, or the
/// contained payload of a panic (injected or genuine). The
/// `catch_unwind` lives *inside* the chunk closure, so a panicking
/// tenant can never poison the shared thread pool or its siblings.
enum AdvanceSlot {
    Batch(Result<ShardBatch>),
    Panicked(String),
}

/// Render a caught panic payload for the typed `ProjectFailed` error.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a ServiceConfig,
        specs: &'a [ProjectSpec],
        pool: &'a AnnotatorPool,
        dynamics: &'a [AnnotatorDynamics],
        capacities: Vec<usize>,
        seeds: &[u64],
    ) -> Result<Self> {
        let mut accounts = AccountBook::new();
        let mut projects: Vec<Option<Project<'a>>> = Vec::with_capacity(specs.len());
        let mut queued = VecDeque::new();
        let mut errors: Vec<Option<ServiceError>> = Vec::with_capacity(specs.len());
        let mut shed = 0usize;
        for (i, spec) in specs.iter().enumerate() {
            // Account ids are dense and opened in submission order, so
            // account id == submission index — even for rejected
            // projects (their accounts just never move).
            let account = accounts.open(spec.config.budget)?;
            debug_assert_eq!(account, i);
            let over = i >= cfg.capacity;
            // Overload shedding: under `Queue` with a bounded depth,
            // submissions past `capacity + max_queue_depth` are refused
            // up front instead of parked forever.
            let queue_full = cfg.max_queue_depth > 0 && i >= cfg.capacity + cfg.max_queue_depth;
            let admitted = !over || (cfg.admission == AdmissionPolicy::Queue && !queue_full);
            if !admitted {
                let reason = if cfg.admission == AdmissionPolicy::Reject {
                    format!("service at capacity ({})", cfg.capacity)
                } else {
                    shed += 1;
                    obs::counter_add("admission.shed", 1);
                    format!(
                        "admission queue full ({} running + {} queued) — shed",
                        cfg.capacity, cfg.max_queue_depth
                    )
                };
                errors.push(Some(ServiceError::AdmissionRejected { project: i, reason }));
                projects.push(None);
                continue;
            }
            errors.push(None);
            let mut project_config = spec.config.clone();
            if let Some(decide) = cfg.decide {
                // Service-wide decide override (observationally neutral:
                // selections are bit-identical across modes).
                project_config.decide = decide;
            }
            let mut core = AgentCore::new(
                project_config,
                &spec.dataset,
                pool,
                seeds[i],
                cfg.quarantine.clone(),
            )?;
            core.set_obs_scope(format!("project.{i}."));
            projects.push(Some(Project {
                index: i,
                name: spec.name.clone(),
                priority: spec.priority,
                core,
                shards: Vec::new(),
                answers: Arc::new(AnswerSet::new(spec.dataset.len())),
                answers_since: 0,
                last_refresh: SimTime::ZERO,
                requeues: vec![0; spec.dataset.len()],
                abandoned: HashSet::new(),
                collector: MetricsCollector::default(),
                started_at: SimTime::ZERO,
                status: ProjectStatus::Queued,
                done: false,
                starved: false,
                outcome: None,
                metrics: None,
            }));
            // Every admitted project starts queued; the first
            // `fill_active` promotes the first `capacity` of them at
            // time zero.
            queued.push_back(i);
        }
        Ok(Self {
            cfg,
            specs,
            pool,
            dynamics,
            projects,
            queued,
            active: Vec::new(),
            accounts,
            broker: PoolBroker::new(capacities, cfg.shared_evidence_threshold),
            trace: Vec::new(),
            next_uid: 0,
            now: SimTime::ZERO,
            rounds: 0,
            timeout: SimTime::new(cfg.timeout)?,
            errors,
            shed,
        })
    }

    fn project(&self, i: usize) -> &Project<'a> {
        self.projects[i].as_ref().expect("admitted project")
    }

    fn project_mut(&mut self, i: usize) -> &mut Project<'a> {
        self.projects[i].as_mut().expect("admitted project")
    }

    /// Promote queued projects into free capacity slots, activating them
    /// at the current simulated time.
    ///
    /// When [`ServiceConfig::min_free_slot_ratio`] is set, promotion is
    /// deferred while the shared pool's free-slot ratio sits below the
    /// floor — the service degrades to queueing instead of piling a
    /// fresh tenant's initial burst onto saturated annotators. The floor
    /// never deadlocks: with no active tenants the queue must drain
    /// regardless of load, so an empty active set always promotes.
    fn fill_active(&mut self) -> Result<()> {
        while self.active.len() < self.cfg.capacity {
            if self.queued.is_empty() {
                break;
            }
            if self.cfg.min_free_slot_ratio > 0.0 && !self.active.is_empty() {
                let total = self.broker.total_capacity();
                let free = total.saturating_sub(self.broker.total_load());
                if (free as f64) < self.cfg.min_free_slot_ratio * total as f64 {
                    break;
                }
            }
            let i = self.queued.pop_front().expect("checked non-empty");
            self.activate(i)?;
        }
        Ok(())
    }

    /// Start project `i` now: create its shards, mark it active, and
    /// dispatch its initial stratified panels through the broker.
    fn activate(&mut self, i: usize) -> Result<()> {
        let at = self.now;
        let shards = self
            .cfg
            .shards_per_project
            .min(self.specs[i].dataset.len())
            .max(1);
        let panels = {
            let p = self.project_mut(i);
            p.status = ProjectStatus::Active;
            p.started_at = at;
            p.last_refresh = at;
            p.shards = (0..shards).map(|_| Shard::new(at)).collect();
            p.core.initial_panels()
        };
        self.active.push(i);
        let (grants, contended) = self.grant(i, &panels)?;
        let dispatched = self.dispatch(grants)?;
        self.project_mut(i).starved = contended && dispatched == 0;
        Ok(())
    }

    /// Arbitrate one project's panels through the broker: reserve budget
    /// and take annotator slots for every admissible assignment, in the
    /// deterministic panel order the core proposed. Returns the grants
    /// plus whether anything was refused *for pool contention* (slots
    /// held by in-flight work — the one kind of refusal that resolves by
    /// itself as time advances).
    fn grant(
        &mut self,
        i: usize,
        panels: &[(crowdrl_types::ObjectId, Vec<crowdrl_types::AnnotatorId>)],
    ) -> Result<(Vec<Grant>, bool)> {
        let mut grants = Vec::new();
        let mut contended = false;
        for (object, annotators) in panels {
            for &annotator in annotators {
                let a = annotator.index();
                let cost = self.pool.profile(annotator).cost;
                let shard = {
                    let p = self.project(i);
                    let s = p.shard_of(*object);
                    if p.shards[s].pair_claimed(*object, annotator) {
                        continue;
                    }
                    s
                };
                if !self.accounts.can_reserve(i, cost) {
                    continue;
                }
                if self.broker.blocked(a) {
                    continue;
                }
                if !self.broker.has_slot(a) {
                    contended = true;
                    continue;
                }
                self.accounts.reserve(i, cost)?;
                self.broker.acquire(a);
                let uid = self.next_uid;
                self.next_uid += 1;
                self.trace.push((
                    i,
                    TraceEvent::Dispatched {
                        at: self.now,
                        id: AssignmentId(uid),
                        object: *object,
                        annotator,
                    },
                ));
                grants.push(Grant {
                    project: i,
                    shard,
                    object: *object,
                    annotator,
                    cost,
                    uid,
                });
            }
        }
        self.project_mut(i).collector.dispatched += grants.len();
        Ok((grants, contended))
    }

    /// Sample the virtual crowd's responses for a batch of grants (in
    /// parallel — each uid keys an independent stream) and open the
    /// assignments on their shards.
    fn dispatch(&mut self, grants: Vec<Grant>) -> Result<usize> {
        if grants.is_empty() {
            return Ok(0);
        }
        let jobs: Vec<SampleJob> = grants
            .iter()
            .map(|g| SampleJob {
                id: AssignmentId(g.uid),
                object: g.object,
                annotator: g.annotator,
                truth: self.specs[g.project].dataset.truth(g.object.index()),
            })
            .collect();
        let seed = self.cfg.sampling_seed;
        let (pool_ref, dynamics) = (self.pool, self.dynamics);
        let outcomes: Vec<SampledOutcome> = tpool::map_chunks(jobs.len(), SAMPLE_CHUNK, |range| {
            range
                .map(|k| sample_outcome(seed, jobs[k], pool_ref, dynamics))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let deadline = self.now + self.timeout;
        let now = self.now;
        let cfg = self.cfg;
        for (grant, outcome) in grants.iter().zip(outcomes) {
            debug_assert_eq!(outcome.id.0, grant.uid);
            // Project-scoped outage windows push the arrival past the
            // window's end (fixed point — windows may chain); an arrival
            // deferred past the deadline late-rejects as usual. Untouched
            // arrivals keep their exact latency bits, so projects without
            // outages are bit-identical to a no-fault run.
            let response = match outcome.response {
                Some((label, latency)) => {
                    let arrival = now + latency;
                    let deferred = cfg.faults.defer(grant.project, arrival.as_f64());
                    if deferred == arrival.as_f64() {
                        Some((label, latency))
                    } else {
                        obs::counter_add("fault.injected.outage", 1);
                        Some((label, SimTime::new(deferred)? - now))
                    }
                }
                None => None,
            };
            self.project_mut(grant.project).shards[grant.shard].open(
                grant.object,
                grant.annotator,
                grant.cost,
                grant.uid,
                now,
                deadline,
                response,
            )?;
        }
        Ok(grants.len())
    }

    /// Advance every active shard to `horizon` in parallel, then merge
    /// the settlements sequentially in (project, shard, event) order.
    ///
    /// Every chunk runs under `catch_unwind`, so a panicking shard —
    /// injected by the fault plan or genuine — is contained to its own
    /// project: the offender is failed via
    /// [`fail_project`](Self::fail_project) (releasing everything it
    /// held) while every other tenant's batch merges normally.
    fn advance_and_merge(&mut self, horizon: SimTime) -> Result<()> {
        let work: Vec<(usize, usize)> = self
            .active
            .iter()
            .flat_map(|&i| (0..self.project(i).shards.len()).map(move |s| (i, s)))
            .collect();
        if work.is_empty() {
            return Ok(());
        }
        // Injected panics fire on the project's first shard, in the
        // first round whose horizon passes the scheduled time.
        let panic_at: Vec<Option<f64>> = work
            .iter()
            .map(|&(i, s)| {
                if s != 0 {
                    return None;
                }
                self.cfg
                    .faults
                    .panic_at(i)
                    .filter(|&at| at <= horizon.as_f64())
            })
            .collect();
        let mut ptrs: Vec<SendPtr<Shard>> = Vec::with_capacity(work.len());
        for &(i, s) in &work {
            ptrs.push(SendPtr(
                &mut self.projects[i].as_mut().expect("active project").shards[s] as *mut Shard,
            ));
        }
        let mut batches: Vec<Option<AdvanceSlot>> = (0..work.len()).map(|_| None).collect();
        let slots = SendPtr(batches.as_mut_ptr());
        let ptrs_ref = &ptrs;
        let panic_ref = &panic_at;
        // SAFETY: `ptrs` point at distinct shards (disjoint (i, s) pairs
        // over distinct projects), and slot k is written only by chunk k
        // — every write target is private to its chunk. A panic unwinds
        // only out of `Shard::advance`, whose staged-batch design keeps
        // the shard's settled-but-unreported events recoverable.
        tpool::run_chunks(work.len(), move |k| {
            let shard = unsafe { &mut *ptrs_ref[k].get() };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(at) = panic_ref[k] {
                    panic!("injected shard panic at t={at}");
                }
                shard.advance(horizon)
            }));
            let slot = match result {
                Ok(batch) => AdvanceSlot::Batch(batch),
                Err(payload) => AdvanceSlot::Panicked(panic_message(payload.as_ref())),
            };
            unsafe { *slots.get().add(k) = Some(slot) };
        });
        // Merge: healthy projects apply normally; a panicked project's
        // sibling batches are diverted to the containment path so their
        // held slots and reservations are released, never charged.
        let mut failed: Vec<(usize, String)> = Vec::new();
        let mut orphaned: Vec<(usize, ShardBatch)> = Vec::new();
        for (k, &(i, _)) in work.iter().enumerate() {
            match batches[k].take().expect("chunk ran") {
                AdvanceSlot::Panicked(msg) => {
                    if !failed.iter().any(|(p, _)| *p == i) {
                        failed.push((i, msg));
                    }
                }
                AdvanceSlot::Batch(batch) => {
                    let batch = batch?;
                    if failed.iter().any(|(p, _)| *p == i) {
                        orphaned.push((i, batch));
                        continue;
                    }
                    for event in batch.events {
                        self.apply(i, event)?;
                    }
                    self.project_mut(i).collector.events += batch.processed;
                }
            }
        }
        for (i, msg) in failed {
            let siblings: Vec<ShardBatch> = orphaned
                .iter_mut()
                .filter(|(p, _)| *p == i)
                .map(|(_, b)| std::mem::take(b))
                .collect();
            self.fail_project(i, format!("shard panicked: {msg}"), siblings)?;
        }
        Ok(())
    }

    /// Contain a mid-run failure to project `i`: void its unmerged
    /// settlements (releasing the broker slots and budget reservations
    /// they held — never charging), cancel its in-flight assignments,
    /// withdraw its quarantine evidence from the shared broker, freeze
    /// its metrics, and record the typed error. Every other tenant keeps
    /// running; the freed capacity slot is refilled from the admission
    /// queue at the end of the round.
    fn fail_project(&mut self, i: usize, reason: String, orphaned: Vec<ShardBatch>) -> Result<()> {
        // Settlements that never merged: sibling shards' returned
        // batches plus whatever the interrupted advance had staged.
        let mut batches = orphaned;
        {
            let p = self.projects[i].as_mut().expect("failing project");
            for shard in &mut p.shards {
                batches.push(shard.drain_staged());
            }
        }
        for batch in batches {
            for event in batch.events {
                match event {
                    ShardEvent::Delivered {
                        annotator, cost, ..
                    }
                    | ShardEvent::Expired {
                        annotator, cost, ..
                    } => {
                        self.broker.release(annotator.index());
                        self.accounts.release(i, cost)?;
                    }
                    ShardEvent::RejectedLate { .. } => {}
                }
            }
        }
        // In-flight assignments: settle them expired, return the slots
        // and reservations.
        let released = {
            let p = self.projects[i].as_mut().expect("failing project");
            let mut released = Vec::new();
            for shard in &mut p.shards {
                released.extend(shard.cancel_in_flight()?);
            }
            released
        };
        for (annotator, cost) in released {
            self.broker.release(annotator.index());
            self.accounts.release(i, cost)?;
        }
        self.broker.clear_project(i);
        let spent = self.accounts.spent(i);
        let p = self.projects[i].as_mut().expect("failing project");
        let duration = p.watermark() - p.started_at;
        let scope = format!("project.{}.", p.index);
        let collector = std::mem::take(&mut p.collector);
        let metrics = collector.finish(duration, 0.0, spent);
        metrics.emit_trace_scoped(&scope);
        p.metrics = Some(metrics);
        p.status = ProjectStatus::Failed;
        self.errors[i] = Some(ServiceError::ProjectFailed { project: i, reason });
        obs::counter_add("service.project_failed", 1);
        self.active.retain(|&x| x != i);
        Ok(())
    }

    /// Fail any active project whose scheduled abort time the service
    /// clock has passed.
    fn apply_aborts(&mut self) -> Result<()> {
        let due: Vec<(usize, f64)> = self
            .active
            .iter()
            .filter_map(|&i| {
                self.cfg
                    .faults
                    .abort_at(i)
                    .filter(|&at| at <= self.now.as_f64())
                    .map(|at| (i, at))
            })
            .collect();
        for (i, at) in due {
            self.fail_project(
                i,
                format!("fault plan aborted the project at t={at}"),
                Vec::new(),
            )?;
        }
        Ok(())
    }

    /// Apply one settlement to the shared books, the project state, and
    /// the trace. Called only from the sequential merge.
    fn apply(&mut self, i: usize, event: ShardEvent) -> Result<()> {
        match event {
            ShardEvent::Delivered {
                uid,
                object,
                annotator,
                label,
                latency,
                cost,
                at,
            } => {
                self.accounts.charge(i, cost)?;
                self.broker.release(annotator.index());
                let p = self.projects[i].as_mut().expect("active project");
                Arc::make_mut(&mut p.answers).record(Answer {
                    object,
                    annotator,
                    label,
                })?;
                p.answers_since += 1;
                p.collector.delivered += 1;
                p.collector.latencies.push(latency.as_f64());
                self.trace.push((
                    i,
                    TraceEvent::Delivered {
                        at,
                        id: AssignmentId(uid),
                        label,
                    },
                ));
            }
            ShardEvent::RejectedLate { uid, at } => {
                let p = self.projects[i].as_mut().expect("active project");
                p.collector.rejected += 1;
                self.trace.push((
                    i,
                    TraceEvent::Rejected {
                        at,
                        id: AssignmentId(uid),
                    },
                ));
            }
            ShardEvent::Expired {
                uid,
                object,
                annotator,
                cost,
                at,
            } => {
                self.accounts.release(i, cost)?;
                self.broker.release(annotator.index());
                let max_requeues = self.cfg.max_requeues;
                let p = self.projects[i].as_mut().expect("active project");
                p.collector.timeouts += 1;
                p.requeues[object.index()] += 1;
                let requeued = p.requeues[object.index()] <= max_requeues;
                if requeued {
                    p.collector.requeues += 1;
                } else {
                    p.abandoned.insert(object);
                }
                self.trace.push((
                    i,
                    TraceEvent::Expired {
                        at,
                        id: AssignmentId(uid),
                        requeued,
                    },
                ));
            }
        }
        Ok(())
    }

    /// Run truth inference + training for every due project in parallel,
    /// then handle the replies — quarantine evidence, trace, and grant
    /// arbitration — sequentially in `due` order (priority descending,
    /// submission ascending). Returns total assignments dispatched.
    fn refresh_round(&mut self, due: &[usize]) -> Result<usize> {
        if due.is_empty() {
            return Ok(0);
        }
        // One shared snapshot of the pool's free concurrency slots for
        // the whole round: the cores skip exhausted annotators during
        // selection and spread a batch across annotators that can
        // actually take it. The map is read before any of this round's
        // grants, which keeps it identical for every due project
        // regardless of handling order; the broker still arbitrates at
        // grant time, so the snapshot being optimistic across projects
        // costs at most a skipped grant, never an overcommit.
        let slots: HashMap<AnnotatorId, usize> = (0..self.broker.annotators())
            .map(|a| (AnnotatorId(a), self.broker.free_slots(a)))
            .collect();
        let mut requests = Vec::with_capacity(due.len());
        for &i in due {
            let p = self.project(i);
            requests.push(RefreshRequest {
                answers: Arc::clone(&p.answers),
                view: BudgetView {
                    total: self.accounts.total(i),
                    spent: self.accounts.spent(i),
                    reserved: self.accounts.reserved(i),
                },
                blocked: p.blocked(),
                slots: Some(slots.clone()),
                now: p.watermark(),
                answers_since: p.answers_since,
            });
        }
        let mut ptrs: Vec<SendPtr<Project<'a>>> = Vec::with_capacity(due.len());
        for &i in due {
            ptrs.push(SendPtr(
                self.projects[i].as_mut().expect("active project") as *mut Project<'a>
            ));
        }
        let mut replies: Vec<Option<Result<RefreshReply>>> = (0..due.len()).map(|_| None).collect();
        let slots = SendPtr(replies.as_mut_ptr());
        let requests_ref = &requests;
        let ptrs_ref = &ptrs;
        // SAFETY: `due` holds distinct submission indices, so the
        // pointers target distinct projects; slot k is written only by
        // chunk k. Each chunk mutates only its own project's core.
        tpool::run_chunks(due.len(), move |k| {
            let p = unsafe { &mut *ptrs_ref[k].get() };
            let reply = p.core.refresh(&requests_ref[k]).inspect(|_| p.core.train());
            unsafe { *slots.get().add(k) = Some(reply) };
        });
        let mut total_dispatched = 0;
        for (k, &i) in due.iter().enumerate() {
            let reply = replies[k].take().expect("chunk ran")?;
            let at = requests[k].now;
            {
                let p = self.projects[i].as_mut().expect("active project");
                p.collector.refreshes += 1;
                p.answers_since = 0;
                p.last_refresh = at;
                p.done = reply.done;
                let answers = p.answers.total_answers();
                self.trace.push((
                    i,
                    TraceEvent::Refreshed {
                        at,
                        answers,
                        labelled: reply.labelled,
                    },
                ));
            }
            for q in &reply.quarantine {
                self.broker
                    .note_quarantine(i, q.annotator.index(), q.entered);
                self.trace.push((
                    i,
                    if q.entered {
                        TraceEvent::Quarantined {
                            at,
                            annotator: q.annotator,
                        }
                    } else {
                        TraceEvent::QuarantineReleased {
                            at,
                            annotator: q.annotator,
                        }
                    },
                ));
            }
            let (grants, contended) = self.grant(i, &reply.panels)?;
            let dispatched = self.dispatch(grants)?;
            self.project_mut(i).starved = contended && dispatched == 0;
            total_dispatched += dispatched;
        }
        Ok(total_dispatched)
    }

    /// Retire project `i`: cancel in-flight work (returning its budget
    /// reservations and broker slots), withdraw its quarantine evidence,
    /// run the core's final inference, and freeze its metrics.
    fn finalize(&mut self, i: usize) -> Result<()> {
        let released = {
            let p = self.projects[i].as_mut().expect("active project");
            let mut released = Vec::new();
            for shard in &mut p.shards {
                released.extend(shard.cancel_in_flight()?);
            }
            released
        };
        for (annotator, cost) in released {
            self.broker.release(annotator.index());
            self.accounts.release(i, cost)?;
        }
        self.broker.clear_project(i);
        let spent = self.accounts.spent(i);
        let p = self.projects[i].as_mut().expect("active project");
        let request = FinalizeRequest {
            answers: Arc::clone(&p.answers),
            budget_spent: spent,
        };
        let outcome = p.core.finalize(&request)?;
        let duration = p.watermark() - p.started_at;
        let scope = format!("project.{}.", p.index);
        let collector = std::mem::take(&mut p.collector);
        let metrics = collector.finish(duration, 0.0, spent);
        metrics.emit_trace_scoped(&scope);
        p.outcome = Some(outcome);
        p.metrics = Some(metrics);
        p.status = ProjectStatus::Completed;
        self.active.retain(|&x| x != i);
        Ok(())
    }

    /// The round loop (see module docs). Returns `true` if a checkpoint
    /// sink halted the run mid-way.
    fn run(&mut self, sink: &mut Option<ServiceCheckpointSink<'_>>) -> Result<bool> {
        self.fill_active()?;
        while !self.active.is_empty() {
            self.rounds += 1;
            let next_event = self
                .active
                .iter()
                .filter_map(|&i| self.project(i).next_event_at())
                .min();
            let had_events = next_event.is_some();
            if let Some(t) = next_event {
                let horizon = SimTime::new(t.as_f64() + self.cfg.epoch)?.max(self.now);
                self.now = horizon;
                self.advance_and_merge(horizon)?;
            }
            if !self.cfg.faults.is_noop() {
                self.apply_aborts()?;
            }
            let mut due: Vec<usize> = self
                .active
                .iter()
                .copied()
                .filter(|&i| {
                    let p = self.project(i);
                    // Backpressure: a project over its settlement-backlog
                    // bound must drain before it may dispatch more work.
                    (self.cfg.max_settlement_backlog == 0
                        || p.backlog() <= self.cfg.max_settlement_backlog)
                        && p.refresh_due(self.cfg.answer_watermark, self.cfg.time_watermark)
                })
                .collect();
            due.sort_by(|&a, &b| {
                self.project(b)
                    .priority
                    .cmp(&self.project(a).priority)
                    .then(a.cmp(&b))
            });
            let dispatched = self.refresh_round(&due)?;
            // A project retires when its core says every object is
            // labelled, or when it is fully drained: no pending events,
            // nothing dispatched this round, and not merely starved by
            // pool contention (contended slots belong to in-flight work
            // elsewhere, so time will advance and free them).
            let mut finished: Vec<usize> = self
                .active
                .iter()
                .copied()
                .filter(|&i| {
                    let p = self.project(i);
                    p.done || (p.is_idle() && !p.starved)
                })
                .collect();
            // Stall-breaker: no events anywhere and a full refresh round
            // dispatched nothing — nobody can ever make progress again.
            if !had_events && dispatched == 0 {
                finished = self.active.clone();
            }
            for i in finished {
                if self.active.contains(&i) {
                    self.finalize(i)?;
                }
            }
            self.fill_active()?;
            // Checkpoint cut: end of round, after settlements merged,
            // finished projects finalized, and the queue refilled —
            // nothing is mid-flight, so the snapshot is consistent.
            if self.cfg.checkpoint_every_rounds > 0
                && self.rounds.is_multiple_of(self.cfg.checkpoint_every_rounds)
                && !self.active.is_empty()
            {
                if let Some(sink) = sink.as_deref_mut() {
                    let t0 = Instant::now();
                    let cp = self.checkpoint();
                    obs::counter_add("service.checkpoint.write", 1);
                    obs::gauge(
                        "service.checkpoint.write_ns",
                        t0.elapsed().as_nanos() as f64,
                    );
                    if sink(cp) == RunControl::Halt {
                        return Ok(true);
                    }
                }
            }
        }
        Ok(false)
    }

    /// Snapshot the whole engine at the current round boundary.
    fn checkpoint(&self) -> ServiceCheckpoint {
        let (broker_load, broker_evidence) = self.broker.export();
        let projects = (0..self.specs.len())
            .map(|i| match &self.projects[i] {
                None => ProjectCheckpoint::Rejected,
                Some(p) => match p.status {
                    ProjectStatus::Queued => ProjectCheckpoint::Queued,
                    ProjectStatus::Active => {
                        let mut abandoned: Vec<ObjectId> = p.abandoned.iter().copied().collect();
                        abandoned.sort_by_key(|o| o.index());
                        ProjectCheckpoint::Active(Box::new(ActiveProjectState {
                            core: p.core.export_state(),
                            shards: p.shards.iter().map(Shard::export).collect(),
                            answers: (*p.answers).clone(),
                            answers_since: p.answers_since,
                            last_refresh: p.last_refresh,
                            requeues: p.requeues.clone(),
                            abandoned,
                            collector: CollectorState {
                                latencies: p.collector.latencies.clone(),
                                dispatched: p.collector.dispatched,
                                delivered: p.collector.delivered,
                                rejected: p.collector.rejected,
                                timeouts: p.collector.timeouts,
                                requeues: p.collector.requeues,
                                refreshes: p.collector.refreshes,
                                events: p.collector.events,
                            },
                            started_at: p.started_at,
                            done: p.done,
                            starved: p.starved,
                        }))
                    }
                    ProjectStatus::Completed => ProjectCheckpoint::Completed {
                        outcome: p.outcome.clone().expect("completed project has an outcome"),
                        metrics: p.metrics.clone().expect("completed project has metrics"),
                    },
                    ProjectStatus::Failed => ProjectCheckpoint::Failed {
                        reason: match &self.errors[p.index] {
                            Some(ServiceError::ProjectFailed { reason, .. }) => reason.clone(),
                            _ => "unknown failure".into(),
                        },
                        metrics: p.metrics.clone().expect("failed project has metrics"),
                    },
                    ProjectStatus::Rejected => unreachable!("admitted projects are never Rejected"),
                },
            })
            .collect();
        ServiceCheckpoint {
            fingerprint: service_fingerprint(self.cfg, self.specs, self.pool),
            annotators: self.pool.len(),
            now: self.now,
            rounds: self.rounds,
            next_uid: self.next_uid,
            queued: self.queued.iter().copied().collect(),
            active: self.active.clone(),
            accounts: self.accounts.export(),
            broker_load,
            broker_evidence,
            trace: self.trace.clone(),
            projects,
        }
    }

    /// Overwrite this freshly-constructed engine with a checkpoint's
    /// state. The fingerprint is verified first (a mismatch is a typed
    /// [`ServiceError::ConfigMismatch`]); queued projects keep the fresh
    /// cores [`new`](Self::new) built from the same submission-order
    /// seeds, active projects get their cores, shards, and scheduling
    /// state rebuilt bit-exactly.
    fn restore(&mut self, cp: ServiceCheckpoint, capacities: Vec<usize>) -> Result<()> {
        let expected = service_fingerprint(self.cfg, self.specs, self.pool);
        if cp.fingerprint != expected {
            return Err(ServiceError::ConfigMismatch {
                expected,
                actual: cp.fingerprint,
            }
            .into());
        }
        if cp.projects.len() != self.specs.len() || cp.accounts.len() != self.specs.len() {
            return Err(ServiceError::CorruptCheckpoint(format!(
                "checkpoint covers {} projects / {} accounts, expected {}",
                cp.projects.len(),
                cp.accounts.len(),
                self.specs.len()
            ))
            .into());
        }
        if cp.annotators != self.pool.len() {
            return Err(ServiceError::CorruptCheckpoint(format!(
                "checkpoint expects {} annotators, pool has {}",
                cp.annotators,
                self.pool.len()
            ))
            .into());
        }
        self.now = cp.now;
        self.rounds = cp.rounds;
        self.next_uid = cp.next_uid;
        self.queued = cp.queued.into_iter().collect();
        self.active = cp.active;
        self.trace = cp.trace;
        self.accounts = AccountBook::restore(&cp.accounts)?;
        self.broker = PoolBroker::restore(
            capacities,
            self.cfg.shared_evidence_threshold,
            cp.broker_load,
            cp.broker_evidence,
        )?;
        let cfg = self.cfg;
        let specs = self.specs;
        let pool = self.pool;
        for (i, pc) in cp.projects.into_iter().enumerate() {
            let admitted = self.projects[i].is_some();
            match pc {
                ProjectCheckpoint::Rejected => {
                    if admitted {
                        return Err(ServiceError::CorruptCheckpoint(format!(
                            "project {i} is rejected in the checkpoint but admitted here"
                        ))
                        .into());
                    }
                }
                ProjectCheckpoint::Queued => {
                    if !admitted {
                        return Err(ServiceError::CorruptCheckpoint(format!(
                            "project {i} is queued in the checkpoint but rejected here"
                        ))
                        .into());
                    }
                }
                ProjectCheckpoint::Active(state) => {
                    let state = *state;
                    let spec = &specs[i];
                    let mut project_config = spec.config.clone();
                    if let Some(decide) = cfg.decide {
                        project_config.decide = decide;
                    }
                    let mut core = AgentCore::restore(
                        project_config,
                        &spec.dataset,
                        pool,
                        cfg.quarantine.clone(),
                        state.core,
                    )?;
                    core.set_obs_scope(format!("project.{i}."));
                    let shards = state
                        .shards
                        .into_iter()
                        .map(Shard::restore)
                        .collect::<Result<Vec<_>>>()?;
                    let p = self.projects[i].as_mut().ok_or_else(|| -> Error {
                        ServiceError::CorruptCheckpoint(format!(
                            "project {i} is active in the checkpoint but rejected here"
                        ))
                        .into()
                    })?;
                    p.core = core;
                    p.shards = shards;
                    p.answers = Arc::new(state.answers);
                    p.answers_since = state.answers_since;
                    p.last_refresh = state.last_refresh;
                    p.requeues = state.requeues;
                    p.abandoned = state.abandoned.into_iter().collect();
                    p.collector = MetricsCollector {
                        latencies: state.collector.latencies,
                        dispatched: state.collector.dispatched,
                        delivered: state.collector.delivered,
                        rejected: state.collector.rejected,
                        timeouts: state.collector.timeouts,
                        requeues: state.collector.requeues,
                        refreshes: state.collector.refreshes,
                        events: state.collector.events,
                    };
                    p.started_at = state.started_at;
                    p.status = ProjectStatus::Active;
                    p.done = state.done;
                    p.starved = state.starved;
                }
                ProjectCheckpoint::Completed { outcome, metrics } => {
                    let p = self.projects[i].as_mut().ok_or_else(|| -> Error {
                        ServiceError::CorruptCheckpoint(format!(
                            "project {i} is completed in the checkpoint but rejected here"
                        ))
                        .into()
                    })?;
                    p.status = ProjectStatus::Completed;
                    p.done = true;
                    p.outcome = Some(outcome);
                    p.metrics = Some(metrics);
                }
                ProjectCheckpoint::Failed { reason, metrics } => {
                    let p = self.projects[i].as_mut().ok_or_else(|| -> Error {
                        ServiceError::CorruptCheckpoint(format!(
                            "project {i} is failed in the checkpoint but rejected here"
                        ))
                        .into()
                    })?;
                    p.status = ProjectStatus::Failed;
                    p.metrics = Some(metrics);
                    self.errors[i] = Some(ServiceError::ProjectFailed { project: i, reason });
                }
            }
        }
        Ok(())
    }

    /// Assemble the reports (submission order), aggregate, and trace.
    fn into_outcome(self, wall_seconds: f64) -> ServiceOutcome {
        let mut reports = Vec::with_capacity(self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            match &self.projects[i] {
                None => reports.push(ProjectReport {
                    name: spec.name.clone(),
                    status: ProjectStatus::Rejected,
                    outcome: None,
                    metrics: None,
                    error: self.errors[i].clone(),
                }),
                Some(p) => reports.push(ProjectReport {
                    name: p.name.clone(),
                    status: p.status,
                    outcome: p.outcome.clone(),
                    metrics: p.metrics.clone(),
                    error: self.errors[i].clone(),
                }),
            }
        }
        let completed: Vec<&ProjectReport> = reports
            .iter()
            .filter(|r| r.status == ProjectStatus::Completed)
            .collect();
        let delivered: Vec<usize> = completed
            .iter()
            .filter_map(|r| r.metrics.as_ref())
            .map(|m| m.answers_delivered)
            .collect();
        let sum = |f: &dyn Fn(&crowdrl_serve::ServiceMetrics) -> usize| -> usize {
            completed
                .iter()
                .filter_map(|r| r.metrics.as_ref())
                .map(f)
                .sum()
        };
        let answers_delivered = sum(&|m| m.answers_delivered);
        let aggregate = AggregateMetrics {
            admitted: reports
                .iter()
                .filter(|r| r.status != ProjectStatus::Rejected)
                .count(),
            rejected: reports
                .iter()
                .filter(|r| r.status == ProjectStatus::Rejected)
                .count(),
            failed: reports
                .iter()
                .filter(|r| r.status == ProjectStatus::Failed)
                .count(),
            shed: self.shed,
            dispatched: sum(&|m| m.dispatched),
            answers_delivered,
            timeouts: sum(&|m| m.timeouts),
            events_processed: sum(&|m| m.events_processed),
            rounds: self.rounds,
            sim_duration: self.now,
            wall_seconds,
            total_spent: (0..self.specs.len()).map(|i| self.accounts.spent(i)).sum(),
            answers_per_time_unit: if self.now.as_f64() > 0.0 {
                answers_delivered as f64 / self.now.as_f64()
            } else {
                0.0
            },
            fairness_spread: AggregateMetrics::spread(&delivered),
        };
        ServiceOutcome {
            reports,
            trace: self.trace,
            aggregate,
        }
    }
}
