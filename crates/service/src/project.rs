//! Per-project runtime state: one full CrowdRL run, sharded.

use crate::shard::Shard;
use crowdrl_core::outcome::LabellingOutcome;
use crowdrl_serve::core_loop::AgentCore;
use crowdrl_serve::metrics::MetricsCollector;
use crowdrl_serve::ServiceMetrics;
use crowdrl_types::{AnswerSet, ObjectId, SimTime};
use std::collections::HashSet;
use std::sync::Arc;

/// Where a project is in its service lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectStatus {
    /// Waiting for a slot (admission policy `Queue`).
    Queued,
    /// Running.
    Active,
    /// Finished; its report carries an outcome.
    Completed,
    /// Refused at admission (policy `Reject`, or shed from a bounded
    /// queue); no money ever moved.
    Rejected,
    /// Failed mid-run — a shard panicked or a fault plan aborted it.
    /// Its reservations were released, its broker evidence withdrawn,
    /// and its report carries the [`ServiceError`](crate::ServiceError).
    Failed,
}

/// One admitted project's live state. The decision brain ([`AgentCore`])
/// is exactly the single-run core — the service just feeds it merged
/// cross-shard answers instead of one pump's.
pub(crate) struct Project<'a> {
    /// Submission index == account id == obs scope id.
    pub index: usize,
    /// Display name from the spec.
    pub name: String,
    /// Broker priority from the spec.
    pub priority: u32,
    /// The full single-run decision loop, scoped to this project.
    pub core: AgentCore<'a>,
    /// The project's event-loop partitions.
    pub shards: Vec<Shard>,
    /// Merged answers across shards, in deterministic merge order.
    /// Shared with the core per refresh as a cheap `Arc` clone; the
    /// merge mutates through `Arc::make_mut` (in place once the round's
    /// requests are dropped).
    pub answers: Arc<AnswerSet>,
    /// Answers merged since the last refresh.
    pub answers_since: usize,
    /// Watermark reading at the last refresh.
    pub last_refresh: SimTime,
    /// Per-object requeue counts.
    pub requeues: Vec<usize>,
    /// Objects that exhausted their requeue allowance.
    pub abandoned: HashSet<ObjectId>,
    /// Raw service observations (dispatches, latencies, …).
    pub collector: MetricsCollector,
    /// When the project activated (queued projects start late).
    pub started_at: SimTime,
    /// Lifecycle state.
    pub status: ProjectStatus,
    /// The core reported all objects labelled.
    pub done: bool,
    /// Last dispatch round granted nothing *because of pool contention*
    /// (annotator slots held by other projects) — the project must stay
    /// alive: the contended slots are tied to in-flight assignments
    /// elsewhere, so time will advance and free them.
    pub starved: bool,
    /// Final labelling outcome, once completed.
    pub outcome: Option<LabellingOutcome>,
    /// Final service metrics, once completed.
    pub metrics: Option<ServiceMetrics>,
}

impl Project<'_> {
    /// Which shard owns `object`.
    pub fn shard_of(&self, object: ObjectId) -> usize {
        object.index() % self.shards.len()
    }

    /// The deterministic cross-shard merge watermark: the minimum
    /// frontier over the project's shards. Inference refreshes read
    /// state *at* this watermark — every shard has settled everything up
    /// to it, so the merged answer set is a consistent cut no matter how
    /// unevenly the shards' event queues are loaded.
    pub fn watermark(&self) -> SimTime {
        self.shards
            .iter()
            .map(Shard::frontier)
            .min()
            .unwrap_or(self.started_at)
    }

    /// Earliest pending event across the project's shards.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(Shard::next_event_at).min()
    }

    /// Whether every shard's event queue is empty.
    pub fn is_idle(&self) -> bool {
        self.shards.iter().all(Shard::is_idle)
    }

    /// Total pending settlement events across the project's shards (the
    /// reading [`ServiceConfig::max_settlement_backlog`] bounds).
    ///
    /// [`ServiceConfig::max_settlement_backlog`]:
    /// crate::ServiceConfig::max_settlement_backlog
    pub fn backlog(&self) -> usize {
        self.shards.iter().map(Shard::pending).sum()
    }

    /// Whether a refresh is due: enough answers since the last one, or
    /// enough watermark time with at least one answer — or the project
    /// is idle (nothing in flight), in which case only a refresh can
    /// move it forward.
    pub fn refresh_due(&self, answer_watermark: usize, time_watermark: f64) -> bool {
        self.answers_since >= answer_watermark
            || (self.answers_since > 0
                && (self.watermark() - self.last_refresh).as_f64() >= time_watermark)
            || self.is_idle()
    }

    /// Objects the core must not select: in flight on any shard, or
    /// abandoned.
    pub fn blocked(&self) -> HashSet<ObjectId> {
        let mut blocked: HashSet<ObjectId> = self.abandoned.iter().copied().collect();
        for shard in &self.shards {
            blocked.extend(shard.objects_in_flight());
        }
        blocked
    }
}
