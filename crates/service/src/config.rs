//! Service configuration: capacity, admission, sharding, scheduling
//! cadence, and the shared-pool models every project runs against.

use crowdrl_core::{CrowdRlConfig, DecideConfig};
use crowdrl_serve::{ExecMode, QuarantineConfig};
use crowdrl_sim::{CapacitySpec, DynamicsSpec, ServiceFaultPlan};
use crowdrl_types::{Dataset, Error, Result};

/// What happens to a project submitted past [`ServiceConfig::capacity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse it outright: the report carries no outcome and no money
    /// ever moves on its account.
    Reject,
    /// Park it; it activates (at the then-current simulated time) when a
    /// running project finishes and frees a slot.
    Queue,
}

/// One tenant: a complete CrowdRL labelling run — its own dataset,
/// config, and budget — submitted to the service.
#[derive(Debug, Clone)]
pub struct ProjectSpec {
    /// Human-readable name, used in reports.
    pub name: String,
    /// The full per-run configuration (budget, inference model, DQN…).
    pub config: CrowdRlConfig,
    /// The objects this project labels.
    pub dataset: Dataset,
    /// Broker priority: higher goes first when projects contend for the
    /// same annotators in one scheduling round. Ties break by submission
    /// order, so grants stay deterministic.
    pub priority: u32,
}

impl ProjectSpec {
    /// A priority-0 project.
    pub fn new(name: impl Into<String>, config: CrowdRlConfig, dataset: Dataset) -> Self {
        Self {
            name: name.into(),
            config,
            dataset,
            priority: 0,
        }
    }

    /// Set the broker priority.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }
}

/// Configuration of the multi-tenant service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Max projects running concurrently.
    pub capacity: usize,
    /// What to do with submissions past `capacity`.
    pub admission: AdmissionPolicy,
    /// Event-loop partitions per project (objects are sharded
    /// `object mod shards`). Clamped to the project's object count.
    pub shards_per_project: usize,
    /// Scheduling slack, time units: each round advances every shard to
    /// `earliest pending event + epoch`, batching nearby events into one
    /// parallel sweep. Zero degenerates to one event-time per round.
    pub epoch: f64,
    /// Assignment timeout, simulated time units.
    pub timeout: f64,
    /// Refresh a project's inference after this many delivered answers.
    pub answer_watermark: usize,
    /// …or after this much simulated time with at least one new answer.
    pub time_watermark: f64,
    /// Requeue allowance per object before it is abandoned.
    pub max_requeues: usize,
    /// Execution mode. Both modes run the identical sharded algorithm —
    /// `WorkerPool` merely raises the thread cap — so traces are
    /// bit-identical by construction.
    pub mode: ExecMode,
    /// Latency/availability models for the shared pool.
    pub dynamics: DynamicsSpec,
    /// Per-annotator concurrent-assignment capacities (the shared-pool
    /// resource the broker arbitrates).
    pub annotator_capacity: CapacitySpec,
    /// Seed of the virtual crowd's sampling streams.
    pub sampling_seed: u64,
    /// Per-project annotator circuit breakers (applied to every project;
    /// each project holds its own view).
    pub quarantine: QuarantineConfig,
    /// Cross-project evidence: an annotator currently quarantined by at
    /// least this many projects is blocked pool-wide (no project gets
    /// it). `0` disables the shared view.
    pub shared_evidence_threshold: usize,
    /// Service-wide decide-path override. `Some` replaces every admitted
    /// project's `config.decide` (fleet operators flip the whole service
    /// between pruned and exhaustive scoring with one knob); `None`
    /// leaves each project's own setting untouched. Selections are
    /// bit-identical either way — this only trades scoring work.
    pub decide: Option<DecideConfig>,
    /// Cut a [`ServiceCheckpoint`](crate::ServiceCheckpoint) every this
    /// many scheduling rounds (at the round boundary, after settlements
    /// merge and finished projects finalize). `0` disables checkpoints.
    pub checkpoint_every_rounds: usize,
    /// Overload shedding: under [`AdmissionPolicy::Queue`], at most this
    /// many projects may wait beyond the running set — submissions past
    /// `capacity + max_queue_depth` are shed with a typed
    /// [`ServiceError::AdmissionRejected`](crate::ServiceError). `0`
    /// leaves the queue unbounded.
    pub max_queue_depth: usize,
    /// Backpressure floor on the shared pool: a queued project is not
    /// promoted while the pool's free-slot ratio sits below this value —
    /// the service degrades to queueing instead of piling a fresh
    /// tenant's initial burst onto saturated annotators. `0.0` disables
    /// the floor.
    pub min_free_slot_ratio: f64,
    /// Per-project settlement-backlog bound: a project holding more than
    /// this many pending shard events is skipped for refresh/dispatch
    /// until its backlog drains below the bound — new questions must not
    /// outrun settlement. `0` leaves backlogs unbounded.
    pub max_settlement_backlog: usize,
    /// Service-level fault schedule (project-scoped outages, aborts,
    /// injected shard panics). Defaults to no-op.
    pub faults: ServiceFaultPlan,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            capacity: 16,
            admission: AdmissionPolicy::Queue,
            shards_per_project: 4,
            epoch: 5.0,
            timeout: 60.0,
            answer_watermark: 12,
            time_watermark: 25.0,
            max_requeues: 3,
            mode: ExecMode::SingleThread,
            dynamics: DynamicsSpec::default(),
            annotator_capacity: CapacitySpec::default(),
            sampling_seed: 0x5EED_CAFE,
            quarantine: QuarantineConfig::default(),
            shared_evidence_threshold: 0,
            decide: None,
            checkpoint_every_rounds: 0,
            max_queue_depth: 0,
            min_free_slot_ratio: 0.0,
            max_settlement_backlog: 0,
            faults: ServiceFaultPlan::default(),
        }
    }
}

impl ServiceConfig {
    /// Validate all knobs.
    pub fn validate(&self) -> Result<()> {
        if self.capacity == 0 {
            return Err(Error::InvalidParameter(
                "service capacity must be at least 1".into(),
            ));
        }
        if self.shards_per_project == 0 {
            return Err(Error::InvalidParameter(
                "shards_per_project must be at least 1".into(),
            ));
        }
        if !self.epoch.is_finite() || self.epoch < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "epoch must be finite and non-negative, got {}",
                self.epoch
            )));
        }
        if !self.timeout.is_finite() || self.timeout <= 0.0 {
            return Err(Error::InvalidParameter(format!(
                "timeout must be finite and positive, got {}",
                self.timeout
            )));
        }
        if self.answer_watermark == 0 {
            return Err(Error::InvalidParameter(
                "answer_watermark must be at least 1".into(),
            ));
        }
        if !self.time_watermark.is_finite() || self.time_watermark <= 0.0 {
            return Err(Error::InvalidParameter(format!(
                "time_watermark must be finite and positive, got {}",
                self.time_watermark
            )));
        }
        if let ExecMode::WorkerPool { workers } = self.mode {
            if workers == 0 {
                return Err(Error::InvalidParameter(
                    "worker pool must have at least one worker".into(),
                ));
            }
        }
        if !self.min_free_slot_ratio.is_finite() || !(0.0..=1.0).contains(&self.min_free_slot_ratio)
        {
            return Err(Error::InvalidParameter(format!(
                "min_free_slot_ratio must be in [0,1], got {}",
                self.min_free_slot_ratio
            )));
        }
        self.annotator_capacity.validate()?;
        self.quarantine.validate()?;
        self.faults.validate()?;
        Ok(())
    }

    /// Set the project capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Set the admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Set the shard count per project.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards_per_project = shards;
        self
    }

    /// Set the execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the refresh watermarks.
    pub fn with_watermarks(mut self, answers: usize, time: f64) -> Self {
        self.answer_watermark = answers;
        self.time_watermark = time;
        self
    }

    /// Set the assignment timeout.
    pub fn with_timeout(mut self, timeout: f64) -> Self {
        self.timeout = timeout;
        self
    }

    /// Set the shared-evidence threshold.
    pub fn with_shared_evidence(mut self, threshold: usize) -> Self {
        self.shared_evidence_threshold = threshold;
        self
    }

    /// Override every project's decide-path configuration.
    pub fn with_decide(mut self, decide: DecideConfig) -> Self {
        self.decide = Some(decide);
        self
    }

    /// Cut a checkpoint every `rounds` scheduling rounds (`0` = off).
    pub fn with_checkpoint_every(mut self, rounds: usize) -> Self {
        self.checkpoint_every_rounds = rounds;
        self
    }

    /// Bound the admission queue (`0` = unbounded).
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Set the promotion backpressure floor (`0.0` = off).
    pub fn with_min_free_slot_ratio(mut self, ratio: f64) -> Self {
        self.min_free_slot_ratio = ratio;
        self
    }

    /// Bound each project's settlement backlog (`0` = unbounded).
    pub fn with_max_settlement_backlog(mut self, backlog: usize) -> Self {
        self.max_settlement_backlog = backlog;
        self
    }

    /// Attach a service-level fault schedule.
    pub fn with_faults(mut self, faults: ServiceFaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServiceConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_degenerate_knobs() {
        assert!(ServiceConfig::default()
            .with_capacity(0)
            .validate()
            .is_err());
        assert!(ServiceConfig::default().with_shards(0).validate().is_err());
        assert!(ServiceConfig::default()
            .with_timeout(0.0)
            .validate()
            .is_err());
        assert!(ServiceConfig::default()
            .with_watermarks(0, 25.0)
            .validate()
            .is_err());
        assert!(ServiceConfig::default()
            .with_watermarks(12, f64::NAN)
            .validate()
            .is_err());
        assert!(ServiceConfig::default()
            .with_mode(ExecMode::WorkerPool { workers: 0 })
            .validate()
            .is_err());
        let bad_epoch = ServiceConfig {
            epoch: -1.0,
            ..ServiceConfig::default()
        };
        assert!(bad_epoch.validate().is_err());
        assert!(ServiceConfig::default()
            .with_min_free_slot_ratio(1.5)
            .validate()
            .is_err());
        assert!(ServiceConfig::default()
            .with_min_free_slot_ratio(f64::NAN)
            .validate()
            .is_err());
        let bad_faults = ServiceConfig::default().with_faults(crowdrl_sim::ServiceFaultPlan {
            aborts: vec![crowdrl_sim::ProjectAbort {
                project: 0,
                at: -1.0,
            }],
            ..Default::default()
        });
        assert!(bad_faults.validate().is_err());
    }
}
