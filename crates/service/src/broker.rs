//! The pool broker: deterministic arbitration of one shared annotator
//! pool across concurrent projects.
//!
//! Two shared resources need a referee once many projects dispatch into
//! the same pool:
//!
//! * **Concurrency slots.** Each annotator holds at most `capacity[a]`
//!   questions at a time (a [`CapacitySpec`] contract); the broker
//!   tracks the pool-wide in-flight load and refuses grants past it.
//! * **Trust evidence.** Each project runs its own quarantine view, but
//!   an annotator spamming project A is evidence for project B: once at
//!   least `threshold` projects hold an annotator in quarantine
//!   simultaneously, the broker blocks it pool-wide until enough of
//!   them release it.
//!
//! The broker itself holds no ordering policy — determinism comes from
//! the *caller* presenting grant requests in a stable order (priority
//! descending, submission index ascending), which the service's
//! scheduling round guarantees.
//!
//! [`CapacitySpec`]: crowdrl_sim::CapacitySpec

use crowdrl_types::{Error, Result};
use std::collections::HashSet;

/// Shared-pool arbiter (see module docs).
#[derive(Debug)]
pub struct PoolBroker {
    /// Per-annotator concurrent-assignment caps.
    capacity: Vec<usize>,
    /// Per-annotator in-flight load, across every project.
    load: Vec<usize>,
    /// Per-annotator set of projects currently quarantining it.
    evidence: Vec<HashSet<usize>>,
    /// Distinct-project quarantine count at which an annotator is
    /// blocked pool-wide (`0` = shared evidence off).
    threshold: usize,
}

impl PoolBroker {
    /// A broker over `capacity.len()` annotators.
    pub fn new(capacity: Vec<usize>, threshold: usize) -> Self {
        let n = capacity.len();
        Self {
            capacity,
            load: vec![0; n],
            evidence: vec![HashSet::new(); n],
            threshold,
        }
    }

    /// Number of annotators in the shared pool.
    pub fn annotators(&self) -> usize {
        self.capacity.len()
    }

    /// Annotator `a`'s current in-flight load.
    pub fn load(&self, a: usize) -> usize {
        self.load[a]
    }

    /// Whether annotator `a` has a free concurrency slot.
    pub fn has_slot(&self, a: usize) -> bool {
        self.load[a] < self.capacity[a]
    }

    /// Whether cross-project evidence blocks annotator `a` pool-wide.
    pub fn blocked(&self, a: usize) -> bool {
        self.threshold > 0 && self.evidence[a].len() >= self.threshold
    }

    /// Annotator `a`'s free concurrency slots right now. Decision loops
    /// feed these into selection so the agent spends its scores on
    /// annotators that can actually accept work, instead of
    /// re-proposing the same saturated favourites each refresh.
    pub fn free_slots(&self, a: usize) -> usize {
        self.capacity[a].saturating_sub(self.load[a])
    }

    /// Take one slot on `a` (grant time). The caller checks
    /// [`has_slot`](Self::has_slot) first; taking a slot past capacity
    /// is a service bug, caught loudly in debug builds.
    pub fn acquire(&mut self, a: usize) {
        debug_assert!(self.load[a] < self.capacity[a], "broker slot overcommit");
        self.load[a] += 1;
    }

    /// Return one slot on `a` (delivery or expiry time).
    pub fn release(&mut self, a: usize) {
        debug_assert!(self.load[a] > 0, "broker slot underflow");
        self.load[a] = self.load[a].saturating_sub(1);
    }

    /// Record that `project` entered (`entered = true`) or released
    /// annotator `a` from its quarantine view.
    pub fn note_quarantine(&mut self, project: usize, a: usize, entered: bool) {
        if entered {
            self.evidence[a].insert(project);
        } else {
            self.evidence[a].remove(&project);
        }
    }

    /// Drop every piece of evidence `project` contributed (the project
    /// finished *or aborted*; its stale opinion must not keep blocking
    /// annotators).
    pub fn clear_project(&mut self, project: usize) {
        for set in &mut self.evidence {
            set.remove(&project);
        }
    }

    /// Total in-flight load summed over the pool.
    pub fn total_load(&self) -> usize {
        self.load.iter().sum()
    }

    /// Total concurrency capacity summed over the pool.
    pub fn total_capacity(&self) -> usize {
        self.capacity.iter().sum()
    }

    /// Snapshot for checkpointing: per-annotator in-flight load, and per
    /// annotator the ascending list of projects quarantining it.
    pub fn export(&self) -> (Vec<usize>, Vec<Vec<usize>>) {
        let evidence = self
            .evidence
            .iter()
            .map(|set| {
                let mut projects: Vec<usize> = set.iter().copied().collect();
                projects.sort_unstable();
                projects
            })
            .collect();
        (self.load.clone(), evidence)
    }

    /// Rebuild a broker from an [`export`](Self::export) snapshot.
    /// `capacity` and `threshold` come from the restoring config, not
    /// the checkpoint — the fingerprint check upstream guarantees they
    /// match the run that cut it.
    pub fn restore(
        capacity: Vec<usize>,
        threshold: usize,
        load: Vec<usize>,
        evidence: Vec<Vec<usize>>,
    ) -> Result<Self> {
        if load.len() != capacity.len() || evidence.len() != capacity.len() {
            return Err(Error::ServiceFailure(format!(
                "broker snapshot shape mismatch: {} capacities, {} loads, {} evidence sets",
                capacity.len(),
                load.len(),
                evidence.len()
            )));
        }
        for (a, (&l, &c)) in load.iter().zip(&capacity).enumerate() {
            if l > c {
                return Err(Error::ServiceFailure(format!(
                    "broker snapshot overcommits annotator {a}: load {l} over capacity {c}"
                )));
            }
        }
        Ok(Self {
            capacity,
            load,
            evidence: evidence
                .into_iter()
                .map(|projects| projects.into_iter().collect())
                .collect(),
            threshold,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_bounded_per_annotator() {
        let mut b = PoolBroker::new(vec![2, 1], 0);
        assert!(b.has_slot(0));
        b.acquire(0);
        b.acquire(0);
        assert!(!b.has_slot(0));
        assert!(b.has_slot(1));
        b.release(0);
        assert!(b.has_slot(0));
        assert_eq!(b.load(0), 1);
    }

    #[test]
    fn shared_evidence_blocks_at_the_threshold() {
        let mut b = PoolBroker::new(vec![4], 2);
        assert!(!b.blocked(0));
        b.note_quarantine(0, 0, true);
        assert!(!b.blocked(0), "one project's view is not shared evidence");
        b.note_quarantine(1, 0, true);
        assert!(b.blocked(0), "two projects agree: blocked pool-wide");
        // Re-entering from the same project adds nothing.
        b.note_quarantine(1, 0, true);
        b.note_quarantine(0, 0, false);
        assert!(!b.blocked(0), "evidence released below the threshold");
    }

    #[test]
    fn finished_projects_withdraw_their_evidence() {
        let mut b = PoolBroker::new(vec![4, 4], 2);
        b.note_quarantine(0, 0, true);
        b.note_quarantine(1, 0, true);
        b.note_quarantine(1, 1, true);
        assert!(b.blocked(0));
        b.clear_project(1);
        assert!(!b.blocked(0));
        assert!(!b.blocked(1));
    }

    #[test]
    fn zero_threshold_disables_shared_evidence() {
        let mut b = PoolBroker::new(vec![4], 0);
        b.note_quarantine(0, 0, true);
        b.note_quarantine(1, 0, true);
        assert!(!b.blocked(0));
    }
}
