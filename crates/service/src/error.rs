//! Typed errors for the multi-tenant service API.
//!
//! Mirrors `crowdrl_serve::ServeError`: callers that need to react to a
//! specific failure (an overloaded admission queue, a tenant that
//! panicked mid-run, a checkpoint grafted onto the wrong config) match
//! on the variant; everything still converts into the workspace-wide
//! [`crowdrl_types::Error`] so the service API keeps returning
//! `Result<T>`.

use crowdrl_types::Error;

/// Service-level failures with enough structure to react to.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A submission was refused at admission time: the service was at
    /// capacity under [`AdmissionPolicy::Reject`](crate::AdmissionPolicy),
    /// or the bounded queue was full and the project was shed.
    AdmissionRejected {
        /// Submission index of the refused project.
        project: usize,
        /// Why admission refused it.
        reason: String,
    },
    /// A project failed mid-run — a shard panicked or a fault plan
    /// aborted it — and was isolated from the remaining tenants.
    ProjectFailed {
        /// Submission index of the failed project.
        project: usize,
        /// The panic payload or abort reason.
        reason: String,
    },
    /// A service checkpoint was captured under a different configuration
    /// than the one trying to restore it.
    ConfigMismatch {
        /// Fingerprint of the restoring service configuration.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        actual: u64,
    },
    /// A service checkpoint could not be decoded.
    CorruptCheckpoint(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::AdmissionRejected { project, reason } => {
                write!(f, "project {project} rejected at admission: {reason}")
            }
            Self::ProjectFailed { project, reason } => {
                write!(f, "project {project} failed mid-run: {reason}")
            }
            Self::ConfigMismatch { expected, actual } => write!(
                f,
                "service checkpoint config fingerprint {actual:#018x} does not match \
                 the restoring config {expected:#018x}"
            ),
            Self::CorruptCheckpoint(what) => write!(f, "corrupt service checkpoint: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ServiceError> for Error {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::ConfigMismatch { .. } | ServiceError::CorruptCheckpoint(_) => {
                Error::InvalidParameter(e.to_string())
            }
            ServiceError::AdmissionRejected { .. } | ServiceError::ProjectFailed { .. } => {
                Error::ServiceFailure(e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ServiceError::ConfigMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("fingerprint"));
        let e = ServiceError::ProjectFailed {
            project: 3,
            reason: "injected fault".into(),
        };
        assert!(e.to_string().contains("project 3"));
        assert!(e.to_string().contains("injected fault"));
        let e = ServiceError::AdmissionRejected {
            project: 9,
            reason: "queue full".into(),
        };
        assert!(e.to_string().contains("queue full"));
        let e = ServiceError::CorruptCheckpoint("not json".into());
        assert!(e.to_string().contains("not json"));
    }

    #[test]
    fn conversion_routes_by_kind() {
        let bad_restore: Error = ServiceError::ConfigMismatch {
            expected: 0,
            actual: 1,
        }
        .into();
        assert!(matches!(bad_restore, Error::InvalidParameter(_)));
        let corrupt: Error = ServiceError::CorruptCheckpoint("truncated".into()).into();
        assert!(matches!(corrupt, Error::InvalidParameter(_)));
        let failed: Error = ServiceError::ProjectFailed {
            project: 0,
            reason: "panic".into(),
        }
        .into();
        assert!(matches!(failed, Error::ServiceFailure(_)));
        let shed: Error = ServiceError::AdmissionRejected {
            project: 0,
            reason: "shed".into(),
        }
        .into();
        assert!(matches!(shed, Error::ServiceFailure(_)));
    }
}
