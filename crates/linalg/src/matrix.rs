//! Row-major dense `f32` matrix with the kernels a feed-forward network
//! needs.
//!
//! Shapes are validated with `assert!` rather than `Result`: a shape
//! mismatch inside a training loop is a programming error, not a condition
//! to recover from, and panicking keeps the hot-path signatures clean.

use crate::pool::{self, SendPtr};
use crate::simd::{self, NumericMode};

/// Row chunk used by the dispatching matmul entries when they go parallel.
/// Fixed — never derived from the thread count — so the decomposition (and
/// with it every floating-point op order) is a function of shape alone.
const ROW_CHUNK: usize = 64;

/// Multiply-add count below which the pool overhead outweighs the win.
const MIN_PAR_MADDS: usize = 1 << 17;

/// True when a product with `dim` partitionable output rows and `madds`
/// multiply-adds should take the pool path.
fn par_worthwhile(dim: usize, madds: usize) -> bool {
    madds >= MIN_PAR_MADDS && dim > ROW_CHUNK && pool::max_threads() > 1
}

/// `out[j] = ((((out[j] + a0*b0[j]) + a1*b1[j]) + a2*b2[j]) + a3*b3[j]`
/// for every `j`, with each multiply and add individually rounded — the
/// exact op sequence of four consecutive single-term update passes, fused
/// so the running value stays in a register. The `t += x * y` form keeps
/// the multiply and add as two roundings (rustc never contracts to FMA
/// without an explicit intrinsic), so this is bit-identical to the
/// unfused reference loop.
fn axpy4(out: &mut [f32], a: &[f32; 4], b: &[&[f32]; 4]) {
    let n = out.len();
    let (b0, b1, b2, b3) = (&b[0][..n], &b[1][..n], &b[2][..n], &b[3][..n]);
    for j in 0..n {
        let mut t = out[j];
        t += a[0] * b0[j];
        t += a[1] * b1[j];
        t += a[2] * b2[j];
        t += a[3] * b3[j];
        out[j] = t;
    }
}

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wrap an existing row-major buffer. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from row slices. Panics if rows are ragged.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Append one row at the bottom, growing the matrix in place (the
    /// row-major buffer makes this a plain `extend`). Panics if `row` does
    /// not match the column count.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(
            row.len(),
            self.cols,
            "row length {} does not match {} columns",
            row.len(),
            self.cols
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Set element at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole buffer, row-major, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self * other` — `[m x k] * [k x n] -> [m x n]`.
    ///
    /// Dispatches between the single-threaded blocked kernel and the
    /// row-partitioned pool path by size; both run the identical per-row
    /// operation sequence, so the results are bit-for-bit the same (see
    /// `crate::pool`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        if par_worthwhile(self.rows, self.rows * self.cols * other.cols) {
            self.matmul_chunked(other, ROW_CHUNK)
        } else {
            self.matmul_serial(other)
        }
    }

    /// `matmul` forced onto the single-threaded blocked kernel.
    pub fn matmul_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul_serial shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_rows_into(other, 0..self.rows, &mut out.data);
        out
    }

    /// `matmul` forced onto the pool with an explicit row chunk (the
    /// dispatching entry uses `ROW_CHUNK`). Bit-identical to
    /// [`Matrix::matmul_serial`] for every chunk size and thread count:
    /// each output row is produced by the same kernel with the same
    /// operation order no matter which chunk — or thread — owns it.
    pub fn matmul_chunked(&self, other: &Matrix, row_chunk: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul_chunked shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let width = other.cols;
        let base = SendPtr(out.data.as_mut_ptr());
        let _kind = pool::task_kind("matmul");
        pool::for_each_chunk(self.rows, row_chunk, |range| {
            // SAFETY: chunk ranges are disjoint, so each chunk writes a
            // disjoint row slice of `out`, which outlives the call.
            let slice = unsafe {
                std::slice::from_raw_parts_mut(
                    base.get().add(range.start * width),
                    range.len() * width,
                )
            };
            self.matmul_rows_into(other, range, slice);
        });
        out
    }

    /// Blocked ikj kernel for output rows `rows`, writing into `out` (the
    /// row-major slice for exactly those rows). The k loop is tiled for
    /// cache reuse of the streamed `other` panel; tiles are visited in
    /// ascending k order, so each output element sees the exact operation
    /// sequence of the untiled loop.
    fn matmul_rows_into(&self, other: &Matrix, rows: std::ops::Range<usize>, out: &mut [f32]) {
        const KC: usize = 256;
        let n = other.cols;
        debug_assert_eq!(out.len(), rows.len() * n);
        for (oi, i) in rows.enumerate() {
            let a_row = self.row(i);
            let out_row = &mut out[oi * n..(oi + 1) * n];
            let mut k0 = 0;
            while k0 < self.cols {
                let k1 = (k0 + KC).min(self.cols);
                // Non-zero k terms are applied four per pass over the
                // output row. Each output element still accumulates its
                // (mul, add-assign) pairs in ascending-k order with the
                // same zero-skip — grouping only keeps the running value
                // in a register across four terms instead of a memory
                // round-trip per term, which cannot change any bit.
                let mut pend_a = [0.0f32; 4];
                let mut pend_b: [&[f32]; 4] = [&[]; 4];
                let mut np = 0;
                for (k, &a) in a_row[k0..k1].iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    pend_a[np] = a;
                    pend_b[np] = other.row(k0 + k);
                    np += 1;
                    if np == 4 {
                        axpy4(out_row, &pend_a, &pend_b);
                        np = 0;
                    }
                }
                for t in 0..np {
                    let b_row = pend_b[t];
                    let a = pend_a[t];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
                k0 = k1;
            }
        }
    }

    /// `self * other^T` — `[m x k] * [n x k]^T -> [m x n]`. The inner loop is
    /// a dot product of two contiguous rows. Size-dispatched like
    /// [`Matrix::matmul`]; bit-identical on either path.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        if par_worthwhile(self.rows, self.rows * self.cols * other.rows) {
            self.matmul_nt_chunked(other, ROW_CHUNK)
        } else {
            self.matmul_nt_serial(other)
        }
    }

    /// `matmul_nt` forced onto the single-threaded blocked kernel.
    pub fn matmul_nt_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt_serial shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_rows_into(other, 0..self.rows, &mut out.data);
        out
    }

    /// `matmul_nt` forced onto the pool with an explicit row chunk.
    pub fn matmul_nt_chunked(&self, other: &Matrix, row_chunk: usize) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt_chunked shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let width = other.rows;
        let base = SendPtr(out.data.as_mut_ptr());
        let _kind = pool::task_kind("matmul_nt");
        pool::for_each_chunk(self.rows, row_chunk, |range| {
            // SAFETY: disjoint row ranges → disjoint output slices.
            let slice = unsafe {
                std::slice::from_raw_parts_mut(
                    base.get().add(range.start * width),
                    range.len() * width,
                )
            };
            self.matmul_nt_rows_into(other, range, slice);
        });
        out
    }

    /// Row-dot kernel for `matmul_nt` over output rows `rows`. A-rows are
    /// processed in small blocks so each streamed B-row is reused across
    /// the block; every (i, j) dot product keeps its single accumulator
    /// and ascending-k order, so blocking cannot change any bit.
    fn matmul_nt_rows_into(&self, other: &Matrix, rows: std::ops::Range<usize>, out: &mut [f32]) {
        const IB: usize = 8;
        let n = other.rows;
        debug_assert_eq!(out.len(), rows.len() * n);
        let mut i0 = rows.start;
        while i0 < rows.end {
            let i1 = (i0 + IB).min(rows.end);
            for j in 0..n {
                let b_row = other.row(j);
                for i in i0..i1 {
                    let a_row = self.row(i);
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    out[(i - rows.start) * n + j] = acc;
                }
            }
            i0 = i1;
        }
    }

    /// `self^T * other` — `[m x k]^T * [m x n] -> [k x n]`, streaming both
    /// operands row by row. Size-dispatched like [`Matrix::matmul`];
    /// parallelism partitions the *output* rows (the k dimension), each
    /// chunk streaming the operands independently.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        if par_worthwhile(self.cols, self.rows * self.cols * other.cols) {
            self.matmul_tn_chunked(other, ROW_CHUNK)
        } else {
            self.matmul_tn_serial(other)
        }
    }

    /// `matmul_tn` forced onto the single-threaded kernel.
    pub fn matmul_tn_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn_serial shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_cols_into(other, 0..self.cols, &mut out.data);
        out
    }

    /// `matmul_tn` forced onto the pool with an explicit output-row chunk.
    pub fn matmul_tn_chunked(&self, other: &Matrix, row_chunk: usize) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn_chunked shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let width = other.cols;
        let base = SendPtr(out.data.as_mut_ptr());
        let _kind = pool::task_kind("matmul_tn");
        pool::for_each_chunk(self.cols, row_chunk, |range| {
            // SAFETY: disjoint output-row ranges → disjoint output slices.
            let slice = unsafe {
                std::slice::from_raw_parts_mut(
                    base.get().add(range.start * width),
                    range.len() * width,
                )
            };
            self.matmul_tn_cols_into(other, range, slice);
        });
        out
    }

    /// Kernel for `matmul_tn` over output rows `cols` (columns of `self`).
    /// Accumulation over m stays in ascending order for every output
    /// element, identical to the full-range serial sweep.
    fn matmul_tn_cols_into(&self, other: &Matrix, cols: std::ops::Range<usize>, out: &mut [f32]) {
        let n = other.cols;
        debug_assert_eq!(out.len(), cols.len() * n);
        for m in 0..self.rows {
            let a_row = self.row(m);
            let b_row = other.row(m);
            for k in cols.clone() {
                let a = a_row[k];
                if a == 0.0 {
                    continue;
                }
                let o0 = (k - cols.start) * n;
                let out_row = &mut out[o0..o0 + n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// [`Matrix::matmul`] under an explicit [`NumericMode`]:
    /// `Reference` runs the bit-exact dispatching kernel, `Fast` the
    /// explicit-SIMD kernel (see [`crate::simd`] for the tolerance
    /// contract).
    pub fn matmul_mode(&self, other: &Matrix, mode: NumericMode) -> Matrix {
        match mode {
            NumericMode::Reference => self.matmul(other),
            NumericMode::Fast => simd::matmul_fast(self, other),
        }
    }

    /// [`Matrix::matmul_nt`] under an explicit [`NumericMode`].
    pub fn matmul_nt_mode(&self, other: &Matrix, mode: NumericMode) -> Matrix {
        match mode {
            NumericMode::Reference => self.matmul_nt(other),
            NumericMode::Fast => simd::matmul_nt_fast(self, other),
        }
    }

    /// [`Matrix::matmul_tn`] under an explicit [`NumericMode`].
    pub fn matmul_tn_mode(&self, other: &Matrix, mode: NumericMode) -> Matrix {
        match mode {
            NumericMode::Reference => self.matmul_tn(other),
            NumericMode::Fast => simd::matmul_tn_fast(self, other),
        }
    }

    /// Explicit transpose (used rarely; the `_nt`/`_tn` products avoid it on
    /// hot paths).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// `self += other`, element-wise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` (axpy), element-wise.
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Element-wise product `self *= other` (Hadamard).
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Column sums as a length-`cols` vector (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                *s += v;
            }
        }
        sums
    }

    /// Add a row vector to every row (broadcast bias add).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        for i in 0..self.rows {
            for (a, &b) in self.row_mut(i).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Reference matmul with the naive jki order — only for tests that check
    /// the optimized kernels.
    #[doc(hidden)]
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.get(i, k) * other.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn push_row_grows_in_place() {
        let mut m = Matrix::zeros(0, 3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(
            m,
            Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        );
    }

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        let mut m = m;
        m.set(0, 0, 9.0);
        assert_eq!(m.get(0, 0), 9.0);
        m.row_mut(1)[0] = -1.0;
        assert_eq!(m.get(1, 0), -1.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn from_rows_builds_matrix() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[2.0, 1.0, 0.0]]);
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        assert!(approx_eq(&via_nt, &via_t, 1e-6));
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.5], &[-1.0]]);
        let via_tn = a.matmul_tn(&b);
        let via_t = a.transpose().matmul(&b);
        assert!(approx_eq(&via_tn, &via_t, 1e-6));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0]);
        a.add_scaled(0.5, &b);
        assert_eq!(a.as_slice(), &[16.0, 32.0]);
        a.scale(0.25);
        assert_eq!(a.as_slice(), &[4.0, 8.0]);
        a.map_inplace(|x| x - 4.0);
        assert_eq!(a.as_slice(), &[0.0, 4.0]);
        a.hadamard_assign(&b);
        assert_eq!(a.as_slice(), &[0.0, 80.0]);
    }

    #[test]
    fn col_sums_and_broadcast() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.col_sums(), vec![4.0, 6.0]);
        m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(m.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_matmul_matches_naive(
            m in 1usize..6, k in 1usize..6, n in 1usize..6,
            seed in 0u64..1000) {
            // Deterministic pseudo-random fill from the seed.
            let fill = |r: usize, c: usize, salt: u64| {
                let mut v = Vec::with_capacity(r * c);
                let mut s = seed.wrapping_add(salt).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..r * c {
                    s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                    v.push(((s % 2000) as f32 - 1000.0) / 250.0);
                }
                Matrix::from_vec(r, c, v)
            };
            let a = fill(m, k, 1);
            let b = fill(k, n, 2);
            let fast = a.matmul(&b);
            let slow = a.matmul_naive(&b);
            prop_assert!(approx_eq(&fast, &slow, 1e-4));

            // _nt and _tn agree with explicit transposes.
            let bt = b.transpose();
            prop_assert!(approx_eq(&a.matmul_nt(&bt), &slow, 1e-4));
            let at = a.transpose();
            prop_assert!(approx_eq(&at.matmul_tn(&b), &slow, 1e-4));
        }

        #[test]
        fn prop_transpose_involution(r in 1usize..8, c in 1usize..8) {
            let data: Vec<f32> = (0..r * c).map(|i| i as f32).collect();
            let m = Matrix::from_vec(r, c, data);
            prop_assert_eq!(m.transpose().transpose(), m);
        }
    }
}
