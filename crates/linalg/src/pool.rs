//! Deterministic reusable worker pool for data-parallel hot paths.
//!
//! Every parallel kernel in the workspace follows the same three rules
//! (DESIGN.md §9), which together make results **bit-identical for any
//! thread count**, including one:
//!
//! 1. Chunk boundaries are a function of the data size only — never of the
//!    thread count — so the work decomposition is the same no matter how
//!    many workers execute it.
//! 2. A chunk either writes a disjoint region of the output (matmul row
//!    partitions) or returns a per-chunk partial that the caller merges in
//!    chunk-index order ([`map_chunks`]). Floating-point operation order is
//!    therefore fixed by the chunking, not by the schedule.
//! 3. The serial path runs the *same* chunked algorithm inline; the pool
//!    only changes which thread executes each chunk.
//!
//! The pool itself is a small set of long-lived OS threads parked on a
//! shared job channel. Callers always drive chunks themselves and merely
//! *share* leftover chunks with idle workers, so a busy or starved queue
//! can never stall a caller, and workers never block on another caller's
//! work — safe under concurrent `run_chunks` calls from many test threads.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

use crowdrl_obs as obs;

/// Hard upper bound on threads executing one `run_chunks` call (the caller
/// plus pool workers). Keeps the worker set small and reusable.
pub const MAX_THREADS: usize = 8;

/// Sentinel meaning "not initialised yet" in [`THREADS`].
const UNSET: usize = usize::MAX;

/// Effective thread cap. Lazily initialised from `CROWDRL_THREADS` (unset,
/// `0`, or unparsable → available cores); runtime-settable for tests.
static THREADS: AtomicUsize = AtomicUsize::new(UNSET);

type Job = Box<dyn FnOnce() + Send + 'static>;

static QUEUE: OnceLock<crossbeam::channel::Sender<Job>> = OnceLock::new();

thread_local! {
    /// True on pool worker threads and on callers while they drive chunks.
    /// A `run_chunks` call that starts under this flag runs serially
    /// inline — nested parallelism never re-enters the pool, so workers
    /// can never deadlock waiting on their own queue.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };

    /// Label for the *kind* of pooled work the current thread is about to
    /// launch (e.g. `"matmul"`, `"em_estep"`). Purely observational: it
    /// keys the per-task trace histograms and never affects scheduling.
    static TASK_KIND: Cell<&'static str> = const { Cell::new("untagged") };
}

/// RAII guard restoring the previous task-kind label on drop.
pub struct TaskKindGuard {
    prev: &'static str,
}

/// Label subsequent `run_chunks`/`map_chunks` calls on this thread with a
/// task kind for the trace histograms (`pool.execute.<kind>` and
/// `pool.queue_wait.<kind>`). Nested guards restore the outer label. The
/// label has zero effect on execution — it only names histogram series when
/// a `crowdrl_obs` recorder is active.
pub fn task_kind(kind: &'static str) -> TaskKindGuard {
    TASK_KIND.with(|c| TaskKindGuard {
        prev: c.replace(kind),
    })
}

impl Drop for TaskKindGuard {
    fn drop(&mut self) {
        TASK_KIND.with(|c| c.set(self.prev));
    }
}

/// Trace context for one `run_chunks` call; present only while a recorder
/// is installed so the disabled path never reads a clock.
struct ObsCtx {
    execute_name: String,
    queue_name: String,
    enqueued: Instant,
}

impl ObsCtx {
    fn capture() -> Option<Self> {
        if !obs::enabled() {
            return None;
        }
        let kind = TASK_KIND.with(|c| c.get());
        Some(ObsCtx {
            execute_name: format!("pool.execute.{kind}"),
            queue_name: format!("pool.queue_wait.{kind}"),
            enqueued: Instant::now(),
        })
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn default_threads() -> usize {
    match std::env::var("CROWDRL_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => available_cores(),
        },
        Err(_) => available_cores(),
    }
}

/// The current thread cap, clamped to `1..=MAX_THREADS`.
pub fn max_threads() -> usize {
    let mut t = THREADS.load(Ordering::Relaxed);
    if t == UNSET {
        // Racy lazy init is fine: every racer computes the same default,
        // and an interleaved `set_threads` wins via compare-exchange.
        let d = default_threads();
        t = match THREADS.compare_exchange(UNSET, d, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => d,
            Err(current) => current,
        };
    }
    t.clamp(1, MAX_THREADS)
}

/// Override the thread cap at runtime (tests sweep 1, 2, 4…). `0` restores
/// the environment default. Results never depend on this value — only
/// wall-clock time does.
pub fn set_threads(n: usize) {
    let v = if n == 0 { default_threads() } else { n };
    THREADS.store(v, Ordering::Relaxed);
}

/// The shared job queue, spawning the worker threads on first use. Workers
/// are spawned up to the hard cap (not the current soft cap) so the cap can
/// be raised later without respawning; surplus workers just park on `recv`.
fn queue() -> &'static crossbeam::channel::Sender<Job> {
    QUEUE.get_or_init(|| {
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        for i in 0..MAX_THREADS - 1 {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("crowdrl-pool-{i}"))
                .spawn(move || {
                    IN_POOL.with(|f| f.set(true));
                    // The sender is leaked into a static, so `recv` only
                    // fails at process teardown.
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn crowdrl pool worker");
        }
        tx
    })
}

/// State shared between the caller and its helper jobs for one
/// `run_chunks` call. Lives on the caller's stack; helpers borrow it via a
/// lifetime-erased reference (see the safety argument in `run_chunks`).
struct Shared<'a> {
    /// Next unclaimed chunk index (work-claiming counter).
    next: AtomicUsize,
    n_chunks: usize,
    f: &'a (dyn Fn(usize) + Sync),
    /// Helper jobs that have not finished yet; guarded by `done`.
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by any chunk.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Trace context (task-kind histogram names); `None` unless recording.
    obs: Option<ObsCtx>,
}

impl Shared<'_> {
    /// Claim and execute chunks until none remain. Chunk panics are caught
    /// and stashed so sibling chunks still run and the caller can re-raise.
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_chunks {
                return;
            }
            let t0 = self.obs.as_ref().map(|_| Instant::now());
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.f)(i))) {
                let mut slot = self.panic.lock().expect("pool panic slot");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if let (Some(ctx), Some(t0)) = (&self.obs, t0) {
                obs::histogram_seconds(&ctx.execute_name, t0.elapsed());
            }
        }
    }

    fn finish_helper(&self) {
        let mut pending = self.pending.lock().expect("pool pending");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Execute `f(0), f(1), …, f(n_chunks - 1)`, possibly on multiple threads.
///
/// `f` must be safe to call concurrently for distinct chunk indices (each
/// chunk touching disjoint state). Every chunk runs exactly once. A panic
/// in any chunk is re-raised on the caller after all chunks completed.
///
/// With a thread cap of 1 — or when called from inside a pool chunk — all
/// chunks run inline on the caller in index order; this is the same
/// algorithm, so results are identical by construction.
pub fn run_chunks<F: Fn(usize) + Sync>(n_chunks: usize, f: F) {
    if n_chunks == 0 {
        return;
    }
    let threads = max_threads().min(n_chunks);
    if threads <= 1 || IN_POOL.with(|c| c.get()) {
        // Serial path: same chunked algorithm, executed inline. Record
        // per-chunk execute times under the same histogram names so serial
        // and pooled traces stay comparable (queue wait is zero here and
        // is simply not sampled).
        match ObsCtx::capture() {
            Some(ctx) => {
                for i in 0..n_chunks {
                    let t0 = Instant::now();
                    f(i);
                    obs::histogram_seconds(&ctx.execute_name, t0.elapsed());
                }
            }
            None => {
                for i in 0..n_chunks {
                    f(i);
                }
            }
        }
        return;
    }

    let shared = Shared {
        next: AtomicUsize::new(0),
        n_chunks,
        f: &f,
        pending: Mutex::new(threads - 1),
        done: Condvar::new(),
        panic: Mutex::new(None),
        obs: ObsCtx::capture(),
    };
    // SAFETY: helper jobs only touch `shared` before their `finish_helper`
    // decrement, and the caller blocks below until `pending` reaches zero —
    // i.e. until every helper job has run to completion — so the erased
    // reference never outlives the stack frame it points into. Jobs sitting
    // in the queue are guaranteed to run: workers loop forever and execute
    // every queued job, even if only to find the chunk counter exhausted.
    let erased: &'static Shared<'static> =
        unsafe { std::mem::transmute::<&Shared<'_>, &'static Shared<'static>>(&shared) };
    let tx = queue();
    for _ in 0..threads - 1 {
        let job: Job = Box::new(move || {
            if let Some(ctx) = &erased.obs {
                // Time from enqueue to a worker actually picking the job
                // up — the queue-wait component of pool latency.
                obs::histogram_seconds(&ctx.queue_name, ctx.enqueued.elapsed());
            }
            erased.drain();
            erased.finish_helper();
        });
        if tx.send(job).is_err() {
            unreachable!("pool queue disconnected: workers never drop their receiver");
        }
    }

    // The caller drives chunks too — worst case it executes all of them,
    // so a busy pool can never stall this call. Mark the thread as inside
    // the pool so nested parallel kernels run inline.
    IN_POOL.with(|c| c.set(true));
    shared.drain();
    IN_POOL.with(|c| c.set(false));

    let mut pending = shared.pending.lock().expect("pool pending");
    while *pending > 0 {
        pending = shared.done.wait(pending).expect("pool pending");
    }
    drop(pending);

    let payload = shared.panic.lock().expect("pool panic slot").take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Number of fixed-size chunks covering `0..n` (data-size-dependent only).
pub fn chunk_count(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk.max(1))
}

/// The `i`-th fixed chunk range of `0..n`.
pub fn chunk_range(n: usize, chunk: usize, i: usize) -> Range<usize> {
    let chunk = chunk.max(1);
    (i * chunk)..((i + 1) * chunk).min(n)
}

/// Run `f` over every fixed `chunk`-sized range of `0..n`.
pub fn for_each_chunk<F: Fn(Range<usize>) + Sync>(n: usize, chunk: usize, f: F) {
    run_chunks(chunk_count(n, chunk), |i| f(chunk_range(n, chunk, i)));
}

/// Map every fixed `chunk`-sized range of `0..n` through `f`, returning the
/// per-chunk results **in chunk-index order** — the deterministic-reduction
/// primitive: merge partials left to right and the result cannot depend on
/// which thread computed which chunk.
pub fn map_chunks<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let n_chunks = chunk_count(n, chunk);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n_chunks);
    out.resize_with(n_chunks, || None);
    let slots = SendPtr(out.as_mut_ptr());
    run_chunks(n_chunks, |i| {
        let value = f(chunk_range(n, chunk, i));
        // SAFETY: chunk index `i` is claimed by exactly one thread and
        // writes exactly slot `i`; slots are disjoint and outlive the call.
        unsafe { *slots.get().add(i) = Some(value) };
    });
    out.into_iter()
        .map(|v| v.expect("every chunk ran"))
        .collect()
}

/// Raw-pointer wrapper that asserts cross-thread use is safe because every
/// chunk writes a disjoint region. Used by [`map_chunks`] and the
/// row-partitioned matmul kernels.
pub struct SendPtr<T>(pub *mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

// SAFETY: callers guarantee disjoint access per chunk (see `run_chunks`).
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — the wrapper only moves the pointer between threads.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer.
    pub fn get(self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_geometry_is_data_size_only() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(1, 4), 1);
        assert_eq!(chunk_count(8, 4), 2);
        assert_eq!(chunk_count(9, 4), 3);
        assert_eq!(chunk_range(9, 4, 0), 0..4);
        assert_eq!(chunk_range(9, 4, 2), 8..9);
        // Degenerate chunk size is clamped, not divided by zero.
        assert_eq!(chunk_count(5, 0), 5);
        assert_eq!(chunk_range(5, 0, 4), 4..5);
    }

    #[test]
    fn every_chunk_runs_exactly_once_at_every_thread_count() {
        for threads in [1, 2, 4, 8] {
            set_threads(threads);
            let hits: Vec<AtomicU64> = (0..23).map(|_| AtomicU64::new(0)).collect();
            run_chunks(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "chunk {i} at {threads} threads"
                );
            }
        }
        set_threads(0);
    }

    #[test]
    fn map_chunks_returns_partials_in_chunk_order() {
        for threads in [1, 3, 8] {
            set_threads(threads);
            let partials = map_chunks(10, 3, |r| r.clone());
            assert_eq!(partials, vec![0..3, 3..6, 6..9, 9..10]);
        }
        set_threads(0);
    }

    #[test]
    fn nested_run_chunks_completes_inline() {
        set_threads(4);
        let total = AtomicU64::new(0);
        run_chunks(4, |_| {
            // Nested call: must run inline without touching the pool.
            run_chunks(4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
        set_threads(0);
    }

    #[test]
    fn chunk_panic_propagates_to_caller() {
        set_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_chunks(8, |i| {
                if i == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        }));
        set_threads(0);
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "chunk 5 exploded");
        // The pool must remain usable after a panic.
        let count = AtomicU64::new(0);
        run_chunks(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn thread_cap_is_clamped() {
        set_threads(64);
        assert_eq!(max_threads(), MAX_THREADS);
        set_threads(0);
        assert!(max_threads() >= 1);
    }
}
