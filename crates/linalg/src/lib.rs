//! # crowdrl-linalg
//!
//! Minimal dense linear algebra backing the CrowdRL neural-network
//! substrate (`crowdrl-nn`): a row-major `f32` [`Matrix`] with the handful
//! of kernels a feed-forward network needs — plain/transposed matrix
//! products in the cache-friendly *ikj* loop order, element-wise updates,
//! and the row-wise softmax/argmax used by classifier heads.
//!
//! The crate is deliberately tiny and dependency-free: the paper's models
//! (an MLP classifier and a DQN) are small enough that a well-ordered
//! triple loop on one core is ample, and owning the kernels keeps the whole
//! reproduction self-contained.

pub mod matrix;
pub mod ops;

pub use matrix::Matrix;
