//! # crowdrl-linalg
//!
//! Minimal dense linear algebra backing the CrowdRL neural-network
//! substrate (`crowdrl-nn`): a row-major `f32` [`Matrix`] with the handful
//! of kernels a feed-forward network needs — plain/transposed matrix
//! products in the cache-friendly *ikj* loop order, element-wise updates,
//! and the row-wise softmax/argmax used by classifier heads.
//!
//! The crate is deliberately tiny and self-contained — owning the kernels
//! keeps the whole reproduction auditable. Large products are blocked for
//! cache reuse and row-partitioned across a small reusable worker [`pool`]
//! whose fixed chunk boundaries and fixed-order reductions make every
//! result **bit-identical for any thread count** (see DESIGN.md §9); small
//! products stay on the single-threaded kernels the dispatch shares with
//! the parallel path.

pub mod matrix;
pub mod ops;
pub mod pool;
pub mod simd;

pub use matrix::Matrix;
pub use simd::NumericMode;
