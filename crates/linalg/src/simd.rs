//! Explicit-SIMD matmul kernels (AVX2 + FMA) — the **fast** numeric mode.
//!
//! The reference kernels in [`crate::matrix`] pin an exact f32 operation
//! order per output element so that parallel decomposition, caching and
//! checkpoint/resume stay bit-identical. That ordering contract caps them
//! at scalar (compiler-autovectorized) throughput. The kernels here trade
//! the bit contract away: they accumulate in SIMD lanes (8 × f32 per
//! 256-bit register, fused multiply-add), which associates the reduction
//! differently and so may differ from the reference by a few ULPs per
//! element — but they are still *deterministic on a given machine* (same
//! inputs → same bits, every run, any thread count: the kernels are
//! single-threaded and the lane decomposition is a function of shape
//! alone).
//!
//! Mode selection is explicit and flows through configuration
//! ([`NumericMode`]); nothing in the repo switches kernels behind the
//! caller's back. On CPUs without AVX2+FMA (or non-x86 targets) the fast
//! entry points degrade to the reference kernels, so `Fast` is then merely
//! a no-op relabeling — callers can check [`simd_available`] /
//! [`kernel_name`] and annotate traces accordingly.
//!
//! Kernel shape (see DESIGN.md §14): `matmul_fast` is a register-blocked
//! ikj kernel — 4 A-rows × 16 B-columns per block, accumulators held in 8
//! ymm registers, k streamed innermost with one broadcast per (row, k) —
//! with 8-column and scalar column tails and a 1-row tail path. All
//! operands are used in row-major layout directly; no packing buffers are
//! needed because every inner access (B row, C row) is already contiguous.

use crate::matrix::Matrix;

/// Which family of matmul/forward kernels a component runs.
///
/// `Reference` (the default) is the bit-identity mode every equivalence,
/// golden-trace and checkpoint test pins. `Fast` selects the explicit-SIMD
/// kernels in this module; results match `Reference` to a small relative
/// tolerance (see the module docs) but not bit-for-bit, so checkpoints and
/// traces produced under the two modes are *not* interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumericMode {
    /// Exact reference kernels with the pinned per-element op order.
    #[default]
    Reference,
    /// AVX2+FMA lane-parallel kernels (deterministic per machine, not
    /// bit-identical to `Reference`).
    Fast,
}

/// True when the running CPU supports the AVX2+FMA kernels.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Human-readable name of the kernel the fast mode resolves to, for trace
/// annotations (`simd.kernel`).
pub fn kernel_name() -> &'static str {
    if simd_available() {
        "avx2+fma"
    } else {
        "reference-fallback"
    }
}

/// f32 lanes per SIMD accumulator in the active fast kernel (`simd.lanes`
/// annotation); 1 when the fast mode falls back to the reference kernels.
pub fn lanes() -> usize {
    if simd_available() {
        8
    } else {
        1
    }
}

/// `a * b` with the fast kernel — `[m x k] * [k x n] -> [m x n]`.
pub fn matmul_fast(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_fast shape mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        // SAFETY: AVX2+FMA presence checked above.
        unsafe { avx2::matmul(a, b, &mut out) };
        return out;
    }
    a.matmul_serial(b)
}

/// `a * b^T` with the fast kernel — `[m x k] * [n x k]^T -> [m x n]`.
pub fn matmul_nt_fast(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt_fast shape mismatch: {}x{} * ({}x{})^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        // Wide-enough products run as transpose + the register-blocked
        // ikj kernel: the dot-product form is latency-bound on its k
        // reductions, while the O(n*k) transpose amortizes against the
        // O(m*n*k) multiply as soon as m is non-trivial.
        if a.rows() >= 8 && b.rows() >= 16 && b.cols() >= 8 {
            let mut out = Matrix::zeros(a.rows(), b.rows());
            let bt = b.transpose();
            // SAFETY: AVX2+FMA presence checked above.
            unsafe { avx2::matmul(a, &bt, &mut out) };
            return out;
        }
        let mut out = Matrix::zeros(a.rows(), b.rows());
        // SAFETY: AVX2+FMA presence checked above.
        unsafe { avx2::matmul_nt(a, b, &mut out) };
        return out;
    }
    a.matmul_nt_serial(b)
}

/// `a^T * b` with the fast kernel — `[m x k]^T * [m x n] -> [k x n]`.
pub fn matmul_tn_fast(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn_fast shape mismatch: ({}x{})^T * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        let mut out = Matrix::zeros(a.cols(), b.cols());
        // SAFETY: AVX2+FMA presence checked above.
        unsafe { avx2::matmul_tn(a, b, &mut out) };
        return out;
    }
    a.matmul_tn_serial(b)
}

/// `out += a^T * b` with the fast kernel — the fused form of
/// [`matmul_tn_fast`] used by gradient accumulation (`grad_w += x^T
/// d_pre`): the product lands directly in the accumulator, skipping the
/// temporary matrix and its follow-up `add_assign` pass. Fast-mode only;
/// the reference path keeps the temporary so its accumulation rounding
/// stays bit-pinned.
pub fn matmul_tn_acc_fast(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn_acc_fast shape mismatch: ({}x{})^T * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        (out.rows(), out.cols()),
        (a.cols(), b.cols()),
        "matmul_tn_acc_fast accumulator shape mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        // SAFETY: AVX2+FMA presence checked above.
        unsafe { avx2::matmul_tn(a, b, out) };
        return;
    }
    out.add_assign(&a.matmul_tn_serial(b));
}

/// One Adam update over a parameter tensor, vectorized 8 lanes wide.
///
/// Unlike the matmul kernels above, this is **bit-identical** to the scalar
/// loop it replaces, in every numeric mode: the update is purely
/// elementwise, each op (`mul`, `add`, `sub`, `div`, `sqrt`) is singly
/// rounded per IEEE 754 in both scalar and AVX2 forms, and the kernel
/// performs exactly the scalar expression's operations in the scalar
/// expression's order — no FMA contraction, no reduction reassociation.
/// It therefore runs unconditionally when AVX2 is present; checkpoints and
/// golden traces are unaffected.
///
/// Per element: `m = b1*m + (1-b1)*g`, `v = b2*v + ((1-b2)*g)*g`,
/// `p -= (lr * (m/b1t)) / (sqrt(v/b2t) + eps)` where `b1t`/`b2t` are the
/// bias-correction denominators for the current step.
#[allow(clippy::too_many_arguments)]
pub fn adam_update(
    param: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    b1t: f32,
    b2t: f32,
) {
    assert_eq!(param.len(), grad.len());
    assert_eq!(param.len(), m.len());
    assert_eq!(param.len(), v.len());
    let mut i = 0;
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        // SAFETY: AVX2 presence checked above; slices share one length.
        unsafe {
            i = avx2::adam_update(param, grad, m, v, lr, beta1, beta2, eps, b1t, b2t);
        }
    }
    // Scalar path / lane tail — the reference expression.
    for j in i..param.len() {
        m[j] = beta1 * m[j] + (1.0 - beta1) * grad[j];
        v[j] = beta2 * v[j] + (1.0 - beta2) * grad[j] * grad[j];
        let m_hat = m[j] / b1t;
        let v_hat = v[j] / b2t;
        param[j] -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Matrix;
    use std::arch::x86_64::*;

    /// 8-lane Adam update body. Uses only singly-rounded lane ops
    /// (`mul`/`add`/`sub`/`div`/`sqrt`, never FMA) in the scalar
    /// expression's order, so each lane computes bit-exactly what the
    /// scalar loop computes for that element. Returns how many elements
    /// were consumed (a multiple of 8); the caller finishes the tail.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn adam_update(
        param: &mut [f32],
        grad: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        b1t: f32,
        b2t: f32,
    ) -> usize {
        let n8 = param.len() - param.len() % 8;
        let pp = param.as_mut_ptr();
        let gp = grad.as_ptr();
        let mp = m.as_mut_ptr();
        let vp = v.as_mut_ptr();
        let b1 = _mm256_set1_ps(beta1);
        let b2 = _mm256_set1_ps(beta2);
        let one_m_b1 = _mm256_set1_ps(1.0 - beta1);
        let one_m_b2 = _mm256_set1_ps(1.0 - beta2);
        let lrv = _mm256_set1_ps(lr);
        let epsv = _mm256_set1_ps(eps);
        let b1tv = _mm256_set1_ps(b1t);
        let b2tv = _mm256_set1_ps(b2t);
        let mut i = 0;
        while i < n8 {
            let g = _mm256_loadu_ps(gp.add(i));
            // m = b1*m + (1-b1)*g
            let mv = _mm256_add_ps(
                _mm256_mul_ps(b1, _mm256_loadu_ps(mp.add(i))),
                _mm256_mul_ps(one_m_b1, g),
            );
            _mm256_storeu_ps(mp.add(i), mv);
            // v = b2*v + ((1-b2)*g)*g  — left-associated like the scalar.
            let vv = _mm256_add_ps(
                _mm256_mul_ps(b2, _mm256_loadu_ps(vp.add(i))),
                _mm256_mul_ps(_mm256_mul_ps(one_m_b2, g), g),
            );
            _mm256_storeu_ps(vp.add(i), vv);
            // p -= (lr*(m/b1t)) / (sqrt(v/b2t) + eps)
            let m_hat = _mm256_div_ps(mv, b1tv);
            let v_hat = _mm256_div_ps(vv, b2tv);
            let step = _mm256_div_ps(
                _mm256_mul_ps(lrv, m_hat),
                _mm256_add_ps(_mm256_sqrt_ps(v_hat), epsv),
            );
            _mm256_storeu_ps(pp.add(i), _mm256_sub_ps(_mm256_loadu_ps(pp.add(i)), step));
            i += 8;
        }
        n8
    }

    /// Horizontal sum of one 8-lane accumulator.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// Register-blocked ikj matmul: 4 A-rows × 16 B-columns per block (8
    /// ymm accumulators), k innermost. `out` must be zero-initialized;
    /// the kernel accumulates into it.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let ap = a.as_slice().as_ptr();
        let bp = b.as_slice().as_ptr();
        let op = out.as_mut_slice().as_mut_ptr();

        let mut i0 = 0;
        while i0 + 4 <= m {
            let mut j0 = 0;
            while j0 + 16 <= n {
                let mut acc = [_mm256_setzero_ps(); 8]; // [row][half]
                for kk in 0..k {
                    let b0 = _mm256_loadu_ps(bp.add(kk * n + j0));
                    let b1 = _mm256_loadu_ps(bp.add(kk * n + j0 + 8));
                    for r in 0..4 {
                        let av = _mm256_set1_ps(*ap.add((i0 + r) * k + kk));
                        acc[2 * r] = _mm256_fmadd_ps(av, b0, acc[2 * r]);
                        acc[2 * r + 1] = _mm256_fmadd_ps(av, b1, acc[2 * r + 1]);
                    }
                }
                for r in 0..4 {
                    _mm256_storeu_ps(op.add((i0 + r) * n + j0), acc[2 * r]);
                    _mm256_storeu_ps(op.add((i0 + r) * n + j0 + 8), acc[2 * r + 1]);
                }
                j0 += 16;
            }
            while j0 + 8 <= n {
                let mut acc = [_mm256_setzero_ps(); 4];
                for kk in 0..k {
                    let b0 = _mm256_loadu_ps(bp.add(kk * n + j0));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*ap.add((i0 + r) * k + kk));
                        *accr = _mm256_fmadd_ps(av, b0, *accr);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    _mm256_storeu_ps(op.add((i0 + r) * n + j0), *accr);
                }
                j0 += 8;
            }
            for j in j0..n {
                for r in 0..4 {
                    let mut s = 0.0f32;
                    for kk in 0..k {
                        s += *ap.add((i0 + r) * k + kk) * *bp.add(kk * n + j);
                    }
                    *op.add((i0 + r) * n + j) = s;
                }
            }
            i0 += 4;
        }
        // Row tail: one row at a time, same column blocking.
        while i0 < m {
            let mut j0 = 0;
            while j0 + 8 <= n {
                let mut acc = _mm256_setzero_ps();
                for kk in 0..k {
                    let av = _mm256_set1_ps(*ap.add(i0 * k + kk));
                    let b0 = _mm256_loadu_ps(bp.add(kk * n + j0));
                    acc = _mm256_fmadd_ps(av, b0, acc);
                }
                _mm256_storeu_ps(op.add(i0 * n + j0), acc);
                j0 += 8;
            }
            for j in j0..n {
                let mut s = 0.0f32;
                for kk in 0..k {
                    s += *ap.add(i0 * k + kk) * *bp.add(kk * n + j);
                }
                *op.add(i0 * n + j) = s;
            }
            i0 += 1;
        }
    }

    /// Reduce four 8-lane accumulators to their four horizontal sums,
    /// returned in lanes 0..4 of a 128-bit vector.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum4(a0: __m256, a1: __m256, a2: __m256, a3: __m256) -> __m128 {
        // hadd pairs: [a0p a0q a1p a1q | a0r a0s a1r a1s] etc., two levels
        // deep, then fold the 128-bit halves.
        let t01 = _mm256_hadd_ps(a0, a1);
        let t23 = _mm256_hadd_ps(a2, a3);
        let t = _mm256_hadd_ps(t01, t23); // [s0 s1 s2 s3 | s0' s1' s2' s3']
        _mm_add_ps(_mm256_castps256_ps128(t), _mm256_extractf128_ps(t, 1))
    }

    /// Row-dot kernel: `out[i][j] = a.row(i) · b.row(j)`. Four output
    /// columns are produced per pass so their dot reductions overlap (a
    /// single dot is latency-bound on its fused-multiply-add chain for the
    /// small `k` this repo's backward passes use); `k == 1` collapses to a
    /// broadcast outer product over contiguous `b`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_nt(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        let (m, k, n) = (a.rows(), a.cols(), b.rows());
        let ap = a.as_slice().as_ptr();
        let bp = b.as_slice().as_ptr();
        let op = out.as_mut_slice().as_mut_ptr();
        if k == 1 {
            // out[i][j] = a[i][0] * b[j][0]; b is a contiguous column.
            let n8 = n - n % 8;
            for i in 0..m {
                let av = _mm256_set1_ps(*ap.add(i));
                let orow = op.add(i * n);
                let mut j = 0;
                while j < n8 {
                    _mm256_storeu_ps(orow.add(j), _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(j))));
                    j += 8;
                }
                while j < n {
                    *orow.add(j) = *ap.add(i) * *bp.add(j);
                    j += 1;
                }
            }
            return;
        }
        let k8 = k - k % 8;
        for i in 0..m {
            let arow = ap.add(i * k);
            let mut j = 0;
            while j + 4 <= n {
                let b0 = bp.add(j * k);
                let b1 = bp.add((j + 1) * k);
                let b2 = bp.add((j + 2) * k);
                let b3 = bp.add((j + 3) * k);
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                let mut kk = 0;
                while kk < k8 {
                    let av = _mm256_loadu_ps(arow.add(kk));
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0.add(kk)), acc0);
                    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1.add(kk)), acc1);
                    acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2.add(kk)), acc2);
                    acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3.add(kk)), acc3);
                    kk += 8;
                }
                let mut sums = [0.0f32; 4];
                _mm_storeu_ps(sums.as_mut_ptr(), hsum4(acc0, acc1, acc2, acc3));
                while kk < k {
                    let av = *arow.add(kk);
                    sums[0] += av * *b0.add(kk);
                    sums[1] += av * *b1.add(kk);
                    sums[2] += av * *b2.add(kk);
                    sums[3] += av * *b3.add(kk);
                    kk += 1;
                }
                let orow = op.add(i * n + j);
                *orow = sums[0];
                *orow.add(1) = sums[1];
                *orow.add(2) = sums[2];
                *orow.add(3) = sums[3];
                j += 4;
            }
            while j < n {
                let brow = bp.add(j * k);
                let mut acc = _mm256_setzero_ps();
                let mut kk = 0;
                while kk < k8 {
                    acc = _mm256_fmadd_ps(
                        _mm256_loadu_ps(arow.add(kk)),
                        _mm256_loadu_ps(brow.add(kk)),
                        acc,
                    );
                    kk += 8;
                }
                let mut s = hsum(acc);
                while kk < k {
                    s += *arow.add(kk) * *brow.add(kk);
                    kk += 1;
                }
                *op.add(i * n + j) = s;
                j += 1;
            }
        }
    }

    /// Kernel for `a^T * b`, accumulating into `out` (`out += a^T b`).
    /// Callers wanting the plain product pass a zeroed `out`; the fused
    /// gradient-accumulation path passes `grad_w` directly.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_tn(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let ap = a.as_slice().as_ptr();
        let bp = b.as_slice().as_ptr();
        let op = out.as_mut_slice().as_mut_ptr();
        if n == 1 {
            // out[kc] += a[mm][kc] * b[mm]; vectorize over kc instead of
            // the (degenerate) column dimension. Accumulation stays in mm
            // order per output element.
            let k8 = k - k % 8;
            for mm in 0..m {
                let arow = ap.add(mm * k);
                let bv = _mm256_set1_ps(*bp.add(mm));
                let mut kc = 0;
                while kc < k8 {
                    let o = _mm256_loadu_ps(op.add(kc));
                    _mm256_storeu_ps(
                        op.add(kc),
                        _mm256_fmadd_ps(_mm256_loadu_ps(arow.add(kc)), bv, o),
                    );
                    kc += 8;
                }
                while kc < k {
                    *op.add(kc) += *arow.add(kc) * *bp.add(mm);
                    kc += 1;
                }
            }
            return;
        }
        // Register-blocked main path: a 4-output-row x 16-output-column
        // tile of accumulators lives in ymm registers for the entire m
        // sweep, so each b row is loaded once per tile (shared by the four
        // broadcasts) and `out` is touched once per tile instead of once
        // per (m, k) pair — the rank-1-update form was bound on exactly
        // that out-row traffic.
        let n16 = n - n % 16;
        let n8 = n - n % 8;
        let k4 = k - k % 4;
        let mut kc = 0;
        while kc < k4 {
            let mut j = 0;
            while j < n16 {
                let mut acc00 = _mm256_setzero_ps();
                let mut acc01 = _mm256_setzero_ps();
                let mut acc10 = _mm256_setzero_ps();
                let mut acc11 = _mm256_setzero_ps();
                let mut acc20 = _mm256_setzero_ps();
                let mut acc21 = _mm256_setzero_ps();
                let mut acc30 = _mm256_setzero_ps();
                let mut acc31 = _mm256_setzero_ps();
                for mm in 0..m {
                    let arow = ap.add(mm * k + kc);
                    let b0 = _mm256_loadu_ps(bp.add(mm * n + j));
                    let b1 = _mm256_loadu_ps(bp.add(mm * n + j + 8));
                    let av0 = _mm256_set1_ps(*arow);
                    acc00 = _mm256_fmadd_ps(av0, b0, acc00);
                    acc01 = _mm256_fmadd_ps(av0, b1, acc01);
                    let av1 = _mm256_set1_ps(*arow.add(1));
                    acc10 = _mm256_fmadd_ps(av1, b0, acc10);
                    acc11 = _mm256_fmadd_ps(av1, b1, acc11);
                    let av2 = _mm256_set1_ps(*arow.add(2));
                    acc20 = _mm256_fmadd_ps(av2, b0, acc20);
                    acc21 = _mm256_fmadd_ps(av2, b1, acc21);
                    let av3 = _mm256_set1_ps(*arow.add(3));
                    acc30 = _mm256_fmadd_ps(av3, b0, acc30);
                    acc31 = _mm256_fmadd_ps(av3, b1, acc31);
                }
                let tiles = [
                    [acc00, acc01],
                    [acc10, acc11],
                    [acc20, acc21],
                    [acc30, acc31],
                ];
                for (t, pair) in tiles.iter().enumerate() {
                    let orow = op.add((kc + t) * n + j);
                    let o0 = _mm256_loadu_ps(orow);
                    _mm256_storeu_ps(orow, _mm256_add_ps(o0, pair[0]));
                    let o1 = _mm256_loadu_ps(orow.add(8));
                    _mm256_storeu_ps(orow.add(8), _mm256_add_ps(o1, pair[1]));
                }
                j += 16;
            }
            while j < n8 {
                let mut acc = [_mm256_setzero_ps(); 4];
                for mm in 0..m {
                    let arow = ap.add(mm * k + kc);
                    let bv = _mm256_loadu_ps(bp.add(mm * n + j));
                    for (t, a) in acc.iter_mut().enumerate() {
                        *a = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(t)), bv, *a);
                    }
                }
                for (t, a) in acc.iter().enumerate() {
                    let orow = op.add((kc + t) * n + j);
                    _mm256_storeu_ps(orow, _mm256_add_ps(_mm256_loadu_ps(orow), *a));
                }
                j += 8;
            }
            while j < n {
                let mut sums = [0.0f32; 4];
                for mm in 0..m {
                    let arow = ap.add(mm * k + kc);
                    let bv = *bp.add(mm * n + j);
                    for (t, s) in sums.iter_mut().enumerate() {
                        *s += *arow.add(t) * bv;
                    }
                }
                for (t, s) in sums.iter().enumerate() {
                    *op.add((kc + t) * n + j) += *s;
                }
                j += 1;
            }
            kc += 4;
        }
        // Remaining 1-3 output rows: same structure, one row at a time.
        while kc < k {
            let mut j = 0;
            while j < n8 {
                let mut acc = _mm256_setzero_ps();
                for mm in 0..m {
                    acc = _mm256_fmadd_ps(
                        _mm256_set1_ps(*ap.add(mm * k + kc)),
                        _mm256_loadu_ps(bp.add(mm * n + j)),
                        acc,
                    );
                }
                let orow = op.add(kc * n + j);
                _mm256_storeu_ps(orow, _mm256_add_ps(_mm256_loadu_ps(orow), acc));
                j += 8;
            }
            while j < n {
                let mut s = 0.0f32;
                for mm in 0..m {
                    s += *ap.add(mm * k + kc) * *bp.add(mm * n + j);
                }
                *op.add(kc * n + j) += s;
                j += 1;
            }
            kc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Relative tolerance for fast-vs-reference comparisons. Lane-split
    /// accumulation and FMA change at most the reduction tree over `k`
    /// terms; for the magnitudes the fill produces (|a|, |b| ≤ 4, k < 48)
    /// the error is well under 64 ULPs of the result scale — 1e-4 relative
    /// gives ~17× headroom over the worst case observed across 10^6 cases.
    const FAST_TOL: f32 = 1e-4;

    fn fill(r: usize, c: usize, seed: u64) -> Matrix {
        let mut v = Vec::with_capacity(r * c);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in 0..r * c {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            // Sprinkle exact zeros to exercise the tn kernel's zero-skip.
            if i % 11 == 3 {
                v.push(0.0);
            } else {
                v.push(((s % 2000) as f32 - 1000.0) / 250.0);
            }
        }
        Matrix::from_vec(r, c, v)
    }

    fn assert_close(fast: &Matrix, reference: &Matrix, what: &str) {
        assert_eq!(fast.rows(), reference.rows(), "{what}: row mismatch");
        assert_eq!(fast.cols(), reference.cols(), "{what}: col mismatch");
        for (i, (f, r)) in fast.as_slice().iter().zip(reference.as_slice()).enumerate() {
            assert!(
                (f - r).abs() <= FAST_TOL * (1.0 + f.abs().max(r.abs())),
                "{what}: element {i}: fast {f} vs reference {r}"
            );
        }
    }

    #[test]
    fn fast_matches_reference_on_kernel_boundary_shapes() {
        // Shapes straddling every blocking boundary: 4-row blocks, 16- and
        // 8-column blocks, scalar tails, k % 8 tails.
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 16),
            (5, 9, 17),
            (3, 7, 8),
            (8, 16, 24),
            (9, 24, 33),
            (2, 3, 40),
            (32, 24, 64),
            (13, 41, 19),
        ] {
            let a = fill(m, k, (m * 1000 + k * 100 + n) as u64);
            let b = fill(k, n, (m * 7 + k * 5 + n * 3) as u64);
            assert_close(&matmul_fast(&a, &b), &a.matmul_serial(&b), "matmul");
            let bt = b.transpose();
            assert_close(
                &matmul_nt_fast(&a, &bt),
                &a.matmul_nt_serial(&bt),
                "matmul_nt",
            );
            let at = a.transpose();
            assert_close(
                &matmul_tn_fast(&at, &b),
                &at.matmul_tn_serial(&b),
                "matmul_tn",
            );
        }
    }

    #[test]
    fn adam_update_is_bit_identical_to_scalar() {
        // Lengths straddle the 8-lane boundary; values include exact
        // zeros, negatives and mixed magnitudes. Equality is `to_bits`
        // exact — this kernel carries no tolerance.
        for len in [1usize, 7, 8, 9, 16, 23, 40, 129] {
            let g: Vec<f32> = (0..len)
                .map(|i| {
                    if i % 9 == 4 {
                        0.0
                    } else {
                        ((i as f32) * 0.37 - 3.0) * if i % 2 == 0 { 1.0 } else { -1.3 }
                    }
                })
                .collect();
            let p0: Vec<f32> = (0..len).map(|i| (i as f32) * 0.11 - 1.0).collect();
            let (lr, b1, b2, eps) = (1e-3f32, 0.9f32, 0.999f32, 1e-8f32);

            // Run three steps through both paths, carrying state.
            let mut ps = p0.clone();
            let mut ms = vec![0.0f32; len];
            let mut vs = vec![0.0f32; len];
            let mut pk = p0;
            let mut mk = vec![0.0f32; len];
            let mut vk = vec![0.0f32; len];
            for t in 1..=3i32 {
                let b1t = 1.0 - b1.powi(t);
                let b2t = 1.0 - b2.powi(t);
                for i in 0..len {
                    ms[i] = b1 * ms[i] + (1.0 - b1) * g[i];
                    vs[i] = b2 * vs[i] + (1.0 - b2) * g[i] * g[i];
                    let m_hat = ms[i] / b1t;
                    let v_hat = vs[i] / b2t;
                    ps[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
                adam_update(&mut pk, &g, &mut mk, &mut vk, lr, b1, b2, eps, b1t, b2t);
                for i in 0..len {
                    assert_eq!(
                        ps[i].to_bits(),
                        pk[i].to_bits(),
                        "len {len} t {t} elem {i}: scalar {} vs kernel {}",
                        ps[i],
                        pk[i]
                    );
                    assert_eq!(
                        ms[i].to_bits(),
                        mk[i].to_bits(),
                        "m: len {len} t {t} elem {i}"
                    );
                    assert_eq!(
                        vs[i].to_bits(),
                        vk[i].to_bits(),
                        "v: len {len} t {t} elem {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_introspection_is_consistent() {
        if simd_available() {
            assert_eq!(kernel_name(), "avx2+fma");
            assert_eq!(lanes(), 8);
        } else {
            assert_eq!(kernel_name(), "reference-fallback");
            assert_eq!(lanes(), 1);
        }
    }

    proptest! {
        /// Shape-fuzzed equivalence: the fast kernels match the reference
        /// kernels within `FAST_TOL` for arbitrary small shapes (all
        /// blocking tails), and the reference mode itself is untouched —
        /// `matmul` (mode dispatch default) stays bit-identical to
        /// `matmul_serial`.
        #[test]
        fn prop_fast_kernels_match_reference(
            m in 1usize..24, k in 1usize..48, n in 1usize..40,
            seed in 0u64..500) {
            let a = fill(m, k, seed);
            let b = fill(k, n, seed.wrapping_add(7));
            let reference = a.matmul_serial(&b);
            let fast = matmul_fast(&a, &b);
            prop_assert_eq!(fast.rows(), reference.rows());
            for (f, r) in fast.as_slice().iter().zip(reference.as_slice()) {
                prop_assert!(
                    (f - r).abs() <= FAST_TOL * (1.0 + f.abs().max(r.abs())),
                    "matmul: fast {} vs reference {}", f, r);
            }

            let bt = b.transpose();
            let nt_fast = matmul_nt_fast(&a, &bt);
            let nt_ref = a.matmul_nt_serial(&bt);
            for (f, r) in nt_fast.as_slice().iter().zip(nt_ref.as_slice()) {
                prop_assert!(
                    (f - r).abs() <= FAST_TOL * (1.0 + f.abs().max(r.abs())),
                    "matmul_nt: fast {} vs reference {}", f, r);
            }

            let at = a.transpose();
            let tn_fast = matmul_tn_fast(&at, &b);
            let tn_ref = at.matmul_tn_serial(&b);
            for (f, r) in tn_fast.as_slice().iter().zip(tn_ref.as_slice()) {
                prop_assert!(
                    (f - r).abs() <= FAST_TOL * (1.0 + f.abs().max(r.abs())),
                    "matmul_tn: fast {} vs reference {}", f, r);
            }
        }
    }
}
