//! Row-wise vector operations used by classifier and Q-network heads.

use crate::Matrix;

/// Numerically-stable softmax of one row, in place.
pub fn softmax_inplace(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in row.iter_mut() {
            *x /= sum;
        }
    } else {
        let u = 1.0 / row.len() as f32;
        for x in row.iter_mut() {
            *x = u;
        }
    }
}

/// Softmax applied independently to every row of `m`.
pub fn softmax_rows_inplace(m: &mut Matrix) {
    for i in 0..m.rows() {
        softmax_inplace(m.row_mut(i));
    }
}

/// Index of the maximum entry in a row; ties break low. Panics on empty rows.
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of empty row");
    let mut best = 0;
    let mut best_v = row[0];
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `y += alpha * x` on slices.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice.
pub fn norm(a: &[f32]) -> f32 {
    a.iter().map(|&x| x * x).sum::<f32>().sqrt()
}

/// Clip every element of `v` to `[-limit, limit]` (gradient clipping).
pub fn clip_inplace(v: &mut [f32], limit: f32) {
    debug_assert!(limit > 0.0);
    for x in v.iter_mut() {
        *x = x.clamp(-limit, limit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut row = vec![1.0f32, 2.0, 3.0];
        softmax_inplace(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1000.0f32, 1001.0];
        softmax_inplace(&mut a);
        let mut b = vec![0.0f32, 1.0];
        softmax_inplace(&mut b);
        assert!((a[0] - b[0]).abs() < 1e-6);
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_handles_degenerate_rows() {
        let mut empty: Vec<f32> = vec![];
        softmax_inplace(&mut empty);
        let mut ninf = vec![f32::NEG_INFINITY, f32::NEG_INFINITY];
        softmax_inplace(&mut ninf);
        assert!((ninf[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_applies_per_row() {
        let mut m = Matrix::from_rows(&[&[0.0, 0.0], &[10.0, 0.0]]);
        softmax_rows_inplace(&mut m);
        assert!((m.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(m.get(1, 0) > 0.99);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "argmax of empty row")]
    fn argmax_empty_panics() {
        let _ = argmax(&[]);
    }

    #[test]
    fn dot_axpy_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0f32, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn clip_bounds_values() {
        let mut v = vec![-10.0f32, 0.5, 10.0];
        clip_inplace(&mut v, 1.0);
        assert_eq!(v, vec![-1.0, 0.5, 1.0]);
    }

    proptest! {
        #[test]
        fn prop_softmax_is_distribution(row in proptest::collection::vec(-50.0f32..50.0, 1..16)) {
            let mut r = row;
            softmax_inplace(&mut r);
            let sum: f32 = r.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(r.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }

        #[test]
        fn prop_softmax_preserves_argmax(row in proptest::collection::vec(-50.0f32..50.0, 1..16)) {
            let before = argmax(&row);
            let mut r = row;
            softmax_inplace(&mut r);
            prop_assert_eq!(argmax(&r), before);
        }
    }
}
