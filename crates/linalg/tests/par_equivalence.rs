//! Equivalence suite pinning the deterministic-parallelism contract: the
//! blocked kernels, the pool-partitioned kernels at every chunk size, and
//! the size-dispatching entries all produce the same matrix as the naive
//! reference — for arbitrary shapes (including 0-row/0-col edges) and for
//! every thread count 1–8.
//!
//! Equality is exact (`assert_eq!` on the `f32` buffers), not approximate:
//! the parallel decomposition must not change a single floating-point
//! operation's order.

use crowdrl_linalg::{pool, Matrix};
use proptest::prelude::*;

/// Deterministic pseudo-random fill (same scheme as the unit proptests).
fn fill(r: usize, c: usize, seed: u64, salt: u64) -> Matrix {
    let mut v = Vec::with_capacity(r * c);
    let mut s = seed.wrapping_add(salt).wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for _ in 0..r * c {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        v.push(((s % 2000) as f32 - 1000.0) / 250.0);
    }
    Matrix::from_vec(r, c, v)
}

fn assert_same(label: &str, reference: &Matrix, candidate: &Matrix) {
    assert_eq!(reference.rows(), candidate.rows(), "{label}: row count");
    assert_eq!(reference.cols(), candidate.cols(), "{label}: col count");
    for (i, (a, b)) in reference
        .as_slice()
        .iter()
        .zip(candidate.as_slice())
        .enumerate()
    {
        assert!(
            a == b,
            "{label}: element {i} differs: {a} vs {b} (bits {:08x} vs {:08x})",
            a.to_bits(),
            b.to_bits()
        );
    }
}

/// Run every kernel variant of all three products against the serial
/// reference under the current thread cap.
fn check_all_products(a: &Matrix, b: &Matrix, threads: usize) {
    // matmul: a [m x k] * b [k x n].
    let serial = a.matmul_serial(b);
    assert_same("matmul dispatch", &serial, &a.matmul(b));
    for chunk in [1, 2, 3, 7, 64] {
        let par = a.matmul_chunked(b, chunk);
        assert_same(
            &format!("matmul chunk={chunk} threads={threads}"),
            &serial,
            &par,
        );
    }

    // matmul_nt: a [m x k] * (bt [n x k])^T, with bt = b^T.
    let bt = b.transpose();
    let serial_nt = a.matmul_nt_serial(&bt);
    assert_same("matmul_nt dispatch", &serial_nt, &a.matmul_nt(&bt));
    for chunk in [1, 3, 64] {
        assert_same(
            &format!("matmul_nt chunk={chunk} threads={threads}"),
            &serial_nt,
            &a.matmul_nt_chunked(&bt, chunk),
        );
    }

    // matmul_tn: (at [k x m])^T * b' where at = a^T (so at^T * b == a * b).
    let at = a.transpose();
    let serial_tn = at.matmul_tn_serial(b);
    assert_same("matmul_tn dispatch", &serial_tn, &at.matmul_tn(b));
    for chunk in [1, 3, 64] {
        assert_same(
            &format!("matmul_tn chunk={chunk} threads={threads}"),
            &serial_tn,
            &at.matmul_tn_chunked(b, chunk),
        );
    }

    // All three agree with the naive jki reference (exact except for the
    // sign of zero, which `f32` equality treats as equal).
    let naive = a.matmul_naive(b);
    assert_same("matmul vs naive", &naive, &serial);
    assert_same("matmul_nt vs naive", &naive, &serial_nt);
    assert_same("matmul_tn vs naive", &naive, &serial_tn);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn all_kernels_bit_identical_across_thread_counts(
        m in 0usize..24, k in 0usize..12, n in 0usize..12,
        seed in 0u64..10_000, threads in 1usize..=8) {
        pool::set_threads(threads);
        let a = fill(m, k, seed, 1);
        let b = fill(k, n, seed, 2);
        check_all_products(&a, &b, threads);
        pool::set_threads(0);
    }
}

#[test]
fn zero_row_and_zero_col_edges() {
    for threads in 1..=8 {
        pool::set_threads(threads);
        for (m, k, n) in [
            (0, 0, 0),
            (0, 5, 3),
            (5, 0, 3),
            (5, 3, 0),
            (1, 0, 1),
            (0, 0, 7),
        ] {
            let a = fill(m, k, 11, 1);
            let b = fill(k, n, 11, 2);
            check_all_products(&a, &b, threads);
        }
    }
    pool::set_threads(0);
}

#[test]
fn large_enough_to_cross_the_parallel_dispatch_threshold() {
    // 96×80×72 = 552k multiply-adds with 96 > ROW_CHUNK rows: the
    // dispatching entries take the pool path at >1 thread. The result must
    // still match the forced-serial kernel exactly.
    for threads in [1, 2, 4, 8] {
        pool::set_threads(threads);
        let a = fill(96, 80, 7, 1);
        let b = fill(80, 72, 7, 2);
        assert_same("large matmul", &a.matmul_serial(&b), &a.matmul(&b));
        let bt = b.transpose();
        assert_same(
            "large matmul_nt",
            &a.matmul_nt_serial(&bt),
            &a.matmul_nt(&bt),
        );
        let at = a.transpose();
        assert_same(
            "large matmul_tn",
            &at.matmul_tn_serial(&b),
            &at.matmul_tn(&b),
        );
    }
    pool::set_threads(0);
}
