//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal benchmark harness with the criterion API shape used by the
//! `crowdrl-bench` benches: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up, an iteration count is
//! calibrated so one sample takes a few milliseconds, then `sample_size`
//! samples are timed. The report prints the min / median / mean per-iteration
//! time. This is a wall-clock harness — adequate for the relative,
//! order-of-magnitude tracking the workspace needs, without upstream's
//! statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// A measured benchmark: per-iteration timings in nanoseconds.
#[derive(Debug, Clone)]
pub struct Sampled {
    /// Benchmark label (`group/function` or `group/function/param`).
    pub id: String,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Per-iteration time of every sample, nanoseconds, sorted ascending.
    pub per_iter_ns: Vec<f64>,
}

impl Sampled {
    /// Fastest observed per-iteration time (ns).
    pub fn min_ns(&self) -> f64 {
        self.per_iter_ns.first().copied().unwrap_or(f64::NAN)
    }

    /// Median per-iteration time (ns).
    pub fn median_ns(&self) -> f64 {
        let n = self.per_iter_ns.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            self.per_iter_ns[n / 2]
        } else {
            (self.per_iter_ns[n / 2 - 1] + self.per_iter_ns[n / 2]) / 2.0
        }
    }

    /// Mean per-iteration time (ns).
    pub fn mean_ns(&self) -> f64 {
        if self.per_iter_ns.is_empty() {
            return f64::NAN;
        }
        self.per_iter_ns.iter().sum::<f64>() / self.per_iter_ns.len() as f64
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

/// Benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name` with `parameter` appended, criterion-style (`name/parameter`).
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id (used as `BenchmarkId::from_parameter(n)`).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The label text.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Times the closure handed to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    sample_size: usize,
    target_sample: Duration,
    result: Option<Sampled>,
    id: String,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: find an iteration count whose sample time
        // is close to the target, so timer overhead is amortized.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample || iters >= 1 << 20 {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                let target = self.target_sample.as_nanos() as f64;
                iters = ((target / per_iter.max(1.0)).ceil() as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Sampled {
            id: self.id.clone(),
            iters_per_sample: iters,
            per_iter_ns,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let id = format!("{}/{}", self.name, label);
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            target_sample: self.criterion.target_sample,
            result: None,
            id: id.clone(),
        };
        f(&mut bencher);
        match bencher.result {
            Some(sampled) => {
                println!(
                    "{id:<44} min {} median {} mean {}  ({} samples x {} iters)",
                    human(sampled.min_ns()),
                    human(sampled.median_ns()),
                    human(sampled.mean_ns()),
                    sampled.per_iter_ns.len(),
                    sampled.iters_per_sample,
                );
                self.criterion.results.push(sampled);
            }
            None => println!("{id:<44} (no measurement: Bencher::iter never called)"),
        }
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_label(), f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_label(), |b| f(b, input));
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness configuration and result sink.
pub struct Criterion {
    sample_size: usize,
    target_sample: Duration,
    results: Vec<Sampled>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            target_sample: Duration::from_millis(5),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the measurement time budget per sample.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.target_sample = d;
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Benchmark `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".into(),
        };
        group.run(id.into_label(), f);
        self
    }

    /// All measurements recorded so far (for benches that post-process or
    /// export results themselves).
    pub fn results(&self) -> &[Sampled] {
        &self.results
    }

    /// Criterion's end-of-run hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Prevent the optimizer from eliding a value. Re-exported for benches that
/// use `criterion::black_box` rather than `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions with an optional configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_micros(200));
        let mut group = c.benchmark_group("test");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 1000), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.results().len(), 2);
        for r in c.results() {
            assert!(r.min_ns() > 0.0);
            assert!(r.median_ns() >= r.min_ns());
            assert!(!r.per_iter_ns.is_empty());
        }
        assert!(c.results()[1].id.contains("sum_n/1000"));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("q_values", 128).into_label(),
            "q_values/128"
        );
        assert_eq!(BenchmarkId::from_parameter(7).into_label(), "7");
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_micros(50));
        targets = smoke_target
    }

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_produces_runner() {
        smoke();
    }
}
