//! Criterion microbenchmarks: truth-inference throughput.
//!
//! Measures each inference algorithm on the same simulated answer set —
//! the per-iteration hot path of every labelling framework.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdrl_inference::{DawidSkene, JointInference, MajorityVote, Pm};
use crowdrl_nn::{ClassifierConfig, SoftmaxClassifier};
use crowdrl_sim::{AnnotatorPool, DatasetSpec, PoolSpec};
use crowdrl_types::rng::seeded;
use crowdrl_types::{Answer, AnswerSet, Dataset, ObjectId};
use std::hint::black_box;

fn scenario(n: usize) -> (Dataset, AnnotatorPool, AnswerSet) {
    let mut rng = seeded(42);
    let dataset = DatasetSpec::gaussian("bench", n, 16, 2)
        .with_separation(2.2)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(4, 1).generate(2, &mut rng).unwrap();
    let mut answers = AnswerSet::new(n);
    for i in 0..n {
        for p in pool.profiles() {
            let label = pool.sample_answer(p.id, dataset.truth(i), &mut rng);
            answers
                .record(Answer {
                    object: ObjectId(i),
                    annotator: p.id,
                    label,
                })
                .unwrap();
        }
    }
    (dataset, pool, answers)
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("truth_inference");
    for &n in &[100usize, 500] {
        let (dataset, pool, answers) = scenario(n);
        group.bench_with_input(BenchmarkId::new("majority_vote", n), &n, |b, _| {
            b.iter(|| black_box(MajorityVote.infer(&answers, 2, pool.len()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("dawid_skene", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    DawidSkene::default()
                        .infer(&answers, 2, pool.len())
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("pm", n), &n, |b, _| {
            b.iter(|| black_box(Pm::default().infer(&answers, 2, pool.len()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("joint", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = seeded(7);
                let mut clf = SoftmaxClassifier::new(
                    ClassifierConfig {
                        epochs: 3,
                        ..Default::default()
                    },
                    dataset.dim(),
                    2,
                    &mut rng,
                )
                .unwrap();
                black_box(
                    JointInference::default()
                        .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference
}
criterion_main!(benches);
