//! Criterion microbenchmarks: pipeline-level costs — dataset generation,
//! classifier training, enrichment scans, top-k selection, and one full
//! (small) CrowdRL run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdrl_core::enrichment::enrich;
use crowdrl_core::{CrowdRl, CrowdRlConfig};
use crowdrl_linalg::Matrix;
use crowdrl_nn::{ClassifierConfig, SoftmaxClassifier};
use crowdrl_rl::topk;
use crowdrl_sim::{DatasetSpec, PoolSpec, SpeechSpec};
use crowdrl_types::rng::seeded;
use crowdrl_types::LabelledSet;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");

    group.bench_function("dataset_gen_speech_200", |b| {
        b.iter(|| {
            let mut rng = seeded(1);
            black_box(
                SpeechSpec::speech12()
                    .with_num_objects(200)
                    .generate(&mut rng)
                    .unwrap(),
            )
        })
    });

    // Classifier fit on a labelled subset (the joint model's M-step cost).
    {
        let mut rng = seeded(2);
        let dataset = DatasetSpec::gaussian("clf", 200, 64, 2)
            .with_separation(2.5)
            .generate(&mut rng)
            .unwrap();
        let x = Matrix::from_vec(
            dataset.len(),
            dataset.dim(),
            dataset.feature_buffer().to_vec(),
        );
        let y = dataset.truth_slice().to_vec();
        group.bench_function("classifier_fit_200x64", |b| {
            b.iter(|| {
                let mut rng = seeded(3);
                let mut clf = SoftmaxClassifier::new(
                    ClassifierConfig {
                        epochs: 5,
                        ..Default::default()
                    },
                    dataset.dim(),
                    2,
                    &mut rng,
                )
                .unwrap();
                black_box(clf.fit_hard(&x, &y, &mut rng).unwrap())
            })
        });

        // Enrichment scan over the unlabelled set.
        let mut rng = seeded(4);
        let mut clf =
            SoftmaxClassifier::new(ClassifierConfig::default(), dataset.dim(), 2, &mut rng)
                .unwrap();
        clf.fit_hard(&x, &y, &mut rng).unwrap();
        group.bench_function("enrichment_scan_200", |b| {
            b.iter(|| {
                let mut labelled = LabelledSet::new(dataset.len());
                black_box(enrich(&dataset, &clf, &mut labelled, 0.8, Some(16)).unwrap())
            })
        });
    }

    // Top-k heap selection over large score vectors.
    for &n in &[1_000usize, 100_000] {
        let scores: Vec<f64> = (0..n)
            .map(|i| ((i * 2_654_435_761) % 1_000) as f64)
            .collect();
        group.bench_with_input(BenchmarkId::new("top_k_8", n), &n, |b, _| {
            b.iter(|| black_box(topk::top_k_indices(&scores, 8)))
        });
    }

    // One full (tiny) CrowdRL run: the headline integration cost.
    group.bench_function("crowdrl_run_60_objects", |b| {
        let mut rng = seeded(5);
        let dataset = DatasetSpec::gaussian("run", 60, 8, 2)
            .with_separation(2.5)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
        b.iter(|| {
            let config = CrowdRlConfig::builder().budget(180.0).build().unwrap();
            let mut rng = seeded(6);
            black_box(CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap())
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
