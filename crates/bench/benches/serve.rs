//! Criterion microbenchmarks for the asynchronous labelling runtime:
//! raw event-queue throughput at 1k / 10k / 100k events, the assignment
//! ledger's dispatch→deliver cycle, and end-to-end `AsyncRuntime` runs in
//! both execution modes and both numeric modes.
//!
//! Unlike the other benches this one has a hand-written `main` so it can
//! export the measurements to `BENCH_serve.json` at the repository root
//! (events/sec and answers/sec derived from the median sample). The bench
//! binary also installs a counting global allocator so each end-to-end row
//! carries its heap-allocation rate (`allocs_per_event`) — the scratch
//! reuse work in the serve hot path is regression-guarded by that number
//! as well as by wall clock.

use criterion::{black_box, Criterion};
use crowdrl_core::CrowdRlConfig;
use crowdrl_linalg::NumericMode;
use crowdrl_obs as obs;
use crowdrl_serve::{
    AssignmentLedger, AsyncOutcome, AsyncRuntime, EventKind, EventQueue, ExecMode, ServeConfig,
};
use crowdrl_sim::{AnnotatorPool, DatasetSpec, PoolSpec};
use crowdrl_types::rng::seeded;
use crowdrl_types::{AnnotatorId, AssignmentId, Budget, Dataset, ObjectId, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation made by the process (alloc, alloc_zeroed,
/// realloc), delegating the actual work to the system allocator. Reads are
/// relaxed — the bench is effectively single-threaded at measurement time
/// and only deltas matter.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

const QUEUE_SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const RUN_OBJECTS: usize = 80;

fn t(x: f64) -> SimTime {
    SimTime::new(x).unwrap()
}

/// Push `n` events at pseudo-random times, then drain the queue in order.
fn queue_cycle(n: usize) -> usize {
    let mut queue = EventQueue::new();
    for i in 0..n as u64 {
        let at = (i.wrapping_mul(2_654_435_761) % 1_000_000) as f64 / 1_000.0;
        queue
            .push(t(at), EventKind::Deliver(AssignmentId(i)))
            .unwrap();
    }
    let mut drained = 0;
    while queue.pop().is_some() {
        drained += 1;
    }
    drained
}

/// Dispatch `n` assignments and deliver every one of them.
fn ledger_cycle(n: usize) -> f64 {
    let mut ledger = AssignmentLedger::new();
    let mut budget = Budget::new(n as f64).unwrap();
    for i in 0..n {
        let id = ledger
            .dispatch(
                ObjectId(i),
                AnnotatorId(i % 7),
                1.0,
                t(0.0),
                t(10.0),
                &budget,
            )
            .unwrap();
        ledger.deliver(id, t(1.0), &mut budget).unwrap();
    }
    budget.spent()
}

fn serve_fixture() -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(11);
    let dataset = DatasetSpec::gaussian("serve-bench", RUN_OBJECTS, 4, 2)
        .with_separation(3.5)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(4, 1).generate(2, &mut rng).unwrap();
    (dataset, pool)
}

fn run_async(
    dataset: &Dataset,
    pool: &AnnotatorPool,
    mode: ExecMode,
    numeric: NumericMode,
) -> AsyncOutcome {
    let config = CrowdRlConfig::builder()
        .budget(200.0)
        .initial_ratio(0.1)
        .batch_per_iter(4)
        .candidate_cap(32)
        .numeric(numeric)
        .build()
        .unwrap();
    let serve = ServeConfig::default().with_mode(mode);
    let mut rng = seeded(12);
    AsyncRuntime::new(config, serve)
        .run(dataset, pool, &mut rng)
        .unwrap()
}

/// The three end-to-end rows: reference numerics in both execution modes,
/// plus the SIMD fast mode single-threaded (the configuration the 1-core
/// container actually serves from).
const E2E_ROWS: [(&str, ExecMode, NumericMode); 3] = [
    (
        "run_async_single_thread",
        ExecMode::SingleThread,
        NumericMode::Reference,
    ),
    (
        "run_async_worker_pool_4",
        ExecMode::WorkerPool { workers: 4 },
        NumericMode::Reference,
    ),
    (
        "run_async_single_thread_fast",
        ExecMode::SingleThread,
        NumericMode::Fast,
    ),
];

/// One measured benchmark, reduced to what the JSON report needs.
struct Measurement {
    id: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
}

fn measurements(c: &Criterion) -> Vec<Measurement> {
    c.results()
        .iter()
        .map(|s| Measurement {
            id: s.id.clone(),
            median_ns: s.median_ns(),
            mean_ns: s.mean_ns(),
            min_ns: s.min_ns(),
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");

    for &n in &QUEUE_SIZES {
        group.bench_function(format!("event_queue_cycle/{n}"), |b| {
            b.iter(|| black_box(queue_cycle(n)))
        });
    }

    group.bench_function("ledger_dispatch_deliver/1000", |b| {
        b.iter(|| black_box(ledger_cycle(1_000)))
    });

    let (dataset, pool) = serve_fixture();
    for (label, mode, numeric) in E2E_ROWS {
        group.bench_function(format!("{label}/{RUN_OBJECTS}"), |b| {
            b.iter(|| black_box(run_async(&dataset, &pool, mode, numeric)))
        });
    }

    group.finish();
}

/// Per-configuration outcome metrics plus the heap-allocation rate of one
/// end-to-end run, measured outside the timing loop.
struct RowStats {
    outcome: AsyncOutcome,
    allocs_per_event: f64,
}

fn row_stats(dataset: &Dataset, pool: &AnnotatorPool) -> Vec<RowStats> {
    E2E_ROWS
        .iter()
        .map(|&(_, mode, numeric)| {
            // One warmup settles lazily-allocated globals out of the count.
            let _ = run_async(dataset, pool, mode, numeric);
            let before = alloc_count();
            let outcome = run_async(dataset, pool, mode, numeric);
            let allocs = alloc_count() - before;
            let events = outcome.metrics.events_processed.max(1);
            if obs::enabled() {
                obs::counter_add("serve.bench.allocs", allocs);
            }
            RowStats {
                outcome,
                allocs_per_event: allocs as f64 / events as f64,
            }
        })
        .collect()
}

/// Render the report as JSON by hand — the workspace has no serde.
fn render_json(found: &[Measurement], stats: &[RowStats]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(
        "  \"harness\": \"in-workspace criterion stand-in (wall clock, median of samples)\",\n",
    );
    out.push_str("  \"command\": \"cargo bench -p crowdrl-bench --bench serve\",\n");

    out.push_str("  \"event_queue\": [\n");
    for (i, &n) in QUEUE_SIZES.iter().enumerate() {
        let m = found
            .iter()
            .find(|m| m.id == format!("serve/event_queue_cycle/{n}"))
            .expect("queue measurement");
        let events_per_sec = n as f64 / (m.median_ns * 1e-9);
        let comma = if i + 1 < QUEUE_SIZES.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"events\": {n}, \"median_ns_per_cycle\": {:.0}, \
             \"ns_per_event\": {:.1}, \"events_per_sec\": {:.0} }}{comma}",
            m.median_ns,
            m.median_ns / n as f64,
            events_per_sec,
        );
    }
    out.push_str("  ],\n");

    let ledger = found
        .iter()
        .find(|m| m.id == "serve/ledger_dispatch_deliver/1000")
        .expect("ledger measurement");
    let _ = writeln!(
        out,
        "  \"ledger_dispatch_deliver\": {{ \"assignments\": 1000, \
         \"median_ns_per_cycle\": {:.0}, \"assignments_per_sec\": {:.0} }},",
        ledger.median_ns,
        1_000.0 / (ledger.median_ns * 1e-9),
    );

    out.push_str("  \"end_to_end\": [\n");
    for (i, ((label, _, numeric), row)) in E2E_ROWS.iter().zip(stats).enumerate() {
        let m = found
            .iter()
            .find(|m| m.id == format!("serve/{label}/{RUN_OBJECTS}"))
            .expect("run measurement");
        let secs = m.median_ns * 1e-9;
        let metrics = &row.outcome.metrics;
        let comma = if i + 1 < E2E_ROWS.len() { "," } else { "" };
        let numeric = match numeric {
            NumericMode::Reference => "reference",
            NumericMode::Fast => "fast",
        };
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{label}\", \"objects\": {RUN_OBJECTS}, \
             \"numeric\": \"{numeric}\", \
             \"median_ms\": {:.2}, \"min_ms\": {:.2}, \"mean_ms\": {:.2}, \
             \"events_processed\": {}, \"answers_delivered\": {}, \
             \"events_per_sec\": {:.0}, \"answers_per_sec\": {:.0}, \
             \"allocs_per_event\": {:.1} }}{comma}",
            m.median_ns * 1e-6,
            m.min_ns * 1e-6,
            m.mean_ns * 1e-6,
            metrics.events_processed,
            metrics.answers_delivered,
            metrics.events_processed as f64 / secs,
            metrics.answers_delivered as f64 / secs,
            row.allocs_per_event,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut criterion = Criterion::default().sample_size(10);
    bench_serve(&mut criterion);
    criterion.final_summary();

    let (dataset, pool) = serve_fixture();
    let stats = row_stats(&dataset, &pool);

    let json = render_json(&measurements(&criterion), &stats);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(err) => eprintln!("\ncould not write {}: {err}", path.display()),
    }
}
