//! Criterion microbenchmarks: DQN substrate latency — Q-value batches and
//! TD training steps, the agent-side hot path of every labelling
//! iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdrl_rl::{DqnAgent, DqnConfig, Transition};
use crowdrl_types::rng::seeded;
use std::hint::black_box;

fn agent(input_dim: usize) -> DqnAgent {
    let mut rng = seeded(1);
    let config = DqnConfig {
        input_dim,
        min_replay: 32,
        ..Default::default()
    };
    let mut agent = DqnAgent::new(config, &mut rng).unwrap();
    // Pre-fill the replay pool.
    for i in 0..512 {
        let v = (i % 17) as f32 / 17.0;
        agent.remember(Transition {
            state_action: vec![v; input_dim],
            reward: v,
            next_candidates: vec![vec![1.0 - v; input_dim]; 4].into(),
            terminal: i % 5 == 0,
        });
    }
    agent
}

fn bench_dqn(c: &mut Criterion) {
    let mut group = c.benchmark_group("dqn");
    let dim = 15; // the framework's FEATURE_DIM

    for &batch in &[128usize, 1024] {
        let a = agent(dim);
        let embeddings: Vec<Vec<f32>> = (0..batch)
            .map(|i| vec![(i % 13) as f32 / 13.0; dim])
            .collect();
        group.bench_with_input(BenchmarkId::new("q_values", batch), &batch, |b, _| {
            b.iter(|| black_box(a.q_values(&embeddings)))
        });
    }

    group.bench_function("train_step", |b| {
        let mut a = agent(dim);
        let mut rng = seeded(2);
        b.iter(|| black_box(a.train_step(&mut rng)))
    });

    group.bench_function("remember", |b| {
        let mut a = agent(dim);
        let t = Transition {
            state_action: vec![0.5; dim],
            reward: 1.0,
            next_candidates: vec![vec![0.25; dim]; 8].into(),
            terminal: false,
        };
        b.iter(|| a.remember(black_box(t.clone())))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dqn
}
criterion_main!(benches);
