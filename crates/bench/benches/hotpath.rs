//! Hot-path microbenchmarks for the deterministic parallel execution layer
//! (DESIGN.md §9): blocked matmul vs the naive kernel at paper-scale shape,
//! the log-table joint E-step vs a seed-style reference replicated below,
//! factored candidate scoring (per-part first-layer partials + one batched
//! Q-network forward over the (object, annotator) product) vs the seed's
//! per-pair loop, and cached vs uncached featurization through
//! `FeatureCache`.
//!
//! Hand-written `main` (like `serve.rs`) so the measurements land in
//! `BENCH_hotpath.json` at the repository root, including the speedup
//! ratios the PR acceptance gates on. The comparisons are algorithmic —
//! precomputed log tables, single-pass softmax, factored first-layer
//! scoring, stacked forwards, cache reuse — so the ratios hold on a
//! single core; the worker pool adds thread scaling on top on multicore
//! hosts without changing a single output bit (pinned by
//! `tests/determinism.rs`).

use criterion::{black_box, Criterion};
use crowdrl_core::features::{
    embed, embed_annotator_part, embed_object_part, FeatureCache, ObjectFeatures, StateSnapshot,
};
use crowdrl_linalg::{pool, simd, Matrix};
use crowdrl_nn::{ClassifierConfig, SoftmaxClassifier};
use crowdrl_rl::{DqnAgent, DqnConfig};
use crowdrl_sim::{DatasetSpec, PoolSpec};
use crowdrl_types::rng::seeded;
use crowdrl_types::{
    prob, AnnotatorId, AnnotatorProfile, Answer, AnswerSet, ClassId, ConfusionMatrix, LabelledSet,
    ObjectId,
};
use std::fmt::Write as _;
use std::path::Path;

// Paper-scale shapes: the text dataset's feature matrix (2344 objects x
// 1632 TF-IDF dims) and a fashion-MNIST-like labelling task (32k objects,
// 10 classes, ~5 votes per object).
const MM_ROWS: usize = 2344;
const MM_INNER: usize = 1632;
const MM_COLS: usize = 64;
const ESTEP_OBJECTS: usize = 32_000;
const ESTEP_CLASSES: usize = 10;
const ESTEP_ANNOTATORS: usize = 24;
const ANSWERS_PER_OBJECT: usize = 5;
const SCORE_OBJECTS: usize = 512;
const SCORE_ANNOTATORS: usize = 8;
const FEATURE_DIM: usize = 15;
const FEAT_OBJECTS: usize = 2000;

/// Deterministic pseudo-random value in [0, 1) without touching any RNG
/// stream (Weyl-style multiplicative hash, as in `serve.rs`).
fn hash01(i: usize) -> f64 {
    ((i as u64).wrapping_mul(2_654_435_761).wrapping_add(12_345) % 10_000) as f64 / 10_000.0
}

fn matrix_from(rows: usize, cols: usize, salt: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            m.set(r, c, hash01(salt + r * cols + c) as f32);
        }
    }
    m
}

// ---------------------------------------------------------------------------
// Joint E-step: seed-style reference vs the shipped log-table formulation.
// ---------------------------------------------------------------------------

struct EStepFixture {
    answers: AnswerSet,
    confusions: Vec<ConfusionMatrix>,
    /// Classifier probabilities, `[objects x k]`, already normalized.
    phi: Matrix,
}

fn e_step_fixture() -> EStepFixture {
    let mut answers = AnswerSet::new(ESTEP_OBJECTS);
    for i in 0..ESTEP_OBJECTS {
        for j in 0..ANSWERS_PER_OBJECT {
            answers
                .record(Answer {
                    object: ObjectId(i),
                    annotator: AnnotatorId((i * ANSWERS_PER_OBJECT + j) % ESTEP_ANNOTATORS),
                    label: ClassId((i * 7 + j * 3) % ESTEP_CLASSES),
                })
                .unwrap();
        }
    }
    let k = ESTEP_CLASSES;
    let mut confusions = Vec::with_capacity(ESTEP_ANNOTATORS);
    for a in 0..ESTEP_ANNOTATORS {
        let counts: Vec<f64> = (0..k * k)
            .map(|c| {
                let diag = if c / k == c % k { 40.0 } else { 0.0 };
                diag + 1.0 + hash01(a * k * k + c) * 4.0
            })
            .collect();
        let mut m = ConfusionMatrix::uniform(k).unwrap();
        m.set_from_counts(&counts, 1.0).unwrap();
        confusions.push(m);
    }
    let mut phi = Matrix::zeros(ESTEP_OBJECTS, k);
    for i in 0..ESTEP_OBJECTS {
        let mut row: Vec<f64> = (0..k).map(|c| 0.05 + hash01(i * k + c)).collect();
        prob::normalize(&mut row);
        for (c, &p) in row.iter().enumerate() {
            phi.set(i, c, p as f32);
        }
    }
    EStepFixture {
        answers,
        confusions,
        phi,
    }
}

/// The E-step exactly as the growth seed shipped it: one serial pass, a
/// fresh `logp` allocation per object, and `ln()` recomputed for every
/// (answer, class) pair straight off the confusion matrices.
fn e_step_reference(fx: &EStepFixture) -> (Vec<Vec<f64>>, f64) {
    let k = ESTEP_CLASSES;
    let (lo, hi) = (0.1f64.max(1e-12), 0.9f64);
    let mut out = Vec::with_capacity(ESTEP_OBJECTS);
    let mut ll = 0.0f64;
    for i in 0..ESTEP_OBJECTS {
        let mut logp = vec![0.0f64; k];
        for (c, lp) in logp.iter_mut().enumerate() {
            *lp = (fx.phi.get(i, c) as f64).clamp(lo, hi).ln();
        }
        for &(a, label) in fx.answers.answers_for(ObjectId(i)) {
            let conf = &fx.confusions[a.index()];
            for (c, lp) in logp.iter_mut().enumerate() {
                *lp += conf.get(ClassId(c), label).max(1e-12).ln();
            }
        }
        let lse = prob::log_sum_exp(&logp);
        ll += lse;
        let mut q: Vec<f64> = logp.iter().map(|&lp| (lp - lse).exp()).collect();
        prob::normalize(&mut q);
        out.push(q);
    }
    (out, ll)
}

/// The shipped hot path (`crowdrl-inference`'s chunked E-step): per-run
/// log-confusion tables (`O(annotators * k^2)` transcendentals instead of
/// `O(total_answers * k)`), a reused `logp` buffer, single-pass softmax
/// posteriors, and fixed 256-object chunks dispatched on the worker pool
/// with partials merged in chunk-index order.
fn e_step_hotpath(fx: &EStepFixture) -> (Vec<Vec<f64>>, f64) {
    const OBJECT_CHUNK: usize = 256;
    let k = ESTEP_CLASSES;
    let (lo, hi) = (0.1f64.max(1e-12), 0.9f64);
    let mut log_conf = Vec::with_capacity(fx.confusions.len() * k * k);
    for m in &fx.confusions {
        for truth in 0..k {
            for label in 0..k {
                log_conf.push(m.get(ClassId(truth), ClassId(label)).max(1e-12).ln());
            }
        }
    }
    let chunks = pool::map_chunks(ESTEP_OBJECTS, OBJECT_CHUNK, |range| {
        let mut posts: Vec<Vec<f64>> = Vec::with_capacity(range.len());
        let mut ll = 0.0f64;
        let mut logp = vec![0.0f64; k];
        for i in range {
            for (c, lp) in logp.iter_mut().enumerate() {
                *lp = (fx.phi.get(i, c) as f64).clamp(lo, hi).ln();
            }
            for &(a, label) in fx.answers.answers_for(ObjectId(i)) {
                let table = &log_conf[a.index() * k * k..(a.index() + 1) * k * k];
                for (c, lp) in logp.iter_mut().enumerate() {
                    *lp += table[c * k + label.index()];
                }
            }
            let mut q = Vec::with_capacity(k);
            let lse = prob::softmax_from_logs(&logp, &mut q);
            ll += lse;
            posts.push(q);
        }
        (posts, ll)
    });
    let mut out = Vec::with_capacity(ESTEP_OBJECTS);
    let mut ll = 0.0f64;
    for (posts, ll_part) in chunks {
        ll += ll_part;
        out.extend(posts);
    }
    (out, ll)
}

// ---------------------------------------------------------------------------
// DQN scoring and featurization fixtures.
// ---------------------------------------------------------------------------

/// Everything `agent.select` needs to score one candidate batch:
/// `SCORE_OBJECTS` candidate objects (with classifier probabilities and
/// vote histories) against `SCORE_ANNOTATORS` annotators.
struct ScoreFixture {
    agent: DqnAgent,
    candidates: Vec<(ObjectId, Vec<f64>)>,
    answers: AnswerSet,
    profiles: Vec<AnnotatorProfile>,
    labelled: LabelledSet,
    snapshot: StateSnapshot,
}

fn score_fixture() -> ScoreFixture {
    let mut rng = seeded(31);
    let agent = DqnAgent::new(
        DqnConfig {
            input_dim: FEATURE_DIM,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let pool = PoolSpec::new(SCORE_ANNOTATORS - 1, 1)
        .generate(ESTEP_CLASSES, &mut rng)
        .unwrap();
    let candidates: Vec<(ObjectId, Vec<f64>)> = (0..SCORE_OBJECTS)
        .map(|i| {
            let mut probs: Vec<f64> = (0..ESTEP_CLASSES)
                .map(|c| 0.05 + hash01(7_000_000 + i * ESTEP_CLASSES + c))
                .collect();
            prob::normalize(&mut probs);
            (ObjectId(i), probs)
        })
        .collect();
    let mut answers = AnswerSet::new(SCORE_OBJECTS);
    for i in 0..SCORE_OBJECTS {
        for j in 0..ANSWERS_PER_OBJECT {
            answers
                .record(Answer {
                    object: ObjectId(i),
                    annotator: AnnotatorId((i + j) % SCORE_ANNOTATORS),
                    label: ClassId((i * 3 + j) % ESTEP_CLASSES),
                })
                .unwrap();
        }
    }
    let snapshot = StateSnapshot {
        qualities: (0..SCORE_ANNOTATORS)
            .map(|a| 0.6 + hash01(a) * 0.4)
            .collect(),
        annotator_load: (0..SCORE_ANNOTATORS).map(|a| a * 17).collect(),
        budget_spent_fraction: 0.4,
        labelled_fraction: 0.3,
        enriched_fraction: 0.1,
        max_cost: pool.profiles().iter().map(|p| p.cost).fold(1.0, f64::max),
        phi_trust: 0.5,
    };
    ScoreFixture {
        agent,
        candidates,
        answers,
        profiles: pool.profiles().to_vec(),
        labelled: LabelledSet::new(SCORE_OBJECTS),
        snapshot,
    }
}

/// Candidate scoring exactly as the seed shipped it: re-derive the full
/// embedding per (object, annotator) pair — recomputing the object's
/// uncertainty and vote statistics once per annotator — and push every
/// pair through its own single-row Q-network forward.
fn score_seed(fx: &ScoreFixture) -> Vec<f32> {
    let mut out = Vec::with_capacity(fx.candidates.len() * fx.profiles.len());
    for (object, probs) in &fx.candidates {
        for profile in &fx.profiles {
            let e = embed(
                *object,
                profile,
                probs,
                &fx.answers,
                &fx.labelled,
                &fx.snapshot,
                3,
            );
            out.push(fx.agent.q_value(&e));
        }
    }
    out
}

/// The shipped scoring hot path (`agent.select`): the embedding's
/// object-dependent prefix computed once per object, the annotator/run
/// suffix once per annotator, and one *factored* Q-network forward over
/// the cartesian product — the first layer's partial pre-activations are
/// evaluated per part and summed per pair, so only the deeper layers run
/// per pair.
fn score_batched(fx: &ScoreFixture) -> Vec<f32> {
    let object_parts: Vec<Vec<f32>> = fx
        .candidates
        .iter()
        .map(|(object, probs)| {
            let object_features = ObjectFeatures::compute(*object, probs, &fx.answers);
            embed_object_part(&object_features, *object, &fx.labelled, 3)
        })
        .collect();
    let annotator_parts: Vec<Vec<f32>> = fx
        .profiles
        .iter()
        .map(|profile| embed_annotator_part(profile, &fx.snapshot, ESTEP_CLASSES))
        .collect();
    fx.agent.q_values_outer(&object_parts, &annotator_parts)
}

struct FeatFixture {
    dataset: crowdrl_types::Dataset,
    classifier: SoftmaxClassifier,
    answers: AnswerSet,
    objects: Vec<ObjectId>,
}

fn feat_fixture() -> FeatFixture {
    let mut rng = seeded(41);
    let dataset = DatasetSpec::gaussian("feat-bench", FEAT_OBJECTS, 8, 2)
        .with_separation(2.5)
        .generate(&mut rng)
        .unwrap();
    let mut classifier =
        SoftmaxClassifier::new(ClassifierConfig::default(), dataset.dim(), 2, &mut rng).unwrap();
    let x = Matrix::from_vec(
        dataset.len(),
        dataset.dim(),
        dataset.feature_buffer().to_vec(),
    );
    let labels: Vec<ClassId> = (0..dataset.len()).map(|i| dataset.truth(i)).collect();
    classifier.fit_hard(&x, &labels, &mut rng).unwrap();
    let mut answers = AnswerSet::new(dataset.len());
    for i in 0..dataset.len() {
        for j in 0..3 {
            answers
                .record(Answer {
                    object: ObjectId(i),
                    annotator: AnnotatorId((i + j) % 5),
                    label: dataset.truth(i),
                })
                .unwrap();
        }
    }
    let objects = (0..dataset.len()).map(ObjectId).collect();
    FeatFixture {
        dataset,
        classifier,
        answers,
        objects,
    }
}

/// Seed-style featurization: one single-row classifier forward per object
/// plus a fresh vote-statistics pass, every time.
fn featurize_uncached(fx: &FeatFixture) -> usize {
    let mut done = 0;
    for &obj in &fx.objects {
        let probs = fx
            .classifier
            .predict_proba_one(fx.dataset.features(obj.index()));
        let f = ObjectFeatures::compute(obj, &probs, &fx.answers);
        done += f.vote_count;
    }
    done
}

// ---------------------------------------------------------------------------
// Benchmarks + JSON report.
// ---------------------------------------------------------------------------

struct Measurement {
    id: String,
    median_ns: f64,
}

fn measurements(c: &Criterion) -> Vec<Measurement> {
    c.results()
        .iter()
        .map(|s| Measurement {
            id: s.id.clone(),
            median_ns: s.median_ns(),
        })
        .collect()
}

fn median_of<'a>(found: &'a [Measurement], id: &str) -> &'a Measurement {
    found
        .iter()
        .find(|m| m.id == format!("hotpath/{id}"))
        .unwrap_or_else(|| panic!("missing measurement {id}"))
}

fn bench_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");

    // 1. Blocked/tiled matmul vs the naive ijk kernel at paper scale.
    let a = matrix_from(MM_ROWS, MM_INNER, 1);
    let b = matrix_from(MM_INNER, MM_COLS, 2);
    group.bench_function("matmul_naive", |bch| {
        bch.iter(|| black_box(a.matmul_naive(&b)))
    });
    group.bench_function("matmul_blocked", |bch| bch.iter(|| black_box(a.matmul(&b))));
    // Explicit-SIMD fast kernel (NumericMode::Fast): same product, lane
    // (FMA) accumulation — verify the tolerance contract before timing.
    {
        let reference = a.matmul(&b);
        let fast = simd::matmul_fast(&a, &b);
        for (f, r) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert!(
                (f - r).abs() <= 1e-4 * (1.0 + f.abs().max(r.abs())),
                "simd matmul drift: {f} vs {r}"
            );
        }
    }
    group.bench_function("matmul_simd", |bch| {
        bch.iter(|| black_box(simd::matmul_fast(&a, &b)))
    });

    // 2. Joint E-step: seed-style reference vs the log-table hot path.
    let fx = e_step_fixture();
    let (ref_posts, ref_ll) = e_step_reference(&fx);
    let (hot_posts, hot_ll) = e_step_hotpath(&fx);
    // The hot path merges chunked likelihood partials (different summation
    // association than the reference's flat loop) and its single-pass
    // softmax posterior differs only by rounding.
    assert!(
        ((ref_ll - hot_ll) / ref_ll).abs() < 1e-9,
        "likelihood drift: {ref_ll} vs {hot_ll}"
    );
    for (r, h) in ref_posts.iter().zip(&hot_posts) {
        for (a, b) in r.iter().zip(h) {
            assert!((a - b).abs() < 1e-12, "E-step posterior drift: {a} vs {b}");
        }
    }
    group.bench_function("e_step_reference", |bch| {
        bch.iter(|| black_box(e_step_reference(&fx)))
    });
    group.bench_function("e_step_hotpath", |bch| {
        bch.iter(|| black_box(e_step_hotpath(&fx)))
    });

    // 3. DQN candidate scoring: the seed's per-(object, annotator)
    //    embed + forward loop vs the factored batched forward. The
    //    factored path splits the first layer's dot product between the
    //    object and annotator parts (different f32 reduction order), so
    //    the scores agree to rounding rather than bit-for-bit.
    let sfx = score_fixture();
    let seed_scores = score_seed(&sfx);
    let factored_scores = score_batched(&sfx);
    assert_eq!(seed_scores.len(), factored_scores.len());
    for (s, f) in seed_scores.iter().zip(&factored_scores) {
        assert!(
            (s - f).abs() <= 1e-4 * s.abs().max(1.0),
            "scoring drift: {s} vs {f}"
        );
    }
    group.bench_function("dqn_scoring_seed", |bch| {
        bch.iter(|| black_box(score_seed(&sfx)))
    });
    group.bench_function("dqn_scoring_batched", |bch| {
        bch.iter(|| black_box(score_batched(&sfx)))
    });

    // 4. Featurization: per-object forwards vs FeatureCache (cold = one
    //    batched forward over everything; warm = pure reuse).
    let ffx = feat_fixture();
    group.bench_function("featurize_uncached", |bch| {
        bch.iter(|| black_box(featurize_uncached(&ffx)))
    });
    group.bench_function("featurize_cache_cold", |bch| {
        bch.iter(|| {
            let mut cache = FeatureCache::new(ffx.dataset.len(), ffx.dataset.num_classes());
            cache.refresh(&ffx.dataset, &ffx.classifier, &ffx.answers, &ffx.objects);
            black_box(cache.recomputed())
        })
    });
    let mut warm = FeatureCache::new(ffx.dataset.len(), ffx.dataset.num_classes());
    warm.refresh(&ffx.dataset, &ffx.classifier, &ffx.answers, &ffx.objects);
    group.bench_function("featurize_cache_warm", |bch| {
        bch.iter(|| {
            warm.refresh(&ffx.dataset, &ffx.classifier, &ffx.answers, &ffx.objects);
            black_box(warm.reused())
        })
    });

    group.finish();
}

fn render_json(found: &[Measurement]) -> String {
    let speedup = |base: &str, new: &str| -> f64 {
        median_of(found, base).median_ns / median_of(found, new).median_ns
    };
    let row = |id: &str| -> f64 { median_of(found, id).median_ns * 1e-6 };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str(
        "  \"harness\": \"in-workspace criterion stand-in (wall clock, median of samples)\",\n",
    );
    out.push_str("  \"command\": \"cargo bench -p crowdrl-bench --bench hotpath\",\n");
    let _ = writeln!(out, "  \"pool_threads\": {},", pool::max_threads());
    out.push_str(
        "  \"note\": \"speedups are algorithmic (log tables, factored first-layer scoring, \
         stacked forwards, cache reuse) and hold per core; the worker pool adds thread \
         scaling on multicore hosts with bit-identical output\",\n",
    );
    let _ = writeln!(
        out,
        "  \"matmul\": {{ \"shape\": \"{MM_ROWS}x{MM_INNER} * {MM_INNER}x{MM_COLS}\", \
         \"naive_ms\": {:.2}, \"blocked_ms\": {:.2}, \"speedup\": {:.2}, \
         \"simd_ms\": {:.2}, \"simd_kernel\": \"{}\", \"simd_lanes\": {}, \
         \"simd_speedup_vs_blocked\": {:.2} }},",
        row("matmul_naive"),
        row("matmul_blocked"),
        speedup("matmul_naive", "matmul_blocked"),
        row("matmul_simd"),
        simd::kernel_name(),
        simd::lanes(),
        speedup("matmul_blocked", "matmul_simd"),
    );
    let _ = writeln!(
        out,
        "  \"joint_e_step\": {{ \"objects\": {ESTEP_OBJECTS}, \"classes\": {ESTEP_CLASSES}, \
         \"answers_per_object\": {ANSWERS_PER_OBJECT}, \
         \"reference_ms\": {:.2}, \"hotpath_ms\": {:.2}, \"speedup\": {:.2} }},",
        row("e_step_reference"),
        row("e_step_hotpath"),
        speedup("e_step_reference", "e_step_hotpath"),
    );
    let _ = writeln!(
        out,
        "  \"dqn_scoring\": {{ \"objects\": {SCORE_OBJECTS}, \"annotators\": {SCORE_ANNOTATORS}, \
         \"pairs\": {}, \"input_dim\": {FEATURE_DIM}, \
         \"per_pair_ms\": {:.2}, \"batched_ms\": {:.2}, \"speedup\": {:.2} }},",
        SCORE_OBJECTS * SCORE_ANNOTATORS,
        row("dqn_scoring_seed"),
        row("dqn_scoring_batched"),
        speedup("dqn_scoring_seed", "dqn_scoring_batched"),
    );
    let _ = writeln!(
        out,
        "  \"featurization\": {{ \"objects\": {FEAT_OBJECTS}, \
         \"uncached_ms\": {:.2}, \"cache_cold_ms\": {:.2}, \"cache_warm_ms\": {:.2}, \
         \"cold_speedup\": {:.2}, \"warm_speedup\": {:.2} }}",
        row("featurize_uncached"),
        row("featurize_cache_cold"),
        row("featurize_cache_warm"),
        speedup("featurize_uncached", "featurize_cache_cold"),
        speedup("featurize_uncached", "featurize_cache_warm"),
    );
    out.push_str("}\n");
    out
}

fn main() {
    // Run at the host's configured pool width (CROWDRL_THREADS or core
    // count). The outputs are bit-identical at every width — pinned by
    // tests/determinism.rs across 1/2/4 threads — so the measured speedups
    // are the single-core algorithmic floor; real cores scale them further.
    pool::set_threads(0);
    let mut criterion = Criterion::default().sample_size(10);
    bench_hotpath(&mut criterion);
    criterion.final_summary();

    let json = render_json(&measurements(&criterion));
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(err) => eprintln!("\ncould not write {}: {err}", path.display()),
    }
}
