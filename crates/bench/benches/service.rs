//! Criterion benchmarks for the multi-tenant service: full service runs
//! at increasing project counts over one shared annotator pool, in both
//! execution modes.
//!
//! Like `serve.rs` this has a hand-written `main` so it can export the
//! measurements to `BENCH_service.json` at the repository root:
//! aggregate answers/sec and the per-project fairness spread (relative
//! delivered-answer dispersion) as the tenant count grows.

use criterion::{black_box, Criterion};
use crowdrl_core::CrowdRlConfig;
use crowdrl_serve::ExecMode;
use crowdrl_service::{ProjectSpec, Service, ServiceConfig, ServiceOutcome};
use crowdrl_sim::{AnnotatorPool, DatasetSpec, PoolSpec};
use crowdrl_types::rng::seeded;
use std::fmt::Write as _;
use std::path::Path;

/// Tenant counts the scaling sweep measures.
const PROJECT_COUNTS: [usize; 3] = [1, 4, 8];
/// Objects per project — small enough for a criterion sample, large
/// enough that the decision loop dominates setup.
const OBJECTS: usize = 60;
/// Shared pool size (workers + experts).
const WORKERS: usize = 36;
const EXPERTS: usize = 4;

fn fixture(projects: usize) -> (Vec<ProjectSpec>, AnnotatorPool) {
    let mut rng = seeded(21);
    let pool = PoolSpec::new(WORKERS, EXPERTS)
        .generate(2, &mut rng)
        .unwrap();
    let specs = (0..projects)
        .map(|p| {
            let dataset = DatasetSpec::gaussian(format!("bench-{p}"), OBJECTS, 4, 2)
                .with_separation(3.0)
                .generate(&mut rng)
                .unwrap();
            let config = CrowdRlConfig::builder()
                .budget(2.0 * OBJECTS as f64)
                .batch_per_iter(12)
                .candidate_cap(24)
                .build()
                .unwrap();
            ProjectSpec::new(format!("bench-{p}"), config, dataset).with_priority((p % 3) as u32)
        })
        .collect();
    (specs, pool)
}

fn run_service(specs: &[ProjectSpec], pool: &AnnotatorPool, mode: ExecMode) -> ServiceOutcome {
    let config = ServiceConfig::default()
        .with_capacity(specs.len())
        .with_shards(2)
        .with_mode(mode);
    let mut rng = seeded(22);
    Service::new(config)
        .unwrap()
        .run(specs, pool, &mut rng)
        .unwrap()
}

/// One measured benchmark, reduced to what the JSON report needs.
struct Measurement {
    id: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
}

fn measurements(c: &Criterion) -> Vec<Measurement> {
    c.results()
        .iter()
        .map(|s| Measurement {
            id: s.id.clone(),
            median_ns: s.median_ns(),
            mean_ns: s.mean_ns(),
            min_ns: s.min_ns(),
        })
        .collect()
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    for &projects in &PROJECT_COUNTS {
        let (specs, pool) = fixture(projects);
        group.bench_function(format!("run_single_thread/{projects}"), |b| {
            b.iter(|| black_box(run_service(&specs, &pool, ExecMode::SingleThread)))
        });
        group.bench_function(format!("run_worker_pool_4/{projects}"), |b| {
            b.iter(|| {
                black_box(run_service(
                    &specs,
                    &pool,
                    ExecMode::WorkerPool { workers: 4 },
                ))
            })
        });
    }
    group.finish();
}

/// Render the report as JSON by hand — the workspace has no serde.
fn render_json(found: &[Measurement], references: &[(usize, ServiceOutcome)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"service\",\n");
    out.push_str(
        "  \"harness\": \"in-workspace criterion stand-in (wall clock, median of samples)\",\n",
    );
    out.push_str("  \"command\": \"cargo bench -p crowdrl-bench --bench service\",\n");
    let _ = writeln!(
        out,
        "  \"fixture\": {{ \"objects_per_project\": {OBJECTS}, \
         \"pool\": {{ \"workers\": {WORKERS}, \"experts\": {EXPERTS} }} }},"
    );

    out.push_str("  \"scaling\": [\n");
    for (i, &projects) in PROJECT_COUNTS.iter().enumerate() {
        let (_, reference) = references
            .iter()
            .find(|(p, _)| *p == projects)
            .expect("reference outcome");
        let agg = &reference.aggregate;
        let comma = if i + 1 < PROJECT_COUNTS.len() {
            ","
        } else {
            ""
        };
        let mut modes = String::new();
        for (j, label) in ["run_single_thread", "run_worker_pool_4"]
            .iter()
            .enumerate()
        {
            let m = found
                .iter()
                .find(|m| m.id == format!("service/{label}/{projects}"))
                .expect("service measurement");
            let secs = m.median_ns * 1e-9;
            let mode_comma = if j == 0 { "," } else { "" };
            let _ = writeln!(
                modes,
                "        {{ \"name\": \"{label}\", \"median_ms\": {:.2}, \
                 \"min_ms\": {:.2}, \"mean_ms\": {:.2}, \
                 \"answers_per_sec\": {:.0}, \"events_per_sec\": {:.0} }}{mode_comma}",
                m.median_ns * 1e-6,
                m.min_ns * 1e-6,
                m.mean_ns * 1e-6,
                agg.answers_delivered as f64 / secs,
                agg.events_processed as f64 / secs,
            );
        }
        let _ = writeln!(
            out,
            "    {{ \"projects\": {projects}, \"answers_delivered\": {}, \
             \"events_processed\": {}, \"rounds\": {}, \
             \"fairness_spread\": {:.4}, \"modes\": [\n{modes}      ] }}{comma}",
            agg.answers_delivered, agg.events_processed, agg.rounds, agg.fairness_spread,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut criterion = Criterion::default().sample_size(10);
    bench_service(&mut criterion);
    criterion.final_summary();

    // Both execution modes produce the identical merged trace (a tested
    // invariant), so one reference run per project count supplies the
    // answer/event counts and the fairness spread for both mode rows.
    let references: Vec<(usize, ServiceOutcome)> = PROJECT_COUNTS
        .iter()
        .map(|&projects| {
            let (specs, pool) = fixture(projects);
            (projects, run_service(&specs, &pool, ExecMode::SingleThread))
        })
        .collect();

    let json = render_json(&measurements(&criterion), &references);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(err) => eprintln!("\ncould not write {}: {err}", path.display()),
    }
}
