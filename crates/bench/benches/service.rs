//! Criterion benchmarks for the multi-tenant service: full service runs
//! at increasing project counts over one shared annotator pool, in both
//! execution modes.
//!
//! Like `serve.rs` this has a hand-written `main` so it can export the
//! measurements to `BENCH_service.json` at the repository root:
//! aggregate answers/sec and the per-project fairness spread (relative
//! delivered-answer dispersion) as the tenant count grows.

use criterion::{black_box, Criterion};
use crowdrl_core::agent::SelectionAgent;
use crowdrl_core::features::StateSnapshot;
use crowdrl_core::{Ablation, CrowdRlConfig, DecideConfig, DecideMode, DecideStats, Exploration};
use crowdrl_rl::DqnConfig;
use crowdrl_serve::ExecMode;
use crowdrl_service::{ProjectSpec, Service, ServiceConfig, ServiceOutcome};
use crowdrl_sim::{AnnotatorPool, DatasetSpec, PoolSpec};
use crowdrl_types::rng::seeded;
use crowdrl_types::{
    AnnotatorId, AnnotatorKind, AnnotatorProfile, AnswerSet, LabelledSet, ObjectId,
};
use rand::Rng as _;
use std::fmt::Write as _;
use std::path::Path;

/// Tenant counts the scaling sweep measures.
const PROJECT_COUNTS: [usize; 3] = [1, 4, 8];
/// Pool sizes of the `serve.decide` microbench sweep.
const DECIDE_POOLS: [usize; 3] = [500, 2_000, 10_000];
/// Candidate objects per decide call (the serve-loop `candidate_cap`
/// regime at scale).
const DECIDE_OBJECTS: usize = 64;
/// Objects per project — small enough for a criterion sample, large
/// enough that the decision loop dominates setup.
const OBJECTS: usize = 60;
/// Shared pool size (workers + experts).
const WORKERS: usize = 36;
const EXPERTS: usize = 4;

fn fixture(projects: usize) -> (Vec<ProjectSpec>, AnnotatorPool) {
    let mut rng = seeded(21);
    let pool = PoolSpec::new(WORKERS, EXPERTS)
        .generate(2, &mut rng)
        .unwrap();
    let specs = (0..projects)
        .map(|p| {
            let dataset = DatasetSpec::gaussian(format!("bench-{p}"), OBJECTS, 4, 2)
                .with_separation(3.0)
                .generate(&mut rng)
                .unwrap();
            let config = CrowdRlConfig::builder()
                .budget(2.0 * OBJECTS as f64)
                .batch_per_iter(12)
                .candidate_cap(24)
                .build()
                .unwrap();
            ProjectSpec::new(format!("bench-{p}"), config, dataset).with_priority((p % 3) as u32)
        })
        .collect();
    (specs, pool)
}

fn run_service(specs: &[ProjectSpec], pool: &AnnotatorPool, mode: ExecMode) -> ServiceOutcome {
    let config = ServiceConfig::default()
        .with_capacity(specs.len())
        .with_shards(2)
        .with_mode(mode);
    let mut rng = seeded(22);
    Service::new(config)
        .unwrap()
        .run(specs, pool, &mut rng)
        .unwrap()
}

/// Shared inputs for one `serve.decide` microbench call: a large pool in
/// a realistic mid-run state (~10% profiled by the inference engine with
/// distinct estimated qualities and loads, the rest at the prior with
/// zero load — the regime the column-dedup pruning exploits).
struct DecideFixture {
    profiles: Vec<AnnotatorProfile>,
    snapshot: StateSnapshot,
    candidates: Vec<(ObjectId, Vec<f64>)>,
    answers: AnswerSet,
    labelled: LabelledSet,
}

fn decide_fixture(pool: usize) -> DecideFixture {
    let profiles = (0..pool)
        .map(|i| {
            let expert = i % 10 == 9;
            AnnotatorProfile::new(
                AnnotatorId(i),
                if expert {
                    AnnotatorKind::Expert
                } else {
                    AnnotatorKind::Worker
                },
                if expert {
                    8.0
                } else {
                    1.0 + (i % 7) as f64 * 0.3
                },
            )
            .unwrap()
        })
        .collect();
    let mut qrng = seeded(5);
    let profiled = pool / 10;
    let qualities = (0..pool)
        .map(|i| {
            if i < profiled {
                0.3 + 0.65 * qrng.random::<f64>()
            } else {
                0.5
            }
        })
        .collect();
    let loads = (0..pool)
        .map(|i| if i < profiled { 1 + i % 6 } else { 0 })
        .collect();
    let snapshot = StateSnapshot {
        qualities,
        annotator_load: loads,
        budget_spent_fraction: 0.3,
        labelled_fraction: 0.4,
        enriched_fraction: 0.1,
        max_cost: 8.0,
        phi_trust: 0.5,
    };
    let candidates = (0..DECIDE_OBJECTS)
        .map(|i| {
            let p = 0.3 + (i as f64 * 0.011) % 0.45;
            (ObjectId(i), vec![p, 1.0 - p])
        })
        .collect();
    DecideFixture {
        profiles,
        snapshot,
        candidates,
        answers: AnswerSet::new(DECIDE_OBJECTS),
        labelled: LabelledSet::new(DECIDE_OBJECTS),
    }
}

fn decide_agent(mode: DecideMode) -> SelectionAgent {
    let mut rng = seeded(9);
    SelectionAgent::new(
        DqnConfig::default(),
        &Exploration::Ucb { scale: 0.1 },
        DecideConfig {
            mode,
            shortlist: 64,
        },
        None,
        &mut rng,
    )
    .unwrap()
}

/// Benchmark one `select` call per iteration at each pool size, in both
/// modes, and return the pruned twin's stat deltas over the timed
/// iterations (scored fraction and cache hit rate for the report).
fn bench_decide(c: &mut Criterion) -> Vec<(usize, DecideStats)> {
    let mut deltas = Vec::new();
    let mut group = c.benchmark_group("service");
    for &pool in &DECIDE_POOLS {
        let f = decide_fixture(pool);
        for mode in [DecideMode::Exhaustive, DecideMode::Pruned] {
            let mut agent = decide_agent(mode);
            let mut rng = seeded(9);
            // Warm: accrue UCB counts and fill the activation cache, the
            // steady state of a serve loop between parameter refreshes.
            for _ in 0..3 {
                agent.select(
                    &f.candidates,
                    &f.profiles,
                    None,
                    &f.answers,
                    &f.labelled,
                    &f.snapshot,
                    100.0,
                    3,
                    8,
                    Ablation::default(),
                    &mut rng,
                );
            }
            let before = agent.decide_stats();
            let label = match mode {
                DecideMode::Exhaustive => "decide_exhaustive",
                DecideMode::Pruned => "decide_pruned",
            };
            group.bench_function(format!("{label}/{pool}"), |b| {
                b.iter(|| {
                    black_box(agent.select(
                        &f.candidates,
                        &f.profiles,
                        None,
                        &f.answers,
                        &f.labelled,
                        &f.snapshot,
                        100.0,
                        3,
                        8,
                        Ablation::default(),
                        &mut rng,
                    ))
                })
            });
            if mode == DecideMode::Pruned {
                deltas.push((pool, agent.decide_stats().delta_since(&before)));
            }
        }
    }
    group.finish();
    deltas
}

/// One measured benchmark, reduced to what the JSON report needs.
struct Measurement {
    id: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
}

fn measurements(c: &Criterion) -> Vec<Measurement> {
    c.results()
        .iter()
        .map(|s| Measurement {
            id: s.id.clone(),
            median_ns: s.median_ns(),
            mean_ns: s.mean_ns(),
            min_ns: s.min_ns(),
        })
        .collect()
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    for &projects in &PROJECT_COUNTS {
        let (specs, pool) = fixture(projects);
        group.bench_function(format!("run_single_thread/{projects}"), |b| {
            b.iter(|| black_box(run_service(&specs, &pool, ExecMode::SingleThread)))
        });
        group.bench_function(format!("run_worker_pool_4/{projects}"), |b| {
            b.iter(|| {
                black_box(run_service(
                    &specs,
                    &pool,
                    ExecMode::WorkerPool { workers: 4 },
                ))
            })
        });
    }
    group.finish();
}

/// Render the report as JSON by hand — the workspace has no serde.
fn render_json(
    found: &[Measurement],
    references: &[(usize, ServiceOutcome)],
    decide: &[(usize, DecideStats)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"service\",\n");
    out.push_str(
        "  \"harness\": \"in-workspace criterion stand-in (wall clock, median of samples)\",\n",
    );
    out.push_str("  \"command\": \"cargo bench -p crowdrl-bench --bench service\",\n");
    let _ = writeln!(
        out,
        "  \"fixture\": {{ \"objects_per_project\": {OBJECTS}, \
         \"pool\": {{ \"workers\": {WORKERS}, \"experts\": {EXPERTS} }} }},"
    );

    out.push_str("  \"scaling\": [\n");
    for (i, &projects) in PROJECT_COUNTS.iter().enumerate() {
        let (_, reference) = references
            .iter()
            .find(|(p, _)| *p == projects)
            .expect("reference outcome");
        let agg = &reference.aggregate;
        let comma = if i + 1 < PROJECT_COUNTS.len() {
            ","
        } else {
            ""
        };
        let mut modes = String::new();
        for (j, label) in ["run_single_thread", "run_worker_pool_4"]
            .iter()
            .enumerate()
        {
            let m = found
                .iter()
                .find(|m| m.id == format!("service/{label}/{projects}"))
                .expect("service measurement");
            let secs = m.median_ns * 1e-9;
            let mode_comma = if j == 0 { "," } else { "" };
            let _ = writeln!(
                modes,
                "        {{ \"name\": \"{label}\", \"median_ms\": {:.2}, \
                 \"min_ms\": {:.2}, \"mean_ms\": {:.2}, \
                 \"answers_per_sec\": {:.0}, \"events_per_sec\": {:.0} }}{mode_comma}",
                m.median_ns * 1e-6,
                m.min_ns * 1e-6,
                m.mean_ns * 1e-6,
                agg.answers_delivered as f64 / secs,
                agg.events_processed as f64 / secs,
            );
        }
        let _ = writeln!(
            out,
            "    {{ \"projects\": {projects}, \"answers_delivered\": {}, \
             \"events_processed\": {}, \"rounds\": {}, \
             \"fairness_spread\": {:.4}, \"modes\": [\n{modes}      ] }}{comma}",
            agg.answers_delivered, agg.events_processed, agg.rounds, agg.fairness_spread,
        );
    }
    out.push_str("  ],\n");

    // The decide microbench: one `agent.select` over DECIDE_OBJECTS
    // candidates, pruned vs exhaustive, at growing pool sizes. Both
    // modes pick bit-identical panels (pinned by tests/decide_equiv.rs);
    // the series reports how much of the annotator dimension the pruned
    // path avoided scoring and how often the activation cache hit.
    let _ = writeln!(
        out,
        "  \"decide\": {{\n    \"candidates\": {DECIDE_OBJECTS}, \"slots\": 3, \"batch\": 8,\n    \
         \"pools\": [",
    );
    for (i, &pool) in DECIDE_POOLS.iter().enumerate() {
        let ms_of = |label: &str| {
            found
                .iter()
                .find(|m| m.id == format!("service/{label}/{pool}"))
                .expect("decide measurement")
                .median_ns
                * 1e-6
        };
        let exhaustive_ms = ms_of("decide_exhaustive");
        let pruned_ms = ms_of("decide_pruned");
        let (_, d) = decide
            .iter()
            .find(|(p, _)| *p == pool)
            .expect("decide stats");
        let comma = if i + 1 < DECIDE_POOLS.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{ \"pool\": {pool}, \"exhaustive_ms\": {exhaustive_ms:.3}, \
             \"pruned_ms\": {pruned_ms:.3}, \"speedup\": {:.2}, \
             \"scored_fraction\": {:.4}, \"cache_hit_rate\": {:.4}, \
             \"full_row_fallbacks\": {} }}{comma}",
            exhaustive_ms / pruned_ms,
            d.scored_pairs as f64 / d.total_pairs as f64,
            d.cache_hits as f64 / (d.cache_hits + d.cache_misses).max(1) as f64,
            d.full_row_fallbacks,
        );
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

fn main() {
    let mut criterion = Criterion::default().sample_size(10);
    bench_service(&mut criterion);
    let decide_stats = bench_decide(&mut criterion);
    criterion.final_summary();

    // Both execution modes produce the identical merged trace (a tested
    // invariant), so one reference run per project count supplies the
    // answer/event counts and the fairness spread for both mode rows.
    let references: Vec<(usize, ServiceOutcome)> = PROJECT_COUNTS
        .iter()
        .map(|&projects| {
            let (specs, pool) = fixture(projects);
            (projects, run_service(&specs, &pool, ExecMode::SingleThread))
        })
        .collect();

    let json = render_json(&measurements(&criterion), &references, &decide_stats);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(err) => eprintln!("\ncould not write {}: {err}", path.display()),
    }
}
