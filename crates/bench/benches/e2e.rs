//! End-to-end workflow benchmark: the full CrowdRL labelling loop at the
//! paper's text-dataset scale (n = 2344), cold inference (a fresh EM run
//! from majority vote every iteration, the growth seed's behaviour) vs the
//! incremental engine (persistent posteriors/confusions, dirty-set
//! E-steps, warm-started classifier — DESIGN.md §11).
//!
//! Hand-written `main` with direct wall-clock timing — the unit of work is
//! a whole `CrowdRl::run`, so Criterion's sampling machinery adds nothing.
//! Results (median of `E2E_SAMPLES` runs per mode, plus final-label
//! accuracy for both so the speedup is shown not to cost quality) land in
//! `BENCH_e2e.json` at the repository root.
//!
//! Knobs (environment): `E2E_OBJECTS` (default 2344), `E2E_BUDGET`
//! (default 3000), `E2E_SAMPLES` (default 3), `E2E_OUT` (default
//! `<repo>/BENCH_e2e.json`).

use crowdrl_core::{CrowdRl, CrowdRlConfig, EngineConfig, LabellingOutcome};
use crowdrl_linalg::pool;
use crowdrl_sim::{AnnotatorPool, DatasetSpec, PoolSpec};
use crowdrl_types::rng::seeded;
use crowdrl_types::Dataset;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scenario(n: usize) -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(0x2344);
    let dataset = DatasetSpec::gaussian("e2e-bench", n, 6, 2)
        .with_separation(2.0)
        .with_label_noise(0.03)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
    (dataset, pool)
}

fn accuracy(dataset: &Dataset, outcome: &LabellingOutcome) -> f64 {
    outcome
        .labels
        .iter()
        .enumerate()
        .filter(|(i, l)| **l == Some(dataset.truth(*i)))
        .count() as f64
        / dataset.len() as f64
}

struct ModeResult {
    median_s: f64,
    accuracy: f64,
    iterations: usize,
}

/// Run the workflow `samples` times in one mode; report the median wall
/// time, plus accuracy/iteration count (identical across samples — the
/// run is deterministic, only the clock varies).
fn run_mode(
    dataset: &Dataset,
    pool: &AnnotatorPool,
    budget: f64,
    warm_start: bool,
    samples: usize,
) -> ModeResult {
    let mut times = Vec::with_capacity(samples);
    let mut outcome = None;
    for _ in 0..samples {
        let config = CrowdRlConfig::builder()
            .budget(budget)
            .engine(EngineConfig {
                warm_start,
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        let mut rng = seeded(7);
        let start = Instant::now();
        let out = CrowdRl::new(config).run(dataset, pool, &mut rng).unwrap();
        times.push(start.elapsed().as_secs_f64());
        outcome = Some(out);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let outcome = outcome.unwrap();
    ModeResult {
        median_s: times[times.len() / 2],
        accuracy: accuracy(dataset, &outcome),
        iterations: outcome.iterations,
    }
}

fn main() {
    pool::set_threads(0);
    let n = env_usize("E2E_OBJECTS", 2344);
    let budget = env_f64("E2E_BUDGET", 3000.0);
    let samples = env_usize("E2E_SAMPLES", 3).max(1);

    let (dataset, pool_) = scenario(n);
    eprintln!("e2e bench: n={n} budget={budget} samples={samples}");

    let cold = run_mode(&dataset, &pool_, budget, false, samples);
    eprintln!(
        "  cold:        {:.2}s  acc {:.4}  ({} iterations)",
        cold.median_s, cold.accuracy, cold.iterations
    );
    let warm = run_mode(&dataset, &pool_, budget, true, samples);
    eprintln!(
        "  incremental: {:.2}s  acc {:.4}  ({} iterations)",
        warm.median_s, warm.accuracy, warm.iterations
    );
    let speedup = cold.median_s / warm.median_s;
    let delta = warm.accuracy - cold.accuracy;
    eprintln!("  speedup {speedup:.2}x, accuracy delta {delta:+.4}");

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"e2e\",\n");
    out.push_str("  \"command\": \"cargo bench -p crowdrl-bench --bench e2e\",\n");
    out.push_str(
        "  \"harness\": \"wall clock around CrowdRl::run, median of E2E_SAMPLES runs\",\n",
    );
    let _ = writeln!(
        out,
        "  \"scenario\": {{ \"objects\": {n}, \"dim\": 6, \"classes\": 2, \
         \"budget\": {budget}, \"samples\": {samples}, \"pool_threads\": {} }},",
        pool::max_threads()
    );
    let _ = writeln!(
        out,
        "  \"cold\": {{ \"wall_s\": {:.3}, \"accuracy\": {:.4}, \"iterations\": {} }},",
        cold.median_s, cold.accuracy, cold.iterations
    );
    let _ = writeln!(
        out,
        "  \"incremental\": {{ \"wall_s\": {:.3}, \"accuracy\": {:.4}, \"iterations\": {} }},",
        warm.median_s, warm.accuracy, warm.iterations
    );
    let _ = writeln!(out, "  \"speedup\": {speedup:.2},");
    let _ = writeln!(out, "  \"accuracy_delta\": {delta:.4}");
    out.push_str("}\n");

    let default_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e2e.json");
    let path = std::env::var("E2E_OUT").map_or(default_path, std::path::PathBuf::from);
    match std::fs::write(&path, &out) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
