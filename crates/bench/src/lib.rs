//! # crowdrl-bench
//!
//! Reproduction harnesses for every figure in the CrowdRL evaluation
//! (§VI-B), plus Criterion microbenchmarks for the hot components.
//!
//! One binary per paper figure prints the same series the paper plots and
//! writes a CSV next to it (under `results/`):
//!
//! | binary | paper artifact | sweep |
//! |---|---|---|
//! | `fig4` | Fig. 4 — quality with the same budget | 7 dataset cases × 6 methods, Prec/Rec/F1 |
//! | `fig5` | Fig. 5 — scalability | sampling ratio ∈ {0.1..0.5} |
//! | `fig6` | Fig. 6 — varying \|W\| | \|W\| ∈ {3,5,7} |
//! | `fig7` | Fig. 7 — varying α | α ∈ {0.01,0.05,0.1} |
//! | `fig8` | Fig. 8 — ablation | M1 / M2 / M3 vs full CrowdRL |
//! | `ablation_explore` | design-choice ablation (DESIGN.md §5) | UCB1 vs ε-greedy |
//! | `all_figures` | everything above in sequence | |
//!
//! Dataset sizes and budgets follow the paper's *ratios* at three scales
//! (`CROWDRL_SCALE=quick|small|paper`, default `quick`); see EXPERIMENTS.md
//! for the mapping and the expected result shapes.

pub mod figures;
pub mod scale;

pub use figures::{ablation_explore, fig4, fig5, fig6, fig7, fig8, FigureReport};
pub use scale::Scale;
