//! Experiment scale presets.
//!
//! The paper's budgets are tied to its dataset sizes (10 000 units for
//! ~2 000 speech clips, 160 000 for ~32 000 fashion images). Running six
//! frameworks × seven datasets × repetitions at full size takes hours on a
//! laptop, so the harness keeps the paper's *per-object budget ratio*
//! constant while scaling object counts:
//!
//! | scale | speech objects | fashion objects | repetitions |
//! |---|---|---|---|
//! | `quick` | 200 | 400 | 3 |
//! | `small` | 600 | 1 200 | 3 |
//! | `paper` | 2 344 / 1 898 | 32 398 | 3 |
//!
//! Budgets: speech = (10 000 / 2 344) ≈ 4.27 units/object; fashion =
//! (160 000 / 32 398) ≈ 4.94 units/object — so "the same budget" means the
//! same thing at every scale.

use std::str::FromStr;

/// Paper budget per speech object (10 000 / 2 344).
pub const SPEECH_BUDGET_PER_OBJECT: f64 = 10_000.0 / 2_344.0;
/// Paper budget per fashion object (160 000 / 32 398).
pub const FASHION_BUDGET_PER_OBJECT: f64 = 160_000.0 / 32_398.0;

/// How large to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale smoke reproduction (default).
    Quick,
    /// Tens-of-minutes, tighter confidence intervals.
    Small,
    /// The paper's full dataset sizes.
    Paper,
}

impl FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Ok(Scale::Quick),
            "small" => Ok(Scale::Small),
            "paper" | "full" => Ok(Scale::Paper),
            other => Err(format!("unknown scale '{other}' (quick|small|paper)")),
        }
    }
}

impl Scale {
    /// Resolve from argv (`--scale X` / `X`) or `CROWDRL_SCALE`, defaulting
    /// to [`Scale::Quick`].
    pub fn from_env_or_args() -> Scale {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--scale" {
                if let Some(v) = args.next() {
                    if let Ok(s) = v.parse() {
                        return s;
                    }
                }
            } else if let Ok(s) = a.parse() {
                return s;
            }
        }
        std::env::var("CROWDRL_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(Scale::Quick)
    }

    /// Object count for Speech12 at this scale.
    pub fn speech12_objects(self) -> usize {
        match self {
            Scale::Quick => 200,
            Scale::Small => 600,
            Scale::Paper => 2_344,
        }
    }

    /// Object count for Speech3 at this scale.
    pub fn speech3_objects(self) -> usize {
        match self {
            Scale::Quick => 180,
            Scale::Small => 500,
            Scale::Paper => 1_898,
        }
    }

    /// Object count for Fashion at this scale.
    pub fn fashion_objects(self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Small => 1_200,
            Scale::Paper => 32_398,
        }
    }

    /// Repetitions per experiment cell.
    pub fn repetitions(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Small | Scale::Paper => 3,
        }
    }

    /// Budget for a speech dataset of `n` objects.
    pub fn speech_budget(self, n: usize) -> f64 {
        (SPEECH_BUDGET_PER_OBJECT * n as f64).round()
    }

    /// Budget for a fashion dataset of `n` objects.
    pub fn fashion_budget(self, n: usize) -> f64 {
        (FASHION_BUDGET_PER_OBJECT * n as f64).round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scale_strings() {
        assert_eq!("quick".parse::<Scale>().unwrap(), Scale::Quick);
        assert_eq!("SMALL".parse::<Scale>().unwrap(), Scale::Small);
        assert_eq!("paper".parse::<Scale>().unwrap(), Scale::Paper);
        assert_eq!("full".parse::<Scale>().unwrap(), Scale::Paper);
        assert!("x".parse::<Scale>().is_err());
    }

    #[test]
    fn paper_scale_matches_paper_cardinalities() {
        assert_eq!(Scale::Paper.speech12_objects(), 2_344);
        assert_eq!(Scale::Paper.speech3_objects(), 1_898);
        assert_eq!(Scale::Paper.fashion_objects(), 32_398);
        assert_eq!(Scale::Paper.speech_budget(2_344), 10_000.0);
        assert_eq!(Scale::Paper.fashion_budget(32_398), 160_000.0);
    }

    #[test]
    fn budget_ratio_is_scale_invariant() {
        let quick = Scale::Quick.speech_budget(200) / 200.0;
        let paper = Scale::Paper.speech_budget(2_344) / 2_344.0;
        assert!((quick - paper).abs() < 0.01);
    }
}
