//! Diagnostic: behavior profile of one CrowdRL run on a Speech12-scale
//! problem. Usage: `diag_run [full|pre|ds|pm|m1|m2]` — variant selects the
//! inference model / ablation / pretraining.

fn main() {
    use crowdrl_baselines::{BaselineParams, CrowdRlStrategy, LabellingStrategy};
    use crowdrl_core::config::{CrowdRlConfig, InferenceModel};
    use crowdrl_sim::{PoolSpec, SpeechSpec};
    let mut rng = crowdrl_types::rng::seeded(1);
    let views = SpeechSpec::speech12()
        .with_num_objects(200)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 2).generate(2, &mut rng).unwrap();
    let params = BaselineParams::with_budget(853.0);
    // variant selector from argv
    let variant = std::env::args().nth(1).unwrap_or_default();
    let strategy = match variant.as_str() {
        "ds" => CrowdRlStrategy::variant(
            "ds",
            CrowdRlConfig::builder()
                .budget(1.0)
                .inference(InferenceModel::DawidSkene)
                .build()
                .unwrap(),
        ),
        "pm" => CrowdRlStrategy::variant(
            "pm",
            CrowdRlConfig::builder()
                .budget(1.0)
                .inference(InferenceModel::Pm)
                .build()
                .unwrap(),
        ),
        "pre" => crowdrl_bench::figures::crowdrl_pretrained(),
        "m2" => {
            let mut cfg = CrowdRlConfig::builder()
                .budget(1.0)
                .pretrained_dqn(crowdrl_bench::figures::pretrained_dqn_params())
                .build()
                .unwrap();
            cfg.ablation.random_task_assignment = true;
            CrowdRlStrategy::variant("m2", cfg)
        }
        "m1" => {
            let mut cfg = CrowdRlConfig::builder()
                .budget(1.0)
                .pretrained_dqn(crowdrl_bench::figures::pretrained_dqn_params())
                .build()
                .unwrap();
            cfg.ablation.random_task_selection = true;
            CrowdRlStrategy::variant("m1", cfg)
        }
        _ => CrowdRlStrategy::full(),
    };
    let start = std::time::Instant::now();
    let outcome = strategy.run(&views.cp, &pool, &params, &mut rng).unwrap();
    println!(
        "CrowdRL s12cp n=200: {:?}, iters={}, answers={}, spent={}",
        start.elapsed(),
        outcome.iterations,
        outcome.total_answers,
        outcome.budget_spent
    );
    let m = crowdrl_eval::evaluate_labels(&views.cp, &outcome.labels).unwrap();
    println!("accuracy {:.3} precision {:.3}", m.accuracy, m.precision);
    println!(
        "enriched {} human {} answers {}",
        outcome.enriched_count,
        outcome.labels.len() - outcome.enriched_count,
        outcome.total_answers
    );
    // how many expert answers? price distribution
    let avg_price = outcome.budget_spent / outcome.total_answers.max(1) as f64;
    println!("avg answer price {avg_price:.2}");
    // accuracy split: enriched vs inferred
    let mut einf = (0, 0);
    let mut ienf = (0, 0);
    for (i, st) in outcome.label_states.iter().enumerate() {
        match st {
            crowdrl_types::LabelState::Enriched(c) => {
                einf.1 += 1;
                if *c == views.cp.truth(i) {
                    einf.0 += 1;
                }
            }
            crowdrl_types::LabelState::Inferred(c) => {
                ienf.1 += 1;
                if *c == views.cp.truth(i) {
                    ienf.0 += 1;
                }
            }
            _ => {}
        }
    }
    println!(
        "enriched acc {}/{}  inferred acc {}/{}",
        einf.0, einf.1, ienf.0, ienf.1
    );
}
