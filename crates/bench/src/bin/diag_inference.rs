//! Diagnostic: inference quality on a CrowdRL-scale answer set.
use crowdrl_inference::*;
use crowdrl_nn::{ClassifierConfig, SoftmaxClassifier};
use crowdrl_sim::{PoolSpec, SpeechSpec};
use crowdrl_types::rng::{sample_indices, seeded};
use crowdrl_types::{AnnotatorId, Answer, AnswerSet, ObjectId};

fn main() {
    let mut rng = seeded(1);
    let views = SpeechSpec::speech12()
        .with_num_objects(200)
        .generate(&mut rng)
        .unwrap();
    let d = &views.cp;
    let pool = PoolSpec::new(3, 2).generate(2, &mut rng).unwrap();
    for p in pool.profiles() {
        eprintln!(
            "{:?} latent quality {:.3}",
            p.kind,
            pool.latent_confusion(p.id).quality()
        );
    }
    // Scenario A: 3 random workers per object.
    // Scenario B: 2 workers + 1 expert per object (budget-rich).
    for (name, annotators) in [("3 random workers", 0), ("2w+1e", 1)] {
        let mut answers = AnswerSet::new(d.len());
        let mut rng2 = seeded(2);
        for i in 0..d.len() {
            let ids: Vec<AnnotatorId> = if annotators == 0 {
                sample_indices(&mut rng2, 3, 3)
                    .into_iter()
                    .map(AnnotatorId)
                    .collect()
            } else {
                let mut v: Vec<AnnotatorId> = sample_indices(&mut rng2, 3, 2)
                    .into_iter()
                    .map(AnnotatorId)
                    .collect();
                v.push(AnnotatorId(3 + (i % 2)));
                v
            };
            for a in ids {
                let label = pool.sample_answer(a, d.truth(i), &mut rng2);
                answers
                    .record(Answer {
                        object: ObjectId(i),
                        annotator: a,
                        label,
                    })
                    .unwrap();
            }
        }
        let acc = |r: &InferenceResult| {
            (0..d.len())
                .filter(|&i| r.label(ObjectId(i)) == Some(d.truth(i)))
                .count() as f64
                / d.len() as f64
        };
        let mv = MajorityVote.infer(&answers, 2, 5).unwrap();
        let ds = DawidSkene::default().infer(&answers, 2, 5).unwrap();
        let pm = Pm::default().infer(&answers, 2, 5).unwrap();
        let mut rng3 = seeded(3);
        let mut clf = SoftmaxClassifier::new(
            ClassifierConfig {
                epochs: 10,
                weight_decay: 1e-3,
                ..Default::default()
            },
            d.dim(),
            2,
            &mut rng3,
        )
        .unwrap();
        let joint = JointInference::default()
            .infer(d, &answers, pool.profiles(), &mut clf, &mut rng3)
            .unwrap();
        // Classifier standalone accuracy after the joint training:
        let clf_acc = (0..d.len())
            .filter(|&i| clf.predict_one(d.features(i)) == d.truth(i))
            .count() as f64
            / d.len() as f64;
        println!(
            "{name}: MV {:.3} DS {:.3} PM {:.3} Joint {:.3} (phi alone {:.3})",
            acc(&mv),
            acc(&ds),
            acc(&pm),
            acc(&joint),
            clf_acc
        );
    }
}
