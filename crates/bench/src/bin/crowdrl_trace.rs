//! `crowdrl-trace` — offline analyzer for `crowdrl-obs` JSONL traces.
//!
//! ```text
//! crowdrl-trace <trace.jsonl>                       profile one run
//! crowdrl-trace --diff <a.jsonl> <b.jsonl>          compare two runs
//!              [--threshold <frac>]                 regression ratio (default 0.20)
//! ```
//!
//! The single-trace report shows the per-phase wall-time profile
//! (self/total and call counts), the accuracy-vs-budget curve, the
//! EM-convergence summary, and whatever gauges/counters/annotations the
//! run emitted. The diff mode compares the phase profiles of two traces
//! and exits non-zero when any phase's total time grew by more than the
//! threshold fraction *and* more than a millisecond — so a CI job can
//! gate on it without tripping over sub-millisecond noise.

use crowdrl_obs::analyze::{diff_report, read_trace, report, Trace};
use std::process::ExitCode;

const USAGE: &str = "usage: crowdrl-trace <trace.jsonl>\n       \
    crowdrl-trace --diff <a.jsonl> <b.jsonl> [--threshold <frac>]";

fn load(path: &str) -> Result<Trace, String> {
    read_trace(path).map_err(|e| format!("crowdrl-trace: cannot read {path}: {e}"))
}

fn run(args: &[String]) -> Result<bool, String> {
    match args {
        [path] if path != "--diff" => {
            print!("{}", report(&load(path)?));
            Ok(false)
        }
        [flag, rest @ ..] if flag == "--diff" => {
            let mut threshold = 0.20;
            let mut paths = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                if arg == "--threshold" {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("--threshold needs a value\n{USAGE}"))?;
                    threshold = v
                        .parse::<f64>()
                        .map_err(|_| format!("bad threshold {v:?}\n{USAGE}"))?;
                } else {
                    paths.push(arg.clone());
                }
            }
            let [a, b] = paths.as_slice() else {
                return Err(format!("--diff takes exactly two traces\n{USAGE}"));
            };
            let (text, regressed) = diff_report(&load(a)?, &load(b)?, threshold);
            print!("{text}");
            Ok(regressed)
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
