//! Reproduce the paper's `ablation_explore` experiment. Usage:
//! `cargo run -p crowdrl-bench --release --bin ablation_explore [--scale quick|small|paper]`

fn main() {
    let scale = crowdrl_bench::Scale::from_env_or_args();
    eprintln!("running ablation_explore at {scale:?} scale...");
    let report = crowdrl_bench::ablation_explore(scale).expect("ablation_explore harness failed");
    report.print();
    match report.save_csv() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
