//! Diagnostic: classifier OOS accuracy vs weight decay and epochs.
use crowdrl_linalg::Matrix;
use crowdrl_nn::{ClassifierConfig, SoftmaxClassifier};
use crowdrl_sim::SpeechSpec;
use crowdrl_types::rng::seeded;

fn main() {
    let mut rng = seeded(1);
    let views = SpeechSpec::speech12()
        .with_num_objects(400)
        .generate(&mut rng)
        .unwrap();
    let d = &views.cp;
    let n_train = 110;
    let mut x = Matrix::zeros(n_train, d.dim());
    for i in 0..n_train {
        x.row_mut(i).copy_from_slice(d.features(i));
    }
    let y: Vec<_> = d.truth_slice()[..n_train].to_vec();
    for wd in [1e-4f32, 1e-3, 5e-3, 2e-2, 5e-2] {
        for epochs in [10usize, 40] {
            let mut rng2 = seeded(2);
            let cfg = ClassifierConfig {
                hidden: vec![],
                weight_decay: wd,
                epochs,
                ..Default::default()
            };
            let mut clf = SoftmaxClassifier::new(cfg, d.dim(), 2, &mut rng2).unwrap();
            clf.fit_hard(&x, &y, &mut rng2).unwrap();
            let acc = (n_train..d.len())
                .filter(|&i| clf.predict_one(d.features(i)) == d.truth(i))
                .count() as f64
                / (d.len() - n_train) as f64;
            println!("wd {wd:.0e} epochs {epochs:2}: OOS {acc:.3}");
        }
    }
}
