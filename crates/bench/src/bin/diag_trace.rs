//! Diagnostic: per-iteration trace of a CrowdRL run.
use crowdrl_baselines::{BaselineParams, LabellingStrategy};
use crowdrl_sim::{PoolSpec, SpeechSpec};

fn main() {
    let mut rng = crowdrl_types::rng::seeded(1);
    let views = SpeechSpec::speech12()
        .with_num_objects(200)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 2).generate(2, &mut rng).unwrap();
    let params = BaselineParams::with_budget(853.0);
    let strategy = crowdrl_bench::figures::crowdrl_pretrained();
    let outcome = strategy.run(&views.cp, &pool, &params, &mut rng).unwrap();
    println!("it | enr sel ans spend reward labelled td");
    for s in &outcome.trace {
        println!(
            "{:3} | {:3} {:3} {:3} {:6.1} {:6.3} {:4} {:?}",
            s.iteration,
            s.enriched,
            s.selected,
            s.answers,
            s.spend,
            s.reward,
            s.labelled_total,
            s.td_loss.map(|x| (x * 1000.0).round() / 1000.0)
        );
    }
    let m = crowdrl_eval::evaluate_labels(&views.cp, &outcome.labels).unwrap();
    println!("accuracy {:.3}", m.accuracy);
}
