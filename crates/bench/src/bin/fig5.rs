//! Reproduce the paper's `fig5` experiment. Usage:
//! `cargo run -p crowdrl-bench --release --bin fig5 [--scale quick|small|paper]`

fn main() {
    let scale = crowdrl_bench::Scale::from_env_or_args();
    eprintln!("running fig5 at {scale:?} scale...");
    let report = crowdrl_bench::fig5(scale).expect("fig5 harness failed");
    report.print();
    match report.save_csv() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
