//! Diagnostic: split the DQN backward-pass cost into raw kernel time vs
//! layer/orchestration overhead, at the exact serve-path shapes
//! (batch 32, network 21 -> 64 -> 32 -> 1).

use crowdrl_linalg::{simd, Matrix, NumericMode};
use crowdrl_nn::{Activation, Network};
use crowdrl_types::rng::seeded;
use std::hint::black_box;
use std::time::Instant;

fn fill(m: &mut Matrix, seed: f32) {
    for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
        *v = ((i as f32 * 0.37 + seed).sin()) * 0.5;
    }
}

fn time<F: FnMut()>(label: &str, iters: usize, mut f: F) {
    // Warmup.
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let mut best = f64::MAX;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    println!("{label}: {:.2} us/iter", best * 1e6 / iters as f64);
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let mode = if fast {
        NumericMode::Fast
    } else {
        NumericMode::Reference
    };
    println!("mode: {mode:?}, simd: {}", simd::simd_available());
    let iters = 20_000;

    // Raw kernels at backward shapes.
    let mut x = Matrix::zeros(32, 21); // input batch
    let mut d1 = Matrix::zeros(32, 64); // layer-1 d_pre
    let mut h1 = Matrix::zeros(32, 64);
    let mut d2 = Matrix::zeros(32, 32);
    let mut h2 = Matrix::zeros(32, 32);
    let mut d3 = Matrix::zeros(32, 1);
    let mut w2 = Matrix::zeros(64, 32);
    let mut w3 = Matrix::zeros(32, 1);
    for (i, m) in [
        &mut x, &mut d1, &mut h1, &mut d2, &mut h2, &mut d3, &mut w2, &mut w3,
    ]
    .into_iter()
    .enumerate()
    {
        fill(m, i as f32);
    }

    time("tn 21x64 (x^T d1)", iters, || {
        black_box(x.matmul_tn_mode(&d1, mode));
    });
    time("tn 64x32 (h1^T d2)", iters, || {
        black_box(h1.matmul_tn_mode(&d2, mode));
    });
    time("tn 32x1  (h2^T d3)", iters, || {
        black_box(h2.matmul_tn_mode(&d3, mode));
    });
    time("nt 32x64 (d2 w2^T)", iters, || {
        black_box(d2.matmul_nt_mode(&w2, mode));
    });
    time("nt 32x32 (d3 w3^T)", iters, || {
        black_box(d3.matmul_nt_mode(&w3, mode));
    });

    // Full layer-stack forward + backward at serve shapes.
    let mut rng = seeded(3);
    let mut net = Network::mlp(&[21, 64, 32, 1], Activation::Relu, &mut rng);
    net.set_numeric_mode(mode);
    let d_out = Matrix::zeros(32, 1);
    let mut d_out = d_out;
    fill(&mut d_out, 9.0);
    time("net fwd (train)", iters / 2, || {
        black_box(net.forward(&x));
    });
    time("net fwd+bwd", iters / 2, || {
        black_box(net.forward(&x));
        net.backward(&d_out);
    });
    time("net fwd_inference", iters / 2, || {
        black_box(net.forward_inference(&x));
    });
}
