//! Diagnostic: trace one bench-shaped `AsyncRuntime` run and print the
//! per-phase profile, to localize where end-to-end serve time goes.

use crowdrl_core::CrowdRlConfig;
use crowdrl_serve::{AsyncRuntime, ExecMode, ServeConfig};
use crowdrl_sim::{DatasetSpec, PoolSpec};
use crowdrl_types::rng::seeded;
use std::time::Instant;

fn main() {
    let mut rng = seeded(11);
    let objects: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let fast = std::env::args().any(|a| a == "--fast");
    let budget = objects as f64 * 2.5;
    let dataset = DatasetSpec::gaussian("serve-bench", objects, 4, 2)
        .with_separation(3.5)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(4, 1).generate(2, &mut rng).unwrap();
    let mut builder = CrowdRlConfig::builder()
        .budget(budget)
        .initial_ratio(0.1)
        .batch_per_iter(4)
        .candidate_cap(32);
    if fast {
        builder = builder.numeric(crowdrl_linalg::NumericMode::Fast);
    }
    let config = builder.build().unwrap();
    let serve = ServeConfig::default().with_mode(ExecMode::SingleThread);
    let mut rng = seeded(12);
    let start = Instant::now();
    let out = AsyncRuntime::new(config, serve)
        .run(&dataset, &pool, &mut rng)
        .unwrap();
    let elapsed = start.elapsed();
    println!(
        "objects {objects} took {:.1} ms, events {}, answers {}, refreshes {}, events/s {:.0}",
        elapsed.as_secs_f64() * 1e3,
        out.metrics.events_processed,
        out.metrics.answers_delivered,
        out.metrics.refreshes,
        out.metrics.events_processed as f64 / elapsed.as_secs_f64()
    );
}
