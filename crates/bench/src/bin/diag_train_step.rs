//! Diagnostic: isolate the DQN `train_step` cost with serve-shaped
//! dimensions, in either numeric mode (`--fast`), to localize the train
//! half of the event-loop hot path without event-queue noise.

use crowdrl_linalg::NumericMode;
use crowdrl_rl::{DqnAgent, DqnConfig, Transition};
use crowdrl_types::rng::seeded;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let fast = std::env::args().any(|a| a == "--fast");
    let dim = 21; // serve-path embedding width
    let config = DqnConfig {
        input_dim: dim,
        min_replay: 64,
        numeric: if fast {
            NumericMode::Fast
        } else {
            NumericMode::Reference
        },
        ..Default::default()
    };
    let mut rng = seeded(1);
    let mut agent = DqnAgent::new(config, &mut rng).unwrap();
    for i in 0..256 {
        let v = (i % 17) as f32 / 17.0;
        agent.remember(Transition {
            state_action: vec![v; dim],
            reward: v,
            next_candidates: vec![vec![1.0 - v; dim]; 32].into(),
            terminal: i % 5 == 0,
        });
    }
    // Warmup.
    for _ in 0..200 {
        black_box(agent.train_step(&mut rng));
    }
    let start = Instant::now();
    for _ in 0..steps {
        black_box(agent.train_step(&mut rng));
    }
    let elapsed = start.elapsed();
    println!(
        "{} steps ({}) in {:.1} ms — {:.2} us/step",
        steps,
        if fast { "fast" } else { "reference" },
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / steps as f64
    );
}
