//! Reproduce the paper's `fig6` experiment. Usage:
//! `cargo run -p crowdrl-bench --release --bin fig6 [--scale quick|small|paper]`

fn main() {
    let scale = crowdrl_bench::Scale::from_env_or_args();
    eprintln!("running fig6 at {scale:?} scale...");
    let report = crowdrl_bench::fig6(scale).expect("fig6 harness failed");
    report.print();
    match report.save_csv() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
