//! Reproduce every figure in sequence. Usage:
//! `cargo run -p crowdrl-bench --release --bin all_figures [--scale quick|small|paper]`

use crowdrl_bench::{FigureReport, Scale};

type Harness = fn(Scale) -> crowdrl_types::Result<FigureReport>;

fn main() {
    let scale = Scale::from_env_or_args();
    let harnesses: Vec<(&str, Harness)> = vec![
        ("fig4", crowdrl_bench::fig4),
        ("fig5", crowdrl_bench::fig5),
        ("fig6", crowdrl_bench::fig6),
        ("fig7", crowdrl_bench::fig7),
        ("fig8", crowdrl_bench::fig8),
        ("ablation_explore", crowdrl_bench::ablation_explore),
    ];
    for (name, run) in harnesses {
        eprintln!("running {name} at {scale:?} scale...");
        match run(scale) {
            Ok(report) => {
                report.print();
                if let Ok(path) = report.save_csv() {
                    eprintln!("wrote {}", path.display());
                }
            }
            Err(e) => eprintln!("{name} failed: {e}"),
        }
    }
}
