//! One harness per figure in the paper's evaluation.
//!
//! Each `figN` function generates the datasets and annotator pools for the
//! figure's conditions, runs every method over several seeds through
//! [`ExperimentGrid`], and returns a [`FigureReport`] that prints the same
//! series the paper plots and writes CSVs under `results/`.

use crate::scale::Scale;
use crowdrl_baselines::{paper_baselines, BaselineParams, CrowdRlStrategy, LabellingStrategy};
use crowdrl_core::config::{Ablation, CrowdRlConfig, InferenceModel};
use crowdrl_eval::runner::{cross_train, CellResult, Condition, ExperimentGrid};
use crowdrl_eval::table::{format_grid, write_csv};
use crowdrl_sim::{FashionSpec, PoolSpec, SpeechSpec};
use crowdrl_types::rng::{sample_indices, seeded};
use crowdrl_types::{Dataset, Result};
use std::path::PathBuf;

/// Master seed for all figure harnesses (change to resample everything).
const MASTER_SEED: u64 = 0xF1_2021;

/// A completed figure reproduction.
pub struct FigureReport {
    /// Figure id (`fig4` ...).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Raw cells.
    pub cells: Vec<CellResult>,
    /// Pre-rendered tables (one per metric panel the figure shows).
    pub tables: Vec<String>,
}

impl FigureReport {
    /// Print every table to stdout.
    pub fn print(&self) {
        println!("==== {} — {} ====", self.id, self.title);
        for t in &self.tables {
            println!("{t}");
        }
    }

    /// Write the raw cells as `results/<id>.csv`. Returns the path.
    pub fn save_csv(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        write_csv(&path, &self.cells)?;
        Ok(path)
    }
}

/// The paper's offline cross-training (§VI-A.4): before evaluating online,
/// the Q-network trains on donor datasets. We use two generic synthetic
/// donors (never any evaluation dataset), run once per process and cached.
pub fn pretrained_dqn_params() -> Vec<f32> {
    use std::sync::OnceLock;
    static PARAMS: OnceLock<Vec<f32>> = OnceLock::new();
    PARAMS
        .get_or_init(|| {
            let mut donors = Vec::new();
            // Two passes over three donors (one with near-useless
            // features, so the policy sees the low-trust regime) = six
            // offline episodes.
            for (i, sep) in [2.0, 1.4, 0.6, 2.0, 1.4, 0.6].into_iter().enumerate() {
                let mut rng = seeded(MASTER_SEED ^ 0xD0_u64 << i);
                let dataset = crowdrl_sim::DatasetSpec::gaussian(format!("donor{i}"), 150, 12, 2)
                    .with_separation(sep)
                    .with_label_noise(0.04)
                    .generate(&mut rng)
                    .expect("donor dataset");
                let pool = speech_pool().generate(2, &mut rng).expect("donor pool");
                donors.push(Condition {
                    dataset,
                    pool,
                    params: BaselineParams::with_budget(650.0),
                });
            }
            let base = CrowdRlConfig::builder()
                .budget(1.0)
                .build()
                .expect("config");
            cross_train(&base, &donors, MASTER_SEED ^ 0xCC).expect("cross-training")
        })
        .clone()
}

/// CrowdRL with the paper's cross-trained Q-network.
pub fn crowdrl_pretrained() -> CrowdRlStrategy {
    let params = pretrained_dqn_params();
    let config = CrowdRlConfig::builder()
        .budget(1.0)
        .pretrained_dqn(params)
        .build()
        .expect("config");
    CrowdRlStrategy::variant("CrowdRL", config)
}

/// All six methods in the paper's figure order (five baselines + CrowdRL).
fn all_methods() -> Vec<Box<dyn LabellingStrategy>> {
    let mut methods = paper_baselines();
    methods.push(Box::new(crowdrl_pretrained()));
    methods
}

/// Pool spec for a speech dataset: |W| = 5 (3 workers + 2 experts).
fn speech_pool() -> PoolSpec {
    PoolSpec::new(3, 2)
}

/// Pool spec for the fashion dataset: |W| = 3 (2 workers + 1 expert).
fn fashion_pool() -> PoolSpec {
    PoolSpec::new(2, 1)
}

fn grid(scale: Scale) -> ExperimentGrid {
    ExperimentGrid {
        repetitions: scale.repetitions(),
        master_seed: MASTER_SEED,
        threads: 0,
    }
}

fn speech_condition(
    dataset: Dataset,
    budget: f64,
    pool_spec: &PoolSpec,
    seed: u64,
) -> Result<Condition> {
    let mut rng = seeded(seed);
    let pool = pool_spec.generate(dataset.num_classes(), &mut rng)?;
    Ok(Condition {
        dataset,
        pool,
        params: BaselineParams::with_budget(budget),
    })
}

/// The seven fig4 conditions: S12C/P/CP, S3C/P/CP, Fashion.
fn fig4_conditions(scale: Scale) -> Result<Vec<Condition>> {
    let mut rng = seeded(MASTER_SEED);
    let s12 = SpeechSpec::speech12()
        .with_num_objects(scale.speech12_objects())
        .generate(&mut rng)?;
    let s3 = SpeechSpec::speech3()
        .with_num_objects(scale.speech3_objects())
        .generate(&mut rng)?;
    let fashion = FashionSpec::fashion()
        .with_num_objects(scale.fashion_objects())
        .generate(&mut rng)?;
    let sb12 = scale.speech_budget(scale.speech12_objects());
    let sb3 = scale.speech_budget(scale.speech3_objects());
    let fb = scale.fashion_budget(scale.fashion_objects());
    Ok(vec![
        speech_condition(s12.c, sb12, &speech_pool(), 11)?,
        speech_condition(s12.p, sb12, &speech_pool(), 12)?,
        speech_condition(s12.cp, sb12, &speech_pool(), 13)?,
        speech_condition(s3.c, sb3, &speech_pool(), 14)?,
        speech_condition(s3.p, sb3, &speech_pool(), 15)?,
        speech_condition(s3.cp, sb3, &speech_pool(), 16)?,
        speech_condition(fashion, fb, &fashion_pool(), 17)?,
    ])
}

/// The three main-dataset conditions (CP views + fashion) used by
/// figs 5–8.
fn main_conditions(scale: Scale) -> Result<Vec<Condition>> {
    let all = fig4_conditions(scale)?;
    // Indices 2 (s12cp), 5 (s3cp), 6 (fashion).
    let mut out = Vec::new();
    for (i, c) in all.into_iter().enumerate() {
        if i == 2 || i == 5 || i == 6 {
            out.push(c);
        }
    }
    Ok(out)
}

/// Fig. 4 — labelling quality (Precision / Recall / F1) of every method on
/// every dataset case, with the same budget.
pub fn fig4(scale: Scale) -> Result<FigureReport> {
    let conditions = fig4_conditions(scale)?;
    let cells = grid(scale).run(&all_methods(), &conditions)?;
    let tables = vec![
        format_grid("Precision", &cells, |c| c.metrics.precision),
        format_grid("Recall", &cells, |c| c.metrics.recall),
        format_grid("F1", &cells, |c| c.metrics.f1),
    ];
    Ok(FigureReport {
        id: "fig4",
        title: "Labelling quality with the same budget".into(),
        cells,
        tables,
    })
}

/// Fig. 5 — scalability: precision as the dataset is sampled at ratios
/// {0.1, 0.2, 0.3, 0.4, 0.5} under a fixed budget.
pub fn fig5(scale: Scale) -> Result<FigureReport> {
    let base = main_conditions(scale)?;
    let mut conditions = Vec::new();
    for cond in &base {
        let n = cond.dataset.len();
        // The paper holds the budget fixed while the data grows; we fix it
        // at the 30%-size budget so the sweep brackets it.
        let fixed_budget = cond.params.budget * 0.3;
        for (ri, ratio) in [0.1, 0.2, 0.3, 0.4, 0.5].into_iter().enumerate() {
            let m = ((n as f64 * ratio) as usize).max(10);
            let mut rng = seeded(MASTER_SEED ^ (ri as u64 + 1));
            let idx = sample_indices(&mut rng, n, m);
            let dataset = cond
                .dataset
                .subset(&idx)?
                .renamed(format!("{}@{ratio:.1}", cond.dataset.name()));
            conditions.push(Condition {
                dataset,
                pool: cond.pool.clone(),
                params: BaselineParams::with_budget(fixed_budget),
            });
        }
    }
    let cells = grid(scale).run(&all_methods(), &conditions)?;
    let tables = vec![format_grid("Precision vs sampling ratio", &cells, |c| {
        c.metrics.precision
    })];
    Ok(FigureReport {
        id: "fig5",
        title: "Scalability (sampling ratio sweep)".into(),
        cells,
        tables,
    })
}

/// Fig. 6 — varying the number of annotators |W| ∈ {3, 5, 7}.
pub fn fig6(scale: Scale) -> Result<FigureReport> {
    let base = main_conditions(scale)?;
    let pools = [
        (3usize, PoolSpec::new(2, 1)),
        (5, PoolSpec::new(3, 2)),
        (7, PoolSpec::new(5, 2)),
    ];
    let mut conditions = Vec::new();
    for cond in &base {
        for (w, spec) in &pools {
            let mut rng = seeded(MASTER_SEED ^ (*w as u64) << 8);
            let pool = spec.generate(cond.dataset.num_classes(), &mut rng)?;
            conditions.push(Condition {
                dataset: cond
                    .dataset
                    .renamed(format!("{}|W={w}", cond.dataset.name())),
                pool,
                params: cond.params.clone(),
            });
        }
    }
    let cells = grid(scale).run(&all_methods(), &conditions)?;
    let tables = vec![format_grid("Precision vs |W|", &cells, |c| {
        c.metrics.precision
    })];
    Ok(FigureReport {
        id: "fig6",
        title: "Varying |W|".into(),
        cells,
        tables,
    })
}

/// Fig. 7 — varying the initial sampling rate α ∈ {0.01, 0.05, 0.1}.
pub fn fig7(scale: Scale) -> Result<FigureReport> {
    let base = main_conditions(scale)?;
    let mut conditions = Vec::new();
    for cond in &base {
        for alpha in [0.01, 0.05, 0.1] {
            let mut params = cond.params.clone();
            params.initial_ratio = alpha;
            conditions.push(Condition {
                dataset: cond
                    .dataset
                    .renamed(format!("{}|a={alpha}", cond.dataset.name())),
                pool: cond.pool.clone(),
                params,
            });
        }
    }
    let cells = grid(scale).run(&all_methods(), &conditions)?;
    let tables = vec![format_grid("Precision vs alpha", &cells, |c| {
        c.metrics.precision
    })];
    Ok(FigureReport {
        id: "fig7",
        title: "Varying alpha".into(),
        cells,
        tables,
    })
}

/// Fig. 8 — component ablation: M1 (random TS), M2 (random TA), M3 (PM
/// instead of joint inference) vs full CrowdRL, accuracy on the three
/// datasets.
pub fn fig8(scale: Scale) -> Result<FigureReport> {
    let conditions = main_conditions(scale)?;
    let base = || {
        CrowdRlConfig::builder()
            .budget(1.0)
            .pretrained_dqn(pretrained_dqn_params())
    };
    let strategies: Vec<Box<dyn LabellingStrategy>> = vec![
        Box::new(CrowdRlStrategy::variant(
            "M1",
            base()
                .ablation(Ablation {
                    random_task_selection: true,
                    ..Default::default()
                })
                .build()?,
        )),
        Box::new(CrowdRlStrategy::variant(
            "M2",
            base()
                .ablation(Ablation {
                    random_task_assignment: true,
                    ..Default::default()
                })
                .build()?,
        )),
        Box::new(CrowdRlStrategy::variant(
            "M3",
            base().inference(InferenceModel::Pm).build()?,
        )),
        Box::new(crowdrl_pretrained()),
    ];
    let cells = grid(scale).run(&strategies, &conditions)?;
    let tables = vec![format_grid("Accuracy", &cells, |c| c.metrics.accuracy)];
    Ok(FigureReport {
        id: "fig8",
        title: "Component ablation (M1/M2/M3 vs CrowdRL)".into(),
        cells,
        tables,
    })
}

/// Design-choice ablation from DESIGN.md §5: UCB1 (the paper's Eq. 6)
/// versus ε-greedy exploration.
pub fn ablation_explore(scale: Scale) -> Result<FigureReport> {
    use crowdrl_core::config::Exploration;
    let conditions = main_conditions(scale)?;
    let strategies: Vec<Box<dyn LabellingStrategy>> = vec![
        Box::new(CrowdRlStrategy::variant(
            "UCB1",
            CrowdRlConfig::builder()
                .budget(1.0)
                .exploration(Exploration::Ucb { scale: 1.0 })
                .build()?,
        )),
        Box::new(CrowdRlStrategy::variant(
            "eps-greedy",
            CrowdRlConfig::builder()
                .budget(1.0)
                .exploration(Exploration::EpsilonGreedy {
                    start: 0.5,
                    end: 0.05,
                    decay_steps: 100,
                })
                .build()?,
        )),
        Box::new(CrowdRlStrategy::variant(
            "greedy",
            CrowdRlConfig::builder()
                .budget(1.0)
                .exploration(Exploration::Ucb { scale: 0.0 })
                .build()?,
        )),
    ];
    let cells = grid(scale).run(&strategies, &conditions)?;
    let tables = vec![format_grid("Accuracy", &cells, |c| c.metrics.accuracy)];
    Ok(FigureReport {
        id: "ablation_explore",
        title: "Exploration-strategy ablation (UCB1 vs eps-greedy vs greedy)".into(),
        cells,
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_conditions_cover_paper_cases() {
        let conditions = fig4_conditions(Scale::Quick).unwrap();
        let names: Vec<&str> = conditions.iter().map(|c| c.dataset.name()).collect();
        assert_eq!(
            names,
            vec!["s12c", "s12p", "s12cp", "s3c", "s3p", "s3cp", "fashion"]
        );
        // Speech pools are |W|=5, fashion |W|=3.
        assert_eq!(conditions[0].pool.len(), 5);
        assert_eq!(conditions[6].pool.len(), 3);
        // Budget ratio ≈ 4.27 per speech object.
        let per_obj = conditions[2].params.budget / conditions[2].dataset.len() as f64;
        assert!(
            (per_obj - 10_000.0 / 2_344.0).abs() < 0.05,
            "per-object {per_obj}"
        );
    }

    #[test]
    fn main_conditions_are_the_three_headline_datasets() {
        let conditions = main_conditions(Scale::Quick).unwrap();
        let names: Vec<&str> = conditions.iter().map(|c| c.dataset.name()).collect();
        assert_eq!(names, vec!["s12cp", "s3cp", "fashion"]);
    }

    #[test]
    fn methods_are_in_figure_order() {
        let names: Vec<String> = all_methods().iter().map(|m| m.name().to_string()).collect();
        assert_eq!(
            names,
            vec!["DLTA", "OBA", "IDLE", "DALC", "Hybrid", "CrowdRL"]
        );
    }
}
