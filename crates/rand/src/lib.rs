//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a small, self-contained implementation of exactly
//! the `rand 0.9` API surface the CrowdRL crates use: [`Rng`], [`RngCore`],
//! [`SeedableRng`], and [`rngs::StdRng`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — not bit-compatible with the
//! upstream crate (which uses ChaCha12), but every workspace component only
//! relies on *self-consistent* determinism: the same seed must reproduce
//! the same run, which this guarantees.

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their "standard" domain:
/// the full integer range, `[0, 1)` for floats, fair coin for `bool`.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from `rng`. Panics on an empty range, matching the
    /// upstream crate.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by 128-bit widening multiply (unbiased
/// enough for simulation purposes; bounds here are far below 2^64).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_impls!(f64, f32);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A value sampled from `T`'s standard domain (see [`StandardSample`]).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring via
        /// [`StdRng::from_state`] resumes the exact output stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        /// An all-zero state (a xoshiro fixed point, never produced by a
        /// seeded generator) is nudged exactly as [`SeedableRng::from_seed`]
        /// does.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.random_range(0usize..=4);
            assert!(j <= 4);
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn uniform_usize_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero fixed point is nudged, matching from_seed.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
