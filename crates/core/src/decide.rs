//! Decide-path pruning: cached annotator activations and exact top-slot
//! shortlists for [`SelectionAgent::select`](crate::agent::SelectionAgent).
//!
//! `serve.decide` is the service hot path: every refresh scores each
//! candidate object against the whole annotator pool, so its cost is
//! O(objects × pool) Q-network forwards and dominates wall time at
//! thousands of annotators (DESIGN.md §13). Three mechanisms cut the
//! annotator dimension without changing a single selection:
//!
//! 1. **Activation cache** ([`AnnotatorCache`]): the annotator-specific
//!    block of the embedding suffix (quality/cost/kind/load — see
//!    [`ANNOTATOR_SPECIFIC_DIM`]) has its first-layer partial
//!    pre-activation computed once and reused across refreshes. Entries
//!    are keyed on the DQN's parameter generation plus the exact bit
//!    pattern of the feature block, so a gradient step, a parameter
//!    import/restore, or any profile/quality/load change forces a
//!    recompute — a stale partial can never be served. Each refresh
//!    resumes the cached partial with the run-level block and the bias,
//!    reproducing the full matmul row bit-for-bit
//!    (`Dense::accumulate_partial`).
//!
//! 2. **Column deduplication** ([`LazyPairScores`]): annotators enter the
//!    Q-network only through their first-layer suffix row, a function of
//!    the 4-float specific block. Annotators whose rows are bit-identical
//!    — in a large pool the overwhelming majority, since every annotator
//!    the inference engine has not yet profiled sits at the same prior
//!    quality, zero load, and one of a handful of cost tiers — provably
//!    produce bit-identical Q-values for every object. Each distinct
//!    column is forwarded once and shared; per-annotator identity
//!    (UCB bonus, answered-pair mask, index tie-break) is restored at
//!    expansion with the exact floating-point expression exhaustive
//!    scoring uses (`score_soft(q, a) == q + bonus_soft(a)`). This is
//!    what makes decide sublinear in the pool size in practice: tail
//!    cost scales with *distinct annotator states*, not pool size.
//!
//! 3. **Exact shortlist**: per-column upper bounds on the adjusted score
//!    — interval propagation of the candidate set's first-layer envelope
//!    through the network tail (`Network::tail_forward_interval`), plus
//!    the best member bonus, both sound in f32/f64 by monotonicity of
//!    correctly-rounded arithmetic — let each object score only a top-M
//!    prefix of columns ordered by bound. The prefix grows until every
//!    object's current k-th best *strictly* exceeds the best unscored
//!    bound (ties must extend: an unscored annotator with an equal score
//!    and a lower index could displace a pick under `topk`'s tie-break),
//!    and panel fill falls back to scoring an object's full row whenever
//!    it would have to dig below the barrier. Interval bounds through a
//!    deep tail are loose, so this engages mainly when bonus spread or a
//!    trained policy separates the pool — dedup is the workhorse, the
//!    barrier an extra exact cutoff. Pruning is therefore a pure
//!    optimization: selections, sums and traces are bit-identical to
//!    exhaustive scoring, which `tests/decide_equiv.rs` pins across pool
//!    sizes and thread widths.

use crate::features::{ANNOTATOR_SPECIFIC_DIM, OBJECT_PART_DIM};
use crowdrl_linalg::Matrix;
use crowdrl_nn::Network;
use crowdrl_rl::{topk, UcbExplorer};
use std::collections::HashMap;

/// How `select` scores the (object × annotator) candidate grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecideMode {
    /// Cached annotator activations, column deduplication, and exact
    /// bound-driven shortlists. Bit-identical selections to
    /// [`DecideMode::Exhaustive`], sublinear in the pool size in
    /// practice.
    Pruned,
    /// Score every pair with one factored batched forward (the reference
    /// path).
    Exhaustive,
}

/// Decide-path configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecideConfig {
    /// Scoring strategy.
    pub mode: DecideMode,
    /// Initial shortlist width M: how many top-bound score columns are
    /// scored up front before the bound test starts extending. Must be
    /// at least 1; pools no wider than M degrade gracefully to
    /// exhaustive scoring.
    pub shortlist: usize,
}

impl Default for DecideConfig {
    fn default() -> Self {
        Self {
            mode: DecideMode::Pruned,
            shortlist: 64,
        }
    }
}

/// Cumulative decide-path statistics (monotone counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecideStats {
    /// Pairs a naive exhaustive pass over the *unfiltered* pool would
    /// have scored (candidates × full pool), summed over calls.
    pub total_pairs: u64,
    /// Pairs actually forwarded through the Q-network.
    pub scored_pairs: u64,
    /// Annotator partials served from the activation cache.
    pub cache_hits: u64,
    /// Annotator partials recomputed (absent, stale generation, or
    /// changed features).
    pub cache_misses: u64,
    /// Panel fills that had to fall back to scoring an object's full row.
    pub full_row_fallbacks: u64,
    /// Annotators that reached embedding/scoring after the feasibility
    /// pre-filter.
    pub forwarded_annotators: u64,
    /// Annotators dropped by the pre-filter (over-allowance cost or no
    /// free concurrency slots) before any embedding was built.
    pub filtered_annotators: u64,
}

impl DecideStats {
    /// Counter-wise difference against an earlier snapshot.
    pub fn delta_since(&self, earlier: &DecideStats) -> DecideStats {
        DecideStats {
            total_pairs: self.total_pairs - earlier.total_pairs,
            scored_pairs: self.scored_pairs - earlier.scored_pairs,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            full_row_fallbacks: self.full_row_fallbacks - earlier.full_row_fallbacks,
            forwarded_annotators: self.forwarded_annotators - earlier.forwarded_annotators,
            filtered_annotators: self.filtered_annotators - earlier.filtered_annotators,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    /// `DqnAgent::params_generation` the partial was computed under.
    params_generation: u64,
    /// Exact bit pattern of the annotator-specific feature block.
    key: [u32; ANNOTATOR_SPECIFIC_DIM],
    /// First-layer partial pre-activation of the block (no bias).
    partial: Vec<f32>,
}

/// Per-annotator cache of first-layer activation partials.
///
/// Keying on (parameter generation, feature bit pattern) makes staleness
/// structurally impossible: any weight update or feature change produces
/// a key mismatch and a recompute. [`invalidate`](AnnotatorCache::invalidate)
/// exists for explicit dirty-set discipline (quarantine transitions) and
/// memory hygiene; correctness never depends on it being called.
#[derive(Debug, Clone, Default)]
pub struct AnnotatorCache {
    entries: HashMap<usize, CacheEntry>,
}

impl AnnotatorCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached annotator partials.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop one annotator's entry (quarantine entry/release, profile
    /// retirement).
    pub fn invalidate(&mut self, annotator: usize) {
        self.entries.remove(&annotator);
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The first-layer partial for one annotator's specific feature
    /// block, from cache when the generation and feature bits match,
    /// recomputed (and stored) otherwise.
    pub fn partial_for(
        &mut self,
        net: &Network,
        params_generation: u64,
        annotator: usize,
        specific: &[f32; ANNOTATOR_SPECIFIC_DIM],
        stats: &mut DecideStats,
    ) -> Vec<f32> {
        let key = specific.map(f32::to_bits);
        if let Some(e) = self.entries.get(&annotator) {
            if e.params_generation == params_generation && e.key == key {
                stats.cache_hits += 1;
                return e.partial.clone();
            }
        }
        stats.cache_misses += 1;
        let first = net.first_layer();
        let mut partial = vec![0.0f32; first.output_dim()];
        first.accumulate_partial(&mut partial, specific, OBJECT_PART_DIM);
        self.entries.insert(
            annotator,
            CacheEntry {
                params_generation,
                key,
                partial: partial.clone(),
            },
        );
        partial
    }
}

/// Lazily-scored (object × annotator) grid with column deduplication and
/// exact per-column score upper bounds.
///
/// Adjusted scores are `NaN` until their column is computed, `-inf` for
/// masked (already-answered) pairs, and otherwise the UCB-adjusted
/// Q-value — bit-identical to what exhaustive scoring produces: every
/// forward is row-independent, the cached/resumed first-layer rows
/// replicate the kernel's exact operation sequence, annotators sharing a
/// bit-identical suffix row share one forwarded Q-column, and the UCB
/// adjustment is re-applied per annotator with the identical
/// floating-point expression (`UcbExplorer::bonus_soft`).
pub struct LazyPairScores<'n> {
    net: &'n Network,
    /// Object-part first-layer partials, `c × h1`.
    lp: Matrix,
    /// Distinct biased annotator-suffix first-layer rows (one per score
    /// column).
    rp: Vec<Vec<f32>>,
    /// Annotator position → score column.
    group_of: Vec<usize>,
    /// Sound upper bound on each column's adjusted score over all
    /// candidate objects and member annotators.
    ub: Vec<f64>,
    /// Sound upper bound on each column's raw Q over all candidates
    /// (debug invariant checking).
    q_hi: Vec<f64>,
    /// Columns ordered by bound (descending, index-ascending on ties).
    order: Vec<usize>,
    /// Length of the scored prefix of `order`.
    prefix: usize,
    /// `c × g` raw Q-values; `NaN` = not yet scored.
    q: Vec<f64>,
    /// `c × w` already-answered mask.
    masked: Vec<bool>,
    /// Per-annotator additive UCB bonus (`None` when the explorer is
    /// absent or inactive and `score_soft` would return `q` unchanged).
    bonus: Option<Vec<f64>>,
    c: usize,
    w: usize,
    g: usize,
}

impl<'n> LazyPairScores<'n> {
    /// Build the grid: computes object partials, deduplicates identical
    /// suffix rows into score columns, assembles bound envelopes, and
    /// derives every column's score upper bound. No column is scored yet.
    pub fn new(
        net: &'n Network,
        object_parts: &[Vec<f32>],
        rp_rows: Vec<Vec<f32>>,
        masked: Vec<bool>,
        keys: Vec<u64>,
        ucb: Option<&UcbExplorer>,
    ) -> Self {
        let c = object_parts.len();
        let w = rp_rows.len();
        debug_assert_eq!(masked.len(), c * w);
        debug_assert_eq!(keys.len(), w);
        let first = net.first_layer();
        let h1 = first.output_dim();
        let mut left = Matrix::zeros(c, OBJECT_PART_DIM);
        for (i, part) in object_parts.iter().enumerate() {
            left.row_mut(i).copy_from_slice(part);
        }
        let lp = first.partial_matmul(&left, 0);

        // Deduplicate suffix rows by exact bit pattern: bit-identical
        // rows produce bit-identical Q-values for every object, so they
        // share one score column.
        let mut column_of: HashMap<Vec<u32>, usize> = HashMap::new();
        let mut rp: Vec<Vec<f32>> = Vec::new();
        let mut group_of = Vec::with_capacity(w);
        for row in rp_rows {
            let bits: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
            let col = *column_of.entry(bits).or_insert_with(|| {
                rp.push(row);
                rp.len() - 1
            });
            group_of.push(col);
        }
        let g = rp.len();

        // The UCB adjustment is additive and per-annotator
        // (`score_soft(q, a) == q + bonus_soft(a)`, the identical f64
        // expression), except when the explorer is inactive and
        // `score_soft` returns `q` untouched — mirror that exactly.
        let bonus: Option<Vec<f64>> = match ucb {
            Some(u) if u.total() > 0 && u.scale != 0.0 => {
                Some(keys.iter().map(|&key| u.bonus_soft(key)).collect())
            }
            _ => None,
        };

        // Column envelope of the object partials: for each hidden unit,
        // the min/max left contribution over the candidate set.
        let mut env_lo = vec![f32::INFINITY; h1];
        let mut env_hi = vec![f32::NEG_INFINITY; h1];
        for i in 0..c {
            for (h, &v) in lp.row(i).iter().enumerate() {
                env_lo[h] = env_lo[h].min(v);
                env_hi[h] = env_hi[h].max(v);
            }
        }

        // Per-column raw-Q bound: activation of the enveloped layer-0
        // pre-activation, propagated through the tail as an interval.
        let act = first.activation();
        let mut q_hi = Vec::with_capacity(g);
        let mut lo_buf = vec![0.0f32; h1];
        let mut hi_buf = vec![0.0f32; h1];
        for rp_row in &rp {
            for h in 0..h1 {
                lo_buf[h] = act.apply(env_lo[h] + rp_row[h]);
                hi_buf[h] = act.apply(env_hi[h] + rp_row[h]);
            }
            let (_, t_hi) = net.tail_forward_interval(&lo_buf, &hi_buf);
            q_hi.push(t_hi[0] as f64);
        }

        // Adjusted bound: raw bound plus the best member bonus (the
        // adjustment is monotone, so this dominates every member's
        // adjusted score).
        let mut ub = q_hi.clone();
        if let Some(b) = &bonus {
            let mut best = vec![f64::NEG_INFINITY; g];
            for (ai, &col) in group_of.iter().enumerate() {
                best[col] = best[col].max(b[ai]);
            }
            for (u, &bb) in ub.iter_mut().zip(&best) {
                // A column whose members are all masked everywhere still
                // has finite q_hi; -inf best only if g had no members,
                // which cannot happen.
                *u += bb;
            }
        }

        let mut order: Vec<usize> = (0..g).collect();
        order.sort_by(|&a, &b| ub[b].partial_cmp(&ub[a]).unwrap().then(a.cmp(&b)));

        Self {
            net,
            lp,
            rp,
            group_of,
            ub,
            q_hi,
            order,
            prefix: 0,
            q: vec![f64::NAN; c * g],
            masked,
            bonus,
            c,
            w,
            g,
        }
    }

    /// Number of distinct score columns after deduplication.
    pub fn column_count(&self) -> usize {
        self.g
    }

    /// The barrier: best upper bound among unscored columns (`-inf` once
    /// everything is scored). Any unscored pair's true adjusted score is
    /// `<=` this.
    pub fn barrier(&self) -> f64 {
        if self.prefix == self.g {
            f64::NEG_INFINITY
        } else {
            self.ub[self.order[self.prefix]]
        }
    }

    /// Whether every score column has been computed.
    pub fn fully_scored(&self) -> bool {
        self.prefix == self.g
    }

    /// The adjusted score of one pair: `NaN` if its column is not yet
    /// scored, `-inf` if masked, the UCB-adjusted Q otherwise.
    pub fn score_at(&self, ci: usize, ai: usize) -> f64 {
        let qv = self.q[ci * self.g + self.group_of[ai]];
        if qv.is_nan() {
            return f64::NAN;
        }
        if self.masked[ci * self.w + ai] {
            return f64::NEG_INFINITY;
        }
        match &self.bonus {
            Some(b) => qv + b[ai],
            None => qv,
        }
    }

    fn write_q(&mut self, ci: usize, col: usize, q: f32) {
        debug_assert!(
            (q as f64) <= self.q_hi[col],
            "q {q} above its column bound {} (object {ci}, column {col})",
            self.q_hi[col]
        );
        self.q[ci * self.g + col] = q as f64;
    }

    /// Score columns `order[prefix..target]` against every candidate
    /// object in one batched layer-0 combine + tail forward.
    fn extend_prefix(&mut self, target: usize, stats: &mut DecideStats) {
        debug_assert!(target <= self.g);
        if target <= self.prefix {
            return;
        }
        let block: Vec<usize> = self.order[self.prefix..target].to_vec();
        let first = self.net.first_layer();
        let act = first.activation();
        let h1 = first.output_dim();
        let mut m = Matrix::zeros(self.c * block.len(), h1);
        for (bi, &col) in block.iter().enumerate() {
            let rp_row = &self.rp[col];
            for ci in 0..self.c {
                let lp_row = self.lp.row(ci);
                let dst = m.row_mut(ci * block.len() + bi);
                for h in 0..h1 {
                    dst[h] = act.apply(lp_row[h] + rp_row[h]);
                }
            }
        }
        let out = self.net.tail_forward_inference(&m);
        stats.scored_pairs += (self.c * block.len()) as u64;
        for (bi, &col) in block.iter().enumerate() {
            for ci in 0..self.c {
                let q = out.get(ci * block.len() + bi, 0);
                self.write_q(ci, col, q);
            }
        }
        self.prefix = target;
    }

    /// Score every still-uncomputed column for one object's row (the
    /// panel-fill fallback).
    pub fn score_full_row(&mut self, ci: usize, stats: &mut DecideStats) {
        let pending: Vec<usize> = (0..self.g)
            .filter(|&col| self.q[ci * self.g + col].is_nan())
            .collect();
        if pending.is_empty() {
            return;
        }
        let first = self.net.first_layer();
        let act = first.activation();
        let h1 = first.output_dim();
        let mut m = Matrix::zeros(pending.len(), h1);
        let lp_row = self.lp.row(ci);
        for (bi, &col) in pending.iter().enumerate() {
            let rp_row = &self.rp[col];
            let dst = m.row_mut(bi);
            for h in 0..h1 {
                dst[h] = act.apply(lp_row[h] + rp_row[h]);
            }
        }
        let out = self.net.tail_forward_inference(&m);
        stats.scored_pairs += pending.len() as u64;
        for (bi, &col) in pending.iter().enumerate() {
            let q = out.get(bi, 0);
            self.write_q(ci, col, q);
        }
    }

    /// The k-th largest finite scored adjusted entry of a row (`-inf`
    /// when fewer than `k` finite entries are scored).
    fn kth_largest_scored(&self, ci: usize, k: usize) -> f64 {
        let mut top: Vec<f64> = Vec::with_capacity(k + 1);
        for ai in 0..self.w {
            let s = self.score_at(ci, ai);
            if s.is_nan() || s == f64::NEG_INFINITY {
                continue;
            }
            let pos = top.partition_point(|&t| t >= s);
            if pos < k {
                top.insert(pos, s);
                top.truncate(k);
            }
        }
        if top.len() < k {
            f64::NEG_INFINITY
        } else {
            top[k - 1]
        }
    }

    /// Grow the scored prefix until every object's top-`k` sum is
    /// provably exact: each row's k-th best scored entry must *strictly*
    /// exceed the best unscored bound. Strictness matters — an unscored
    /// annotator with an equal score and a lower index would displace a
    /// pick under `topk`'s lower-index tie-break.
    pub fn ensure_exact_sums(&mut self, k: usize, shortlist: usize, stats: &mut DecideStats) {
        let mut target = shortlist.max(1).min(self.g);
        loop {
            self.extend_prefix(target, stats);
            if self.prefix == self.g {
                return;
            }
            let beta = self.barrier();
            let mut min_tau = f64::INFINITY;
            for ci in 0..self.c {
                let tau = self.kth_largest_scored(ci, k);
                if tau <= beta {
                    min_tau = min_tau.min(tau);
                }
            }
            if min_tau == f64::INFINITY {
                return; // every object strictly clears the barrier
            }
            // Extend past every unscored column whose bound reaches the
            // weakest row's threshold (always at least one step).
            let mut t = self.prefix + 1;
            while t < self.g && self.ub[self.order[t]] >= min_tau {
                t += 1;
            }
            target = t;
        }
    }

    /// Exact top-`k` score sums per object. Only valid after
    /// [`ensure_exact_sums`](LazyPairScores::ensure_exact_sums) — the
    /// barrier guarantees unscored entries cannot reach any row's top-k,
    /// so substituting `-inf` for them leaves both the top-k set and the
    /// summation order identical to a fully-scored row.
    pub fn exact_sums(&self, k: usize) -> Vec<f64> {
        let mut row_buf = vec![f64::NEG_INFINITY; self.w];
        (0..self.c)
            .map(|ci| {
                for (ai, dst) in row_buf.iter_mut().enumerate() {
                    let s = self.score_at(ci, ai);
                    *dst = if s.is_nan() { f64::NEG_INFINITY } else { s };
                }
                topk::top_k_sum(&row_buf, k)
            })
            .collect()
    }

    /// Scored finite entries of a row, ranked exactly as
    /// `topk::top_k_indices(row, w)` would rank them (score descending,
    /// index ascending on ties, masked entries excluded).
    pub fn ranked_scored(&self, ci: usize) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = (0..self.w)
            .filter_map(|ai| {
                let s = self.score_at(ci, ai);
                s.is_finite().then_some((ai, s))
            })
            .collect();
        scored.sort_by(|&(a, sa), &(b, sb)| sb.partial_cmp(&sa).unwrap().then(a.cmp(&b)));
        scored.into_iter().map(|(ai, _)| ai).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_nn::Activation;
    use crowdrl_types::rng::seeded;
    use rand::Rng;

    fn fixture(seed: u64, c: usize, w: usize) -> (Network, Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut rng = seeded(seed);
        let net = Network::mlp(&[OBJECT_PART_DIM + 8, 16, 8, 1], Activation::Relu, &mut rng);
        let mut part = |n: usize, d: usize| -> Vec<Vec<f32>> {
            (0..n)
                .map(|_| (0..d).map(|_| rng.random::<f32>()).collect())
                .collect()
        };
        let objects = part(c, OBJECT_PART_DIM);
        let suffixes = part(w, 8);
        (net, objects, suffixes)
    }

    /// Biased first-layer rows for full annotator suffixes, the way the
    /// agent assembles them (cache partial + run resume + bias).
    fn rp_rows(net: &Network, suffixes: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let first = net.first_layer();
        suffixes
            .iter()
            .map(|s| {
                let mut cache = AnnotatorCache::new();
                let mut stats = DecideStats::default();
                let specific: [f32; ANNOTATOR_SPECIFIC_DIM] =
                    s[..ANNOTATOR_SPECIFIC_DIM].try_into().unwrap();
                let mut r = cache.partial_for(net, 0, 0, &specific, &mut stats);
                first.accumulate_partial(
                    &mut r,
                    &s[ANNOTATOR_SPECIFIC_DIM..],
                    OBJECT_PART_DIM + ANNOTATOR_SPECIFIC_DIM,
                );
                for (v, b) in r.iter_mut().zip(first.bias()) {
                    *v += b;
                }
                r
            })
            .collect()
    }

    fn exhaustive_reference(
        net: &Network,
        objects: &[Vec<f32>],
        suffixes: &[Vec<f32>],
    ) -> Vec<f64> {
        let mut left = Matrix::zeros(objects.len(), OBJECT_PART_DIM);
        for (i, o) in objects.iter().enumerate() {
            left.row_mut(i).copy_from_slice(o);
        }
        let mut right = Matrix::zeros(suffixes.len(), 8);
        for (i, s) in suffixes.iter().enumerate() {
            right.row_mut(i).copy_from_slice(s);
        }
        let out = net.forward_inference_outer(&left, &right);
        (0..out.rows()).map(|r| out.get(r, 0) as f64).collect()
    }

    #[test]
    fn lazy_scores_match_exhaustive_bitwise() {
        for seed in [1u64, 2, 3] {
            let (net, objects, suffixes) = fixture(seed, 6, 40);
            let (c, w) = (objects.len(), suffixes.len());
            let reference = exhaustive_reference(&net, &objects, &suffixes);
            let rp = rp_rows(&net, &suffixes);
            let keys: Vec<u64> = (0..w as u64).collect();
            let mut grid = LazyPairScores::new(&net, &objects, rp, vec![false; c * w], keys, None);
            let mut stats = DecideStats::default();
            grid.ensure_exact_sums(3, 8, &mut stats);
            // Force everything scored so every pair can be compared.
            for ci in 0..c {
                grid.score_full_row(ci, &mut stats);
            }
            for ci in 0..c {
                for ai in 0..w {
                    let got = grid.score_at(ci, ai);
                    let want = reference[ci * w + ai];
                    assert_eq!(got.to_bits(), want.to_bits(), "pair ({ci},{ai})");
                }
            }
        }
    }

    #[test]
    fn exact_sums_match_full_scoring_without_scoring_everything() {
        for seed in [7u64, 8, 9, 10] {
            let (net, objects, suffixes) = fixture(seed, 5, 120);
            let (c, w) = (objects.len(), suffixes.len());
            let reference = exhaustive_reference(&net, &objects, &suffixes);
            let want: Vec<f64> = (0..c)
                .map(|ci| topk::top_k_sum(&reference[ci * w..(ci + 1) * w], 3))
                .collect();
            let rp = rp_rows(&net, &suffixes);
            let keys: Vec<u64> = (0..w as u64).collect();
            let mut grid = LazyPairScores::new(&net, &objects, rp, vec![false; c * w], keys, None);
            let mut stats = DecideStats::default();
            grid.ensure_exact_sums(3, 16, &mut stats);
            let got = grid.exact_sums(3);
            for ci in 0..c {
                assert_eq!(got[ci].to_bits(), want[ci].to_bits(), "object {ci}");
            }
            assert!(
                stats.scored_pairs <= (c * w) as u64,
                "scored {} of {}",
                stats.scored_pairs,
                c * w
            );
        }
    }

    #[test]
    fn duplicate_suffix_rows_share_one_forwarded_column() {
        // 90 annotators but only 6 distinct suffixes: tail work must
        // scale with the distinct count while every expanded score stays
        // bit-identical to the exhaustive reference.
        let (net, objects, base) = fixture(23, 5, 6);
        let w = 90usize;
        let c = objects.len();
        let suffixes: Vec<Vec<f32>> = (0..w).map(|i| base[i % base.len()].clone()).collect();
        let reference = exhaustive_reference(&net, &objects, &suffixes);
        let rp = rp_rows(&net, &suffixes);
        let keys: Vec<u64> = (0..w as u64).collect();
        let mut ucb = UcbExplorer::new(0.5);
        for a in 0..40u64 {
            ucb.record(a % 13);
        }
        let mut grid =
            LazyPairScores::new(&net, &objects, rp, vec![false; c * w], keys, Some(&ucb));
        assert_eq!(grid.column_count(), base.len());
        let mut stats = DecideStats::default();
        grid.ensure_exact_sums(2, 4, &mut stats);
        for ci in 0..c {
            grid.score_full_row(ci, &mut stats);
        }
        // All columns scored, yet tail work is bounded by distinct rows.
        assert!(grid.fully_scored());
        assert!(
            stats.scored_pairs <= (c * base.len()) as u64,
            "scored {} pairs for {} distinct columns",
            stats.scored_pairs,
            base.len()
        );
        for ci in 0..c {
            for ai in 0..w {
                let got = grid.score_at(ci, ai);
                let want = ucb.score_soft(reference[ci * w + ai], ai as u64);
                assert_eq!(got.to_bits(), want.to_bits(), "pair ({ci},{ai})");
            }
        }
    }

    #[test]
    fn cache_hits_on_same_generation_and_features_only() {
        let (net, _, suffixes) = fixture(11, 1, 1);
        let mut cache = AnnotatorCache::new();
        let mut stats = DecideStats::default();
        let specific: [f32; ANNOTATOR_SPECIFIC_DIM] =
            suffixes[0][..ANNOTATOR_SPECIFIC_DIM].try_into().unwrap();

        let a = cache.partial_for(&net, 0, 5, &specific, &mut stats);
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
        let b = cache.partial_for(&net, 0, 5, &specific, &mut stats);
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(a, b);

        // New parameter generation: miss.
        let _ = cache.partial_for(&net, 1, 5, &specific, &mut stats);
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 2));

        // Changed feature bits: miss.
        let mut changed = specific;
        changed[0] += 0.25;
        let _ = cache.partial_for(&net, 1, 5, &changed, &mut stats);
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 3));

        // Explicit invalidation: miss even with matching key.
        cache.invalidate(5);
        let _ = cache.partial_for(&net, 1, 5, &changed, &mut stats);
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 4));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn bounds_dominate_scores_with_masks_and_ucb() {
        let (net, objects, suffixes) = fixture(13, 4, 30);
        let (c, w) = (objects.len(), suffixes.len());
        let mut ucb = UcbExplorer::new(1.0);
        for a in 0..10u64 {
            ucb.record(a % 4);
        }
        let mut masked = vec![false; c * w];
        masked[3] = true;
        masked[w + 1] = true;
        let rp = rp_rows(&net, &suffixes);
        let keys: Vec<u64> = (0..w as u64).collect();
        let mut grid = LazyPairScores::new(&net, &objects, rp, masked, keys, Some(&ucb));
        let mut stats = DecideStats::default();
        grid.ensure_exact_sums(2, 4, &mut stats);
        for ci in 0..c {
            grid.score_full_row(ci, &mut stats);
        }
        // write_q debug-asserts q <= q_hi on every write; reaching here
        // means every raw Q respected its column bound (adjusted scores
        // respect ub by construction: best member bonus). Spot-check the
        // masked pairs.
        assert_eq!(grid.score_at(0, 3), f64::NEG_INFINITY);
        assert_eq!(grid.score_at(1, 1), f64::NEG_INFINITY);
    }

    #[test]
    fn ranked_scored_matches_topk_order() {
        let (net, objects, suffixes) = fixture(17, 3, 25);
        let (c, w) = (objects.len(), suffixes.len());
        let rp = rp_rows(&net, &suffixes);
        let keys: Vec<u64> = (0..w as u64).collect();
        let mut masked = vec![false; c * w];
        masked[2] = true;
        let mut grid = LazyPairScores::new(&net, &objects, rp, masked, keys, None);
        let mut stats = DecideStats::default();
        for ci in 0..c {
            grid.score_full_row(ci, &mut stats);
        }
        for ci in 0..c {
            let row: Vec<f64> = (0..w).map(|ai| grid.score_at(ci, ai)).collect();
            assert_eq!(grid.ranked_scored(ci), topk::top_k_indices(&row, w));
        }
    }
}
