//! Helpers for training the classifier `φ` from the current labelled set.
//!
//! Algorithm 1 line 5: "Train classifier φ using labelled data". Both
//! CrowdRL and the baselines need to turn a [`LabelledSet`] into training
//! matrices; these helpers keep that in one place.

use crowdrl_linalg::Matrix;
use crowdrl_nn::SoftmaxClassifier;
use crowdrl_types::{ClassId, Dataset, LabelledSet, Result};
use rand::Rng;

/// Gather the features and hard labels of every labelled object.
///
/// Returns `None` when nothing is labelled yet or only one class is
/// present (a classifier cannot learn from a single class).
pub fn training_data(dataset: &Dataset, labelled: &LabelledSet) -> Option<(Matrix, Vec<ClassId>)> {
    let pairs: Vec<(usize, ClassId)> = labelled
        .labelled_objects()
        .map(|(o, c)| (o.index(), c))
        .collect();
    if pairs.is_empty() {
        return None;
    }
    let first = pairs[0].1;
    if pairs.iter().all(|&(_, c)| c == first) {
        return None;
    }
    let mut x = Matrix::zeros(pairs.len(), dataset.dim());
    let mut y = Vec::with_capacity(pairs.len());
    for (row, &(i, c)) in pairs.iter().enumerate() {
        x.row_mut(row).copy_from_slice(dataset.features(i));
        y.push(c);
    }
    Some((x, y))
}

/// Retrain `classifier` on the labelled set (hard labels). Returns whether
/// training happened (it is skipped when there is nothing to learn from).
pub fn retrain_on_labelled<R: Rng + ?Sized>(
    classifier: &mut SoftmaxClassifier,
    dataset: &Dataset,
    labelled: &LabelledSet,
    rng: &mut R,
) -> Result<bool> {
    match training_data(dataset, labelled) {
        Some((x, y)) => {
            classifier.fit_hard(&x, &y, rng)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_nn::ClassifierConfig;
    use crowdrl_sim::DatasetSpec;
    use crowdrl_types::rng::seeded;
    use crowdrl_types::{LabelState, ObjectId};

    #[test]
    fn training_data_gathers_labelled_rows() {
        let mut rng = seeded(1);
        let dataset = DatasetSpec::gaussian("t", 10, 2, 2)
            .generate(&mut rng)
            .unwrap();
        let mut labelled = LabelledSet::new(10);
        labelled
            .set(ObjectId(2), LabelState::Inferred(ClassId(0)))
            .unwrap();
        labelled
            .set(ObjectId(7), LabelState::Enriched(ClassId(1)))
            .unwrap();
        let (x, y) = training_data(&dataset, &labelled).unwrap();
        assert_eq!(x.rows(), 2);
        assert_eq!(y, vec![ClassId(0), ClassId(1)]);
        assert_eq!(x.row(0), dataset.features(2));
    }

    #[test]
    fn empty_or_single_class_yields_none() {
        let mut rng = seeded(2);
        let dataset = DatasetSpec::gaussian("t", 5, 2, 2)
            .generate(&mut rng)
            .unwrap();
        let mut labelled = LabelledSet::new(5);
        assert!(training_data(&dataset, &labelled).is_none());
        labelled
            .set(ObjectId(0), LabelState::Inferred(ClassId(1)))
            .unwrap();
        labelled
            .set(ObjectId(1), LabelState::Inferred(ClassId(1)))
            .unwrap();
        assert!(training_data(&dataset, &labelled).is_none());
    }

    #[test]
    fn retrain_trains_when_possible() {
        let mut rng = seeded(3);
        let dataset = DatasetSpec::gaussian("t", 60, 2, 2)
            .with_separation(3.0)
            .generate(&mut rng)
            .unwrap();
        let mut clf = SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
        let mut labelled = LabelledSet::new(60);
        assert!(!retrain_on_labelled(&mut clf, &dataset, &labelled, &mut rng).unwrap());
        for i in 0..30 {
            labelled
                .set(ObjectId(i), LabelState::Inferred(dataset.truth(i)))
                .unwrap();
        }
        assert!(retrain_on_labelled(&mut clf, &dataset, &labelled, &mut rng).unwrap());
        assert!(clf.is_trained());
    }
}
