//! Configuration for the CrowdRL workflow.

use crate::decide::DecideConfig;
use crowdrl_inference::{EngineConfig, JointConfig};
use crowdrl_nn::ClassifierConfig;
use crowdrl_rl::DqnConfig;
use crowdrl_types::{Error, Result};

/// Which truth-inference model the environment runs each iteration.
#[derive(Debug, Clone)]
pub enum InferenceModel {
    /// The paper's joint model coupling classifier and annotators (§V-A.2).
    Joint(JointConfig),
    /// PM conflict-minimisation — the paper's `M3` ablation (§VI-B.3).
    Pm,
    /// Dawid–Skene EM over annotators only.
    DawidSkene,
    /// Plain majority vote.
    MajorityVote,
}

/// Exploration policy for action selection.
#[derive(Debug, Clone)]
pub enum Exploration {
    /// The paper's UCB1-style bonus (Eq. 6) with a scale multiplier
    /// (1.0 = the paper).
    Ucb {
        /// Bonus multiplier.
        scale: f64,
    },
    /// Classical ε-greedy with linear decay, for the exploration ablation.
    EpsilonGreedy {
        /// Initial ε.
        start: f64,
        /// Final ε.
        end: f64,
        /// Iterations over which ε decays.
        decay_steps: u64,
    },
}

/// The paper's component ablations (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ablation {
    /// `M1`: replace learned task *selection* with uniform-random objects.
    pub random_task_selection: bool,
    /// `M2`: replace learned task *assignment* with uniform-random
    /// annotators.
    pub random_task_assignment: bool,
}

/// Full configuration of a CrowdRL run. Build via
/// [`CrowdRlConfig::builder`].
#[derive(Debug, Clone)]
pub struct CrowdRlConfig {
    /// Total monetary budget `B`.
    pub budget: f64,
    /// Initial sampling ratio `α ∈ (0,1)`: this fraction of objects is
    /// labelled up-front before the RL loop starts.
    pub initial_ratio: f64,
    /// Number of annotators asked per selected object (`k` in §IV-B).
    pub assignment_k: usize,
    /// Objects selected per labelling iteration.
    pub batch_per_iter: usize,
    /// Enrichment margin `ε` (Algorithm 1 line 10): auto-label only when
    /// the top-two classifier probabilities differ by more than this.
    pub enrichment_margin: f64,
    /// Enrichment warmup: the classifier may only auto-label once at least
    /// this fraction of objects carries a *human-inferred* label. Guards
    /// against an overconfident early classifier mass-labelling the dataset
    /// before annotators have corrected it.
    pub enrichment_warmup: f64,
    /// Maximum objects the classifier may auto-label per iteration
    /// (most-confident first); `None` = unlimited. Keeps early-classifier
    /// mistakes from snowballing.
    pub enrichment_cap_per_iter: Option<usize>,
    /// Posterior confidence required before truth inference marks an object
    /// labelled. Objects answered but still ambiguous stay *unlabelled* and
    /// remain selectable, so the agent can escalate them to stronger
    /// annotators — the paper masks actions on *labelled* objects (§IV-B),
    /// not on answered ones. Residual uncertain objects receive their MAP
    /// label at the end of the run.
    pub label_confidence: f64,
    /// Enrichment trust gate: the classifier may only auto-label once its
    /// running agreement with freshly human-inferred labels reaches this
    /// level. Agreement is measured *out of sample* — the classifier's
    /// prediction for each selected object is recorded before its answers
    /// are purchased, then compared with the label truth inference assigns
    /// — so an overfit classifier cannot vouch for itself.
    pub enrichment_trust: f64,
    /// Weight `λ` of the enrichment term in the reward.
    pub lambda: f64,
    /// Weight `μ` of the inferred-label-confidence term in the reward
    /// (our extension; 0 recovers the paper's exact reward — see
    /// `crowdrl_core::reward`).
    pub mu: f64,
    /// Weight `η` of the monetary-cost term in the reward.
    pub eta: f64,
    /// Cap on candidate objects scored per iteration (the full action space
    /// is `|O|·|W|`; scoring every unlabelled object every iteration is
    /// quadratic overkill, so we score a uniform sample of this size).
    pub candidate_cap: usize,
    /// DQN minibatch updates per labelling iteration.
    pub train_steps_per_iter: usize,
    /// Candidate embeddings stored per transition for TD bootstrapping.
    pub bootstrap_candidates: usize,
    /// Safety cap on labelling iterations.
    pub max_iters: usize,
    /// Label any objects still unlabelled at the end with the classifier's
    /// argmax prediction (the paper labels the full dataset).
    pub final_fallback: bool,
    /// Exploration policy.
    pub exploration: Exploration,
    /// Truth-inference model.
    pub inference: InferenceModel,
    /// Incremental inference-engine knobs: warm-started EM state carried
    /// across iterations, dirty-set E-steps, and short warm classifier
    /// retrains. `warm_start: false` restores fully cold per-iteration
    /// inference.
    pub engine: EngineConfig,
    /// Component ablations.
    pub ablation: Ablation,
    /// Classifier hyperparameters.
    pub classifier: ClassifierConfig,
    /// Q-network hyperparameters (`input_dim` is overwritten with the
    /// framework's feature width).
    pub dqn: DqnConfig,
    /// Optional pre-trained Q-network parameters (the paper's offline
    /// "cross-training": train on other datasets, deploy here, §VI-A.4).
    pub pretrained_dqn: Option<Vec<f32>>,
    /// Decide-path scoring strategy (pruned vs exhaustive) and shortlist
    /// width. Selections are bit-identical across modes, so this knob is
    /// excluded from [`CrowdRlConfig::fingerprint`] — checkpoints taken
    /// under one mode restore under the other.
    pub decide: DecideConfig,
}

impl CrowdRlConfig {
    /// Start building a config.
    pub fn builder() -> CrowdRlConfigBuilder {
        CrowdRlConfigBuilder::default()
    }

    /// This config with a different budget — how a multi-project service
    /// derives per-tenant configs from one template without rebuilding
    /// every knob through the builder.
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = budget;
        self
    }

    /// A stable fingerprint of every knob, used to verify that a
    /// checkpoint is restored under the configuration that produced it.
    /// FNV-1a over the `Debug` rendering: the derived format covers every
    /// field (adding one changes the fingerprint automatically), and
    /// within one build it is deterministic — which is all a
    /// crash-resume check needs.
    pub fn fingerprint(&self) -> u64 {
        // Canonicalize observationally-neutral knobs first: `decide` only
        // changes how scores are computed, never what is selected, so two
        // configs differing only there must fingerprint identically (a
        // checkpoint written under pruned decide restores under
        // exhaustive and vice versa).
        let mut canonical = self.clone();
        canonical.decide = DecideConfig::default();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{canonical:?}").bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Validate all parameter domains.
    pub fn validate(&self) -> Result<()> {
        if !self.budget.is_finite() || self.budget < 0.0 {
            return Err(Error::InvalidParameter(
                "budget must be finite and non-negative".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.initial_ratio) {
            return Err(Error::InvalidParameter(format!(
                "initial_ratio must be in [0,1), got {}",
                self.initial_ratio
            )));
        }
        if self.assignment_k == 0 {
            return Err(Error::InvalidParameter(
                "assignment_k must be positive".into(),
            ));
        }
        if self.batch_per_iter == 0 {
            return Err(Error::InvalidParameter(
                "batch_per_iter must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.enrichment_margin) {
            return Err(Error::InvalidParameter(
                "enrichment_margin must be in [0,1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.enrichment_warmup) {
            return Err(Error::InvalidParameter(
                "enrichment_warmup must be in [0,1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.enrichment_trust) {
            return Err(Error::InvalidParameter(
                "enrichment_trust must be in [0,1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.label_confidence) {
            return Err(Error::InvalidParameter(
                "label_confidence must be in [0,1]".into(),
            ));
        }
        if self.lambda < 0.0 || self.mu < 0.0 || self.eta < 0.0 {
            return Err(Error::InvalidParameter(
                "lambda, mu and eta must be non-negative".into(),
            ));
        }
        if self.candidate_cap == 0 {
            return Err(Error::InvalidParameter(
                "candidate_cap must be positive".into(),
            ));
        }
        if self.max_iters == 0 {
            return Err(Error::InvalidParameter("max_iters must be positive".into()));
        }
        match &self.exploration {
            Exploration::Ucb { scale } => {
                if *scale < 0.0 || !scale.is_finite() {
                    return Err(Error::InvalidParameter(
                        "ucb scale must be non-negative".into(),
                    ));
                }
            }
            Exploration::EpsilonGreedy { start, end, .. } => {
                if !(0.0..=1.0).contains(start) || !(0.0..=1.0).contains(end) {
                    return Err(Error::InvalidParameter("epsilon must be in [0,1]".into()));
                }
            }
        }
        if self.decide.shortlist == 0 {
            return Err(Error::InvalidParameter(
                "decide.shortlist must be positive".into(),
            ));
        }
        self.classifier.validate()?;
        self.engine.validate()?;
        Ok(())
    }
}

/// Builder for [`CrowdRlConfig`]; defaults follow the paper's experimental
/// setup (α = 5%, k = 3 annotators per object).
#[derive(Debug, Clone)]
pub struct CrowdRlConfigBuilder {
    config: CrowdRlConfig,
}

impl Default for CrowdRlConfigBuilder {
    fn default() -> Self {
        Self {
            config: CrowdRlConfig {
                budget: 0.0,
                initial_ratio: 0.05,
                assignment_k: 3,
                batch_per_iter: 8,
                enrichment_margin: 0.8,
                enrichment_warmup: 0.1,
                label_confidence: 0.85,
                enrichment_cap_per_iter: Some(16),
                enrichment_trust: 0.75,
                lambda: 1.0,
                mu: 1.0,
                eta: 0.15,
                candidate_cap: 128,
                train_steps_per_iter: 8,
                bootstrap_candidates: 16,
                max_iters: 100_000,
                final_fallback: true,
                exploration: Exploration::Ucb { scale: 1.0 },
                inference: InferenceModel::Joint(JointConfig {
                    max_iters: 4,
                    ..JointConfig::default()
                }),
                engine: EngineConfig::default(),
                ablation: Ablation::default(),
                classifier: ClassifierConfig {
                    epochs: 15,
                    ..ClassifierConfig::default()
                },
                dqn: DqnConfig::default(),
                pretrained_dqn: None,
                decide: DecideConfig::default(),
            },
        }
    }
}

impl CrowdRlConfigBuilder {
    /// Set the total budget `B` (required).
    pub fn budget(mut self, budget: f64) -> Self {
        self.config.budget = budget;
        self
    }

    /// Set the initial sampling ratio `α`.
    pub fn initial_ratio(mut self, alpha: f64) -> Self {
        self.config.initial_ratio = alpha;
        self
    }

    /// Set the annotators-per-object count `k`.
    pub fn assignment_k(mut self, k: usize) -> Self {
        self.config.assignment_k = k;
        self
    }

    /// Set the objects-per-iteration batch size.
    pub fn batch_per_iter(mut self, batch: usize) -> Self {
        self.config.batch_per_iter = batch;
        self
    }

    /// Set the enrichment margin `ε`.
    pub fn enrichment_margin(mut self, eps: f64) -> Self {
        self.config.enrichment_margin = eps;
        self
    }

    /// Set the enrichment warmup (min human-labelled fraction).
    pub fn enrichment_warmup(mut self, warmup: f64) -> Self {
        self.config.enrichment_warmup = warmup;
        self
    }

    /// Set (or clear) the per-iteration enrichment cap.
    pub fn enrichment_cap_per_iter(mut self, cap: Option<usize>) -> Self {
        self.config.enrichment_cap_per_iter = cap;
        self
    }

    /// Set the enrichment trust gate (validated classifier agreement).
    pub fn enrichment_trust(mut self, trust: f64) -> Self {
        self.config.enrichment_trust = trust;
        self
    }

    /// Set the posterior confidence required to mark an object labelled.
    pub fn label_confidence(mut self, conf: f64) -> Self {
        self.config.label_confidence = conf;
        self
    }

    /// Set the reward weights `λ` (enrichment) and `η` (cost).
    pub fn reward_weights(mut self, lambda: f64, eta: f64) -> Self {
        self.config.lambda = lambda;
        self.config.eta = eta;
        self
    }

    /// Set the confidence-reward weight `μ` (0 = the paper's exact reward).
    pub fn confidence_weight(mut self, mu: f64) -> Self {
        self.config.mu = mu;
        self
    }

    /// Set the exploration policy.
    pub fn exploration(mut self, exploration: Exploration) -> Self {
        self.config.exploration = exploration;
        self
    }

    /// Set the truth-inference model.
    pub fn inference(mut self, inference: InferenceModel) -> Self {
        self.config.inference = inference;
        self
    }

    /// Set the incremental inference-engine knobs.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.config.engine = engine;
        self
    }

    /// Set the component ablations.
    pub fn ablation(mut self, ablation: Ablation) -> Self {
        self.config.ablation = ablation;
        self
    }

    /// Set the classifier hyperparameters.
    pub fn classifier(mut self, classifier: ClassifierConfig) -> Self {
        self.config.classifier = classifier;
        self
    }

    /// Set the Q-network hyperparameters.
    pub fn dqn(mut self, dqn: DqnConfig) -> Self {
        self.config.dqn = dqn;
        self
    }

    /// Set the numeric mode (matmul kernel selection) for *both* the
    /// Q-networks and the classifier. `Reference` (default) keeps the
    /// bit-pinned blocked kernels; `Fast` enables the SIMD kernels.
    ///
    /// The mode is part of the config fingerprint — checkpoints and traces
    /// taken in one mode are not interchangeable with the other, because
    /// the two reduction orders produce (slightly) different f32
    /// trajectories.
    pub fn numeric(mut self, mode: crowdrl_linalg::NumericMode) -> Self {
        self.config.dqn.numeric = mode;
        self.config.classifier.numeric = mode;
        self
    }

    /// Provide pre-trained Q-network parameters (cross-training).
    pub fn pretrained_dqn(mut self, params: Vec<f32>) -> Self {
        self.config.pretrained_dqn = Some(params);
        self
    }

    /// Set the decide-path configuration (scoring strategy + shortlist).
    pub fn decide(mut self, decide: DecideConfig) -> Self {
        self.config.decide = decide;
        self
    }

    /// Set the candidate-object cap per iteration.
    pub fn candidate_cap(mut self, cap: usize) -> Self {
        self.config.candidate_cap = cap;
        self
    }

    /// Set the safety iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.config.max_iters = iters;
        self
    }

    /// Disable the end-of-run classifier fallback labelling.
    pub fn no_final_fallback(mut self) -> Self {
        self.config.final_fallback = false;
        self
    }

    /// Finish, validating the configuration.
    pub fn build(self) -> Result<CrowdRlConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_knob_sensitive() {
        let a = CrowdRlConfig::builder().budget(100.0).build().unwrap();
        let b = CrowdRlConfig::builder().budget(100.0).build().unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = CrowdRlConfig::builder().budget(101.0).build().unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = CrowdRlConfig::builder()
            .budget(100.0)
            .assignment_k(4)
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_decide_mode() {
        use crate::decide::{DecideConfig, DecideMode};
        let pruned = CrowdRlConfig::builder().budget(100.0).build().unwrap();
        let exhaustive = CrowdRlConfig::builder()
            .budget(100.0)
            .decide(DecideConfig {
                mode: DecideMode::Exhaustive,
                shortlist: 8,
            })
            .build()
            .unwrap();
        // Decide mode never changes selections, so checkpoints must be
        // interchangeable across modes.
        assert_eq!(pruned.fingerprint(), exhaustive.fingerprint());
    }

    #[test]
    fn builder_defaults_match_paper_setup() {
        let c = CrowdRlConfig::builder().budget(100.0).build().unwrap();
        assert_eq!(c.initial_ratio, 0.05);
        assert_eq!(c.assignment_k, 3);
        assert!(matches!(c.exploration, Exploration::Ucb { scale } if scale == 1.0));
        assert!(matches!(c.inference, InferenceModel::Joint(_)));
        assert!(!c.ablation.random_task_selection);
        assert!(c.final_fallback);
    }

    #[test]
    fn validation_rejects_bad_domains() {
        let base = || CrowdRlConfig::builder().budget(100.0);
        assert!(base().budget(-1.0).build().is_err());
        assert!(base().initial_ratio(1.0).build().is_err());
        assert!(base().initial_ratio(-0.1).build().is_err());
        assert!(base().assignment_k(0).build().is_err());
        assert!(base().batch_per_iter(0).build().is_err());
        assert!(base().enrichment_margin(2.0).build().is_err());
        assert!(base().enrichment_warmup(-0.5).build().is_err());
        assert!(base().reward_weights(-1.0, 0.0).build().is_err());
        assert!(base().candidate_cap(0).build().is_err());
        assert!(base().max_iters(0).build().is_err());
        assert!(base()
            .exploration(Exploration::Ucb { scale: -1.0 })
            .build()
            .is_err());
        assert!(base()
            .exploration(Exploration::EpsilonGreedy {
                start: 2.0,
                end: 0.0,
                decay_steps: 1
            })
            .build()
            .is_err());
        assert!(base()
            .engine(EngineConfig {
                full_sweep_every: 0,
                ..EngineConfig::default()
            })
            .build()
            .is_err());
        assert!(base()
            .engine(EngineConfig {
                warm_max_iters: 0,
                ..EngineConfig::default()
            })
            .build()
            .is_err());
        assert!(base()
            .decide(crate::decide::DecideConfig {
                shortlist: 0,
                ..Default::default()
            })
            .build()
            .is_err());
    }

    #[test]
    fn builder_setters_apply() {
        let c = CrowdRlConfig::builder()
            .budget(50.0)
            .initial_ratio(0.1)
            .assignment_k(5)
            .batch_per_iter(4)
            .enrichment_margin(0.5)
            .reward_weights(2.0, 0.5)
            .candidate_cap(64)
            .max_iters(10)
            .inference(InferenceModel::Pm)
            .ablation(Ablation {
                random_task_selection: true,
                random_task_assignment: false,
            })
            .no_final_fallback()
            .build()
            .unwrap();
        assert_eq!(c.budget, 50.0);
        assert_eq!(c.assignment_k, 5);
        assert_eq!(c.lambda, 2.0);
        assert!(matches!(c.inference, InferenceModel::Pm));
        assert!(c.ablation.random_task_selection);
        assert!(!c.final_fallback);
    }
}
