//! The reward signal (§III-B).
//!
//! The paper defines `r(t) = λ·r_φ(t) + η·r_cost(t)` where
//! `r_φ(t) = |objects labelled by φ this iteration| / |unlabelled objects|`
//! rewards classifier coverage (free labels = the budget stretches) and
//! `r_cost(t)` accounts for the monetary cost of the iteration. Since the
//! agent maximizes reward, the cost term must enter negatively; we
//! normalize the iteration's spend by the largest possible per-iteration
//! spend so both terms live on comparable scales:
//!
//! ```text
//! r(t) = λ · enriched_t / max(1, unlabelled_before_t)
//!      + μ · mean-confidence(labels inferred at t)
//!      − η · spend_t / (batch · k · max_cost)
//! ```
//!
//! The `μ` term is our one extension to the paper's reward: it pays the
//! agent for answers that produce *confident* inferred labels. In the
//! paper's setting the enrichment term alone suffices because their
//! classifier bootstraps quickly; on harder feature regimes the agent
//! otherwise sees only the cost penalty before enrichment ever fires and
//! collapses onto the cheapest annotators. Confidence is the quantity
//! expert answers move most, giving the DQN direct credit for routing hard
//! objects to experts. Set `μ = 0` to recover the paper's exact reward.

/// Inputs for one iteration's reward.
#[derive(Debug, Clone, Copy)]
pub struct RewardInputs {
    /// Objects auto-labelled by the classifier this iteration.
    pub enriched: usize,
    /// Unlabelled objects *before* this iteration's enrichment.
    pub unlabelled_before: usize,
    /// Budget units spent on annotators this iteration.
    pub spend: f64,
    /// Maximum possible spend per iteration (`batch · k · max_cost`).
    pub max_iter_spend: f64,
    /// Mean posterior confidence of the labels inferred this iteration,
    /// in `[0, 1]` (0 when nothing was inferred).
    pub mean_confidence: f64,
}

/// Compute `r(t)`.
pub fn iteration_reward(lambda: f64, mu: f64, eta: f64, inputs: RewardInputs) -> f64 {
    let r_phi = inputs.enriched as f64 / inputs.unlabelled_before.max(1) as f64;
    let r_cost = if inputs.max_iter_spend > 0.0 {
        inputs.spend / inputs.max_iter_spend
    } else {
        0.0
    };
    lambda * r_phi + mu * inputs.mean_confidence - eta * r_cost
}

/// Discounted long-term return `R(t) = Σ_τ γ^{τ-t} r(τ)` over a recorded
/// reward trace (Eq. 1) — reporting/diagnostics only; the DQN bootstraps
/// its own targets.
pub fn discounted_return(rewards: &[f64], gamma: f64) -> f64 {
    let mut acc = 0.0;
    for &r in rewards.iter().rev() {
        acc = r + gamma * acc;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> RewardInputs {
        RewardInputs {
            enriched: 0,
            unlabelled_before: 10,
            spend: 0.0,
            max_iter_spend: 10.0,
            mean_confidence: 0.0,
        }
    }

    #[test]
    fn reward_rewards_enrichment() {
        let r = iteration_reward(
            1.0,
            0.0,
            0.0,
            RewardInputs {
                enriched: 5,
                unlabelled_before: 20,
                ..inputs()
            },
        );
        assert!((r - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reward_penalizes_spend() {
        let no_spend = iteration_reward(1.0, 0.0, 0.5, inputs());
        let full_spend = iteration_reward(
            1.0,
            0.0,
            0.5,
            RewardInputs {
                spend: 10.0,
                ..inputs()
            },
        );
        assert_eq!(no_spend, 0.0);
        assert!((full_spend + 0.5).abs() < 1e-12);
    }

    #[test]
    fn reward_pays_for_confident_labels() {
        let vague = iteration_reward(
            1.0,
            0.5,
            0.0,
            RewardInputs {
                mean_confidence: 0.5,
                ..inputs()
            },
        );
        let confident = iteration_reward(
            1.0,
            0.5,
            0.0,
            RewardInputs {
                mean_confidence: 1.0,
                ..inputs()
            },
        );
        assert!(confident > vague);
        assert!((confident - 0.5).abs() < 1e-12);
        // mu = 0 recovers the paper's reward exactly.
        let paper = iteration_reward(
            1.0,
            0.0,
            0.0,
            RewardInputs {
                mean_confidence: 1.0,
                ..inputs()
            },
        );
        assert_eq!(paper, 0.0);
    }

    #[test]
    fn degenerate_denominators_are_safe() {
        let r = iteration_reward(
            1.0,
            0.0,
            1.0,
            RewardInputs {
                enriched: 0,
                unlabelled_before: 0,
                spend: 5.0,
                max_iter_spend: 0.0,
                mean_confidence: 0.0,
            },
        );
        assert!(r.is_finite());
        assert_eq!(r, 0.0);
    }

    #[test]
    fn discounted_return_matches_manual_sum() {
        let rewards = [1.0, 0.5, 0.25];
        let gamma = 0.9;
        let want = 1.0 + 0.9 * 0.5 + 0.81 * 0.25;
        assert!((discounted_return(&rewards, gamma) - want).abs() < 1e-12);
        assert_eq!(discounted_return(&[], gamma), 0.0);
    }

    #[test]
    fn gamma_one_sums_rewards() {
        let rewards = [0.1, 0.2, 0.3];
        assert!((discounted_return(&rewards, 1.0) - 0.6).abs() < 1e-12);
    }
}
