//! Labelled-set enrichment (Algorithm 1 lines 4–14, §V-B).
//!
//! After the classifier is retrained, it rates every unlabelled object; an
//! object is auto-labelled `argmax_c φ_c(o)` only when the top-two class
//! probabilities differ by more than the margin `ε` — ambiguous objects
//! stay unlabelled for annotators to resolve.

use crowdrl_nn::SoftmaxClassifier;
use crowdrl_types::prob;
use crowdrl_types::{ClassId, Dataset, LabelState, LabelledSet, ObjectId, Result};

/// Run one enrichment pass. Returns the objects newly labelled.
///
/// Only objects currently unlabelled are considered; inferred labels are
/// never overwritten by the classifier. When `cap` is given, at most that
/// many objects are enriched per pass, **most-confident first** — neural
/// classifiers are overconfident in absolute terms but their margin
/// *ranking* is reliable, so capping keeps early-classifier mistakes from
/// snowballing while still labelling the easiest objects for free.
pub fn enrich(
    dataset: &Dataset,
    classifier: &SoftmaxClassifier,
    labelled: &mut LabelledSet,
    margin: f64,
    cap: Option<usize>,
) -> Result<Vec<(ObjectId, ClassId)>> {
    let mut newly = Vec::new();
    if !classifier.is_trained() {
        return Ok(newly);
    }
    let mut candidates: Vec<(f64, ObjectId, ClassId)> = Vec::new();
    let unlabelled: Vec<ObjectId> = labelled.unlabelled_objects().collect();
    for obj in unlabelled {
        let probs = classifier.predict_proba_one(dataset.features(obj.index()));
        let m = prob::top_two_margin(&probs);
        if m > margin {
            candidates.push((m, obj, ClassId(prob::argmax(&probs).unwrap_or(0))));
        }
    }
    candidates.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    if let Some(cap) = cap {
        candidates.truncate(cap);
    }
    for (_, obj, label) in candidates {
        labelled.set(obj, LabelState::Enriched(label))?;
        newly.push((obj, label));
    }
    Ok(newly)
}

/// Re-predict every currently `Enriched` object with the (presumably
/// newer) classifier, updating labels that changed. Returns how many
/// labels moved.
///
/// Enrichment decisions accumulate over the run, so early auto-labels come
/// from a classifier that had seen only a handful of human labels. Those
/// labels are classifier-owned — no budget was spent on them — so once the
/// final classifier exists there is no reason to keep its younger self's
/// mistakes: the current prediction is always the better estimate (the
/// same principle `apply_inference` applies to inferred labels).
pub fn refresh_enriched(
    dataset: &Dataset,
    classifier: &SoftmaxClassifier,
    labelled: &mut LabelledSet,
) -> Result<usize> {
    if !classifier.is_trained() {
        return Ok(0);
    }
    let enriched: Vec<(ObjectId, ClassId)> = (0..labelled.len())
        .filter_map(|i| match labelled.state(ObjectId(i)) {
            LabelState::Enriched(c) => Some((ObjectId(i), c)),
            _ => None,
        })
        .collect();
    let mut moved = 0;
    for (obj, old) in enriched {
        let new = classifier.predict_one(dataset.features(obj.index()));
        if new != old {
            labelled.set(obj, LabelState::Enriched(new))?;
            moved += 1;
        }
    }
    Ok(moved)
}

/// Label every remaining unlabelled object with the classifier's argmax,
/// margin or not (end-of-run fallback; the paper labels the full dataset).
/// Returns how many objects were labelled this way.
pub fn fallback_label_all(
    dataset: &Dataset,
    classifier: &SoftmaxClassifier,
    labelled: &mut LabelledSet,
) -> Result<usize> {
    if !classifier.is_trained() {
        return Ok(0);
    }
    let unlabelled: Vec<ObjectId> = labelled.unlabelled_objects().collect();
    let n = unlabelled.len();
    for obj in unlabelled {
        let label = classifier.predict_one(dataset.features(obj.index()));
        labelled.set(obj, LabelState::Enriched(label))?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_linalg::Matrix;
    use crowdrl_nn::ClassifierConfig;
    use crowdrl_sim::DatasetSpec;
    use crowdrl_types::rng::seeded;

    /// A well-separated dataset and a classifier trained on its truth.
    fn trained(seed: u64, separation: f64) -> (Dataset, SoftmaxClassifier) {
        let mut rng = seeded(seed);
        let dataset = DatasetSpec::gaussian("t", 120, 3, 2)
            .with_separation(separation)
            .generate(&mut rng)
            .unwrap();
        let mut clf = SoftmaxClassifier::new(ClassifierConfig::default(), 3, 2, &mut rng).unwrap();
        let x = Matrix::from_vec(dataset.len(), 3, dataset.feature_buffer().to_vec());
        clf.fit_hard(&x, dataset.truth_slice(), &mut rng).unwrap();
        (dataset, clf)
    }

    #[test]
    fn confident_classifier_enriches_most_objects_correctly() {
        let (dataset, clf) = trained(1, 4.0);
        let mut labelled = LabelledSet::new(dataset.len());
        let newly = enrich(&dataset, &clf, &mut labelled, 0.3, None).unwrap();
        assert!(newly.len() > 100, "enriched {}", newly.len());
        let correct = newly
            .iter()
            .filter(|(o, c)| dataset.truth(o.index()) == *c)
            .count();
        assert!(correct as f64 / newly.len() as f64 > 0.95);
        assert_eq!(labelled.enriched_count(), newly.len());
    }

    #[test]
    fn high_margin_blocks_ambiguous_objects() {
        let (dataset, clf) = trained(2, 0.3); // barely separated: low confidence
        let mut labelled = LabelledSet::new(dataset.len());
        let strict = enrich(&dataset, &clf, &mut labelled, 0.95, None).unwrap();
        let mut labelled2 = LabelledSet::new(dataset.len());
        let lax = enrich(&dataset, &clf, &mut labelled2, 0.0, None).unwrap();
        assert!(
            strict.len() < lax.len(),
            "strict {} lax {}",
            strict.len(),
            lax.len()
        );
        // Margin 0 labels everything the classifier isn't exactly split on.
        assert_eq!(lax.len(), dataset.len());
    }

    #[test]
    fn never_overwrites_existing_labels() {
        let (dataset, clf) = trained(3, 4.0);
        let mut labelled = LabelledSet::new(dataset.len());
        // Pin object 0 to the opposite of whatever the classifier says.
        let clf_label = clf.predict_one(dataset.features(0));
        let pinned = ClassId(1 - clf_label.index());
        labelled
            .set(ObjectId(0), LabelState::Inferred(pinned))
            .unwrap();
        enrich(&dataset, &clf, &mut labelled, 0.0, None).unwrap();
        assert_eq!(labelled.state(ObjectId(0)), LabelState::Inferred(pinned));
    }

    #[test]
    fn untrained_classifier_enriches_nothing() {
        let mut rng = seeded(4);
        let dataset = DatasetSpec::gaussian("t", 10, 3, 2)
            .generate(&mut rng)
            .unwrap();
        let clf = SoftmaxClassifier::new(ClassifierConfig::default(), 3, 2, &mut rng).unwrap();
        let mut labelled = LabelledSet::new(dataset.len());
        assert!(enrich(&dataset, &clf, &mut labelled, 0.2, None)
            .unwrap()
            .is_empty());
        assert_eq!(
            fallback_label_all(&dataset, &clf, &mut labelled).unwrap(),
            0
        );
    }

    #[test]
    fn fallback_labels_everything() {
        let (dataset, clf) = trained(5, 0.3);
        let mut labelled = LabelledSet::new(dataset.len());
        labelled
            .set(ObjectId(0), LabelState::Inferred(ClassId(0)))
            .unwrap();
        let n = fallback_label_all(&dataset, &clf, &mut labelled).unwrap();
        assert_eq!(n, dataset.len() - 1);
        assert!(labelled.all_labelled());
        // Pre-existing label untouched.
        assert_eq!(
            labelled.state(ObjectId(0)),
            LabelState::Inferred(ClassId(0))
        );
    }

    #[test]
    fn cap_limits_and_prefers_confident() {
        let (dataset, clf) = trained(6, 4.0);
        let mut labelled = LabelledSet::new(dataset.len());
        let capped = enrich(&dataset, &clf, &mut labelled, 0.0, Some(10)).unwrap();
        assert_eq!(capped.len(), 10);
        // The capped picks are the globally most-confident ones.
        let mut all_margins: Vec<f64> = (0..dataset.len())
            .map(|i| {
                crowdrl_types::prob::top_two_margin(&clf.predict_proba_one(dataset.features(i)))
            })
            .collect();
        all_margins.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let cutoff = all_margins[9];
        for (obj, _) in &capped {
            let m = crowdrl_types::prob::top_two_margin(
                &clf.predict_proba_one(dataset.features(obj.index())),
            );
            assert!(m >= cutoff - 1e-9);
        }
    }

    #[test]
    fn paper_example_margins() {
        // §V-B example: φ(o2) = (0.9, 0.1) ⇒ margin 0.8 > ε=0.2: labelled.
        // φ(o3) = (0.55, 0.45) ⇒ margin 0.1 < 0.2: stays unlabelled.
        assert!(prob::top_two_margin(&[0.9, 0.1]) > 0.2);
        assert!(prob::top_two_margin(&[0.55, 0.45]) < 0.2);
    }
}
