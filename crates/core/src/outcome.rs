//! Run outputs: the final labelling plus a per-iteration trace.

use crowdrl_types::{ClassId, LabelState};

/// Statistics recorded for one labelling iteration.
#[derive(Debug, Clone)]
pub struct IterationStats {
    /// Iteration index `t`.
    pub iteration: usize,
    /// Objects enriched by the classifier this iteration.
    pub enriched: usize,
    /// Objects selected for annotation this iteration.
    pub selected: usize,
    /// Annotator answers purchased this iteration.
    pub answers: usize,
    /// Budget spent this iteration.
    pub spend: f64,
    /// Reward `r(t)`.
    pub reward: f64,
    /// Labelled objects after this iteration.
    pub labelled_total: usize,
    /// DQN TD loss (mean over the iteration's train steps), if any ran.
    pub td_loss: Option<f32>,
}

/// The result of a complete labelling run.
#[derive(Debug, Clone)]
pub struct LabellingOutcome {
    /// Final label per object (`None` only when `final_fallback` was
    /// disabled and the budget died before the object was labelled).
    pub labels: Vec<Option<ClassId>>,
    /// How each object acquired its label.
    pub label_states: Vec<LabelState>,
    /// Budget units actually spent.
    pub budget_spent: f64,
    /// Labelling iterations executed.
    pub iterations: usize,
    /// Total annotator answers purchased.
    pub total_answers: usize,
    /// Objects labelled by the classifier (enrichment + fallback).
    pub enriched_count: usize,
    /// Objects labelled by the end-of-run classifier fallback alone — the
    /// residual the budgeted loop never resolved (a subset of
    /// `enriched_count`).
    pub fallback_count: usize,
    /// Per-iteration trace.
    pub trace: Vec<IterationStats>,
}

impl LabellingOutcome {
    /// Fraction of objects with a label.
    pub fn coverage(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|l| l.is_some()).count() as f64 / self.labels.len() as f64
    }

    /// Total reward accumulated over the run.
    pub fn total_reward(&self) -> f64 {
        self.trace.iter().map(|s| s.reward).sum()
    }

    /// Fraction of labels that came from humans (inferred) rather than the
    /// classifier.
    pub fn human_labelled_fraction(&self) -> f64 {
        let labelled = self.labels.iter().filter(|l| l.is_some()).count();
        if labelled == 0 {
            return 0.0;
        }
        let inferred = self
            .label_states
            .iter()
            .filter(|s| matches!(s, LabelState::Inferred(_)))
            .count();
        inferred as f64 / labelled as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> LabellingOutcome {
        LabellingOutcome {
            labels: vec![Some(ClassId(0)), Some(ClassId(1)), None, Some(ClassId(0))],
            label_states: vec![
                LabelState::Inferred(ClassId(0)),
                LabelState::Enriched(ClassId(1)),
                LabelState::Unlabelled,
                LabelState::Enriched(ClassId(0)),
            ],
            budget_spent: 42.0,
            iterations: 5,
            total_answers: 12,
            enriched_count: 2,
            fallback_count: 1,
            trace: vec![
                IterationStats {
                    iteration: 0,
                    enriched: 1,
                    selected: 2,
                    answers: 6,
                    spend: 20.0,
                    reward: 0.5,
                    labelled_total: 2,
                    td_loss: None,
                },
                IterationStats {
                    iteration: 1,
                    enriched: 1,
                    selected: 2,
                    answers: 6,
                    spend: 22.0,
                    reward: 0.25,
                    labelled_total: 3,
                    td_loss: Some(0.1),
                },
            ],
        }
    }

    #[test]
    fn coverage_counts_some_labels() {
        assert!((outcome().coverage() - 0.75).abs() < 1e-12);
        let empty = LabellingOutcome {
            labels: vec![],
            label_states: vec![],
            budget_spent: 0.0,
            iterations: 0,
            total_answers: 0,
            enriched_count: 0,
            fallback_count: 0,
            trace: vec![],
        };
        assert_eq!(empty.coverage(), 0.0);
        assert_eq!(empty.human_labelled_fraction(), 0.0);
    }

    #[test]
    fn reward_and_human_fraction() {
        let o = outcome();
        assert!((o.total_reward() - 0.75).abs() < 1e-12);
        assert!((o.human_labelled_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }
}
