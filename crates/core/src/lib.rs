//! # crowdrl-core
//!
//! The CrowdRL framework (Li et al., ICDE 2021): an end-to-end
//! reinforcement-learning loop that labels a dataset under a monetary
//! budget by unifying **task selection**, **task assignment** and **truth
//! inference**.
//!
//! One iteration of [`CrowdRl::run`] (the paper's Algorithm 1):
//!
//! 1. **Labelled-set enrichment** — the classifier `φ` (retrained by the
//!    joint inference model) rates every unlabelled object; objects whose
//!    top-two class probabilities differ by more than `ε` are auto-labelled
//!    for free ([`enrichment`]).
//! 2. **Unified task selection + assignment** — the agent embeds every
//!    candidate (object, annotator) pair into a state-action feature vector
//!    ([`features`]), scores them with the DQN, adds the UCB1 exploration
//!    bonus (Eq. 6), masks already-answered pairs with `Q = -inf`, sums the
//!    top-`k` per object with a bounded min-heap, and selects the batch of
//!    objects with the largest sums ([`agent`]).
//! 3. **Truth inference** — the selected questions go to the platform; the
//!    joint inference model (`crowdrl-inference`) couples annotator
//!    confusion matrices with the classifier to infer labels.
//! 4. **Reward and learning** — `r(t) = λ·r_φ(t) − η·r_cost(t)` rewards
//!    enrichment coverage and penalizes spend ([`reward`]); transitions go
//!    to the experience pool and the DQN takes minibatch TD steps.
//!
//! The loop ends when every object is labelled or the budget is exhausted;
//! any remainder is labelled by the final classifier.
//!
//! [`CrowdRlConfig`] exposes every design choice, including the paper's
//! ablations (Fig. 8): `M1` random task selection, `M2` random task
//! assignment, `M3` PM inference instead of the joint model.

pub mod agent;
pub mod classifier_util;
pub mod config;
pub mod decide;
pub mod enrichment;
pub mod features;
pub mod infer_step;
pub mod outcome;
pub mod reward;
pub mod workflow;

pub use config::{Ablation, CrowdRlConfig, CrowdRlConfigBuilder, Exploration, InferenceModel};
pub use crowdrl_inference::EngineConfig;
pub use decide::{DecideConfig, DecideMode, DecideStats};
pub use outcome::{IterationStats, LabellingOutcome};
pub use workflow::CrowdRl;
