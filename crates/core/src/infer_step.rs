//! One truth-inference step, shared by the batch workflow and the
//! asynchronous runtime.
//!
//! [`CrowdRl::run`](crate::workflow::CrowdRl::run) refreshes labels once
//! per batch iteration; `crowdrl-serve` refreshes them whenever an answer
//! watermark is crossed. Both call the same two functions here: given the
//! answers collected so far, [`run_inference`] produces an
//! [`InferenceResult`] under the configured model, and [`apply_inference`]
//! folds that result into the labelled set and quality estimates with the
//! confidence gate.

use crate::config::InferenceModel;
use crowdrl_inference::{
    DawidSkene, EngineConfig, InferenceEngine, InferenceResult, JointInference, MajorityVote, Pm,
};
use crowdrl_nn::SoftmaxClassifier;
use crowdrl_sim::AnnotatorPool;
use crowdrl_types::{AnswerSet, Dataset, LabelState, LabelledSet, Result};
use rand::Rng;

/// Run truth inference over `answers` under `model`.
///
/// The joint model couples annotator confusion matrices with the
/// classifier (and retrains it in the process); the others ignore the
/// features entirely.
pub fn run_inference<R: Rng + ?Sized>(
    model: &InferenceModel,
    dataset: &Dataset,
    answers: &AnswerSet,
    pool: &AnnotatorPool,
    classifier: &mut SoftmaxClassifier,
    rng: &mut R,
) -> Result<InferenceResult> {
    let k = dataset.num_classes();
    let w = pool.len();
    match model {
        InferenceModel::Joint(config) => JointInference {
            config: config.clone(),
        }
        .infer(dataset, answers, pool.profiles(), classifier, rng),
        InferenceModel::Pm => Pm::default().infer(answers, k, w),
        InferenceModel::DawidSkene => DawidSkene::default().infer(answers, k, w),
        InferenceModel::MajorityVote => MajorityVote.infer(answers, k, w),
    }
}

/// Build the persistent [`InferenceEngine`] for `model`, if incremental
/// inference applies.
///
/// Only the iterative EM models benefit from carried state; majority vote
/// and PM are single-pass and returned as `None`, as is any model when
/// `engine.warm_start` is off — the cold configuration then takes the
/// plain [`run_inference`] path, bit-identical to a stateless run.
pub fn make_engine(model: &InferenceModel, engine: &EngineConfig) -> Option<InferenceEngine> {
    if !engine.warm_start {
        return None;
    }
    match model {
        InferenceModel::Joint(config) => Some(InferenceEngine::joint(
            JointInference {
                config: config.clone(),
            },
            engine.clone(),
        )),
        InferenceModel::DawidSkene => Some(InferenceEngine::dawid_skene(
            DawidSkene::default(),
            engine.clone(),
        )),
        InferenceModel::Pm | InferenceModel::MajorityVote => None,
    }
}

/// Run one inference step through the persistent engine when one exists,
/// else fall back to stateless [`run_inference`]. The shared entry point
/// of the batch workflow's loop/finalize and `crowdrl-serve`'s refresh.
pub fn run_inference_step<R: Rng + ?Sized>(
    engine: &mut Option<InferenceEngine>,
    model: &InferenceModel,
    dataset: &Dataset,
    answers: &AnswerSet,
    pool: &AnnotatorPool,
    classifier: &mut SoftmaxClassifier,
    rng: &mut R,
) -> Result<InferenceResult> {
    match engine {
        Some(engine) => engine.infer(dataset, answers, pool.profiles(), classifier, rng),
        None => run_inference(model, dataset, answers, pool, classifier, rng),
    }
}

/// Write inferred labels into the labelled set and refresh the quality
/// estimates.
///
/// Only posteriors at or above `confidence` become labels; ambiguous
/// answered objects stay unlabelled so the agent can escalate them to
/// stronger annotators. A previously-labelled object whose posterior drops
/// back below the bar is un-labelled again (the posterior is always the
/// best current estimate). Classifier-enriched labels are never touched —
/// enrichment owns those objects.
pub fn apply_inference(
    result: &InferenceResult,
    labelled: &mut LabelledSet,
    qualities: &mut [f64],
    confidence: f64,
) -> Result<()> {
    for obj in result.inferred_objects() {
        if matches!(labelled.state(obj), LabelState::Enriched(_)) {
            continue;
        }
        let conf = result.confidence(obj).unwrap_or(0.0);
        if conf >= confidence {
            if let Some(label) = result.label(obj) {
                labelled.set(obj, LabelState::Inferred(label))?;
            }
        } else if matches!(labelled.state(obj), LabelState::Inferred(_)) {
            labelled.set(obj, LabelState::Unlabelled)?;
        }
    }
    for (q, nq) in qualities.iter_mut().zip(result.qualities()) {
        *q = nq;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_nn::ClassifierConfig;
    use crowdrl_sim::{DatasetSpec, PoolSpec};
    use crowdrl_types::rng::seeded;
    use crowdrl_types::{AnnotatorId, Answer, ClassId, ObjectId};

    fn setup() -> (Dataset, AnnotatorPool, SoftmaxClassifier, AnswerSet) {
        let mut rng = seeded(1);
        let dataset = DatasetSpec::gaussian("t", 30, 3, 2)
            .with_separation(3.0)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
        let classifier =
            SoftmaxClassifier::new(ClassifierConfig::default(), 3, 2, &mut rng).unwrap();
        let mut answers = AnswerSet::new(30);
        for o in 0..10 {
            for a in 0..3 {
                answers
                    .record(Answer {
                        object: ObjectId(o),
                        annotator: AnnotatorId(a),
                        label: dataset.truth(o),
                    })
                    .unwrap();
            }
        }
        (dataset, pool, classifier, answers)
    }

    #[test]
    fn every_model_runs_on_the_same_answers() {
        let (dataset, pool, mut classifier, answers) = setup();
        for model in [
            InferenceModel::Joint(Default::default()),
            InferenceModel::Pm,
            InferenceModel::DawidSkene,
            InferenceModel::MajorityVote,
        ] {
            let mut rng = seeded(2);
            let result =
                run_inference(&model, &dataset, &answers, &pool, &mut classifier, &mut rng)
                    .unwrap();
            // Unanimous truthful panels: every answered object inferred.
            assert_eq!(result.inferred_objects().count(), 10);
        }
    }

    #[test]
    fn apply_gates_on_confidence_and_unlabels_doubtful_objects() {
        let (dataset, pool, mut classifier, answers) = setup();
        let mut rng = seeded(3);
        let result = run_inference(
            &InferenceModel::MajorityVote,
            &dataset,
            &answers,
            &pool,
            &mut classifier,
            &mut rng,
        )
        .unwrap();
        let mut labelled = LabelledSet::new(30);
        let mut qualities = vec![0.5; 4];
        apply_inference(&result, &mut labelled, &mut qualities, 0.8).unwrap();
        assert_eq!(labelled.labelled_count(), 10);
        // An impossible confidence bar un-labels previously inferred
        // objects (but a label the classifier owns would survive).
        apply_inference(&result, &mut labelled, &mut qualities, 1.1).unwrap();
        assert_eq!(labelled.labelled_count(), 0);
        // Quality estimates were refreshed from the result.
        assert_eq!(qualities.len(), 4);
    }

    #[test]
    fn apply_never_touches_enriched_labels() {
        let (dataset, pool, mut classifier, answers) = setup();
        let mut rng = seeded(4);
        let result = run_inference(
            &InferenceModel::MajorityVote,
            &dataset,
            &answers,
            &pool,
            &mut classifier,
            &mut rng,
        )
        .unwrap();
        let mut labelled = LabelledSet::new(30);
        let pinned = ClassId(1 - dataset.truth(0).index());
        labelled
            .set(ObjectId(0), LabelState::Enriched(pinned))
            .unwrap();
        let mut qualities = vec![0.5; 4];
        apply_inference(&result, &mut labelled, &mut qualities, 0.8).unwrap();
        assert_eq!(labelled.state(ObjectId(0)), LabelState::Enriched(pinned));
    }
}
