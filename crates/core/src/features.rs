//! State-action featurization.
//!
//! The paper's raw state — the `|O| × |W|` labelling-history matrix plus
//! annotator cost/quality columns (§III-B) — has `(|C|+1)^{|O||W|}`
//! configurations; the DQN exists precisely because that is intractable.
//! We realize the function approximation by embedding each candidate
//! (object, annotator) action together with the decision-relevant summary
//! of the state into a fixed-width vector (see DESIGN.md §1): classifier
//! uncertainty about the object, the answers it already has and their
//! agreement, the annotator's estimated quality/cost/kind, and global
//! budget/progress fractions.

use crowdrl_types::prob;
use crowdrl_types::{AnnotatorId, AnnotatorProfile, AnswerSet, LabelledSet, ObjectId};

/// Width of the state-action embedding fed to the Q-network.
pub const FEATURE_DIM: usize = 15;

/// Snapshot of the run-level quantities the featurizer needs.
#[derive(Debug, Clone)]
pub struct StateSnapshot {
    /// Estimated scalar quality `tr(Π̂^j)/|C|` per annotator.
    pub qualities: Vec<f64>,
    /// Per-annotator answer counts so far.
    pub annotator_load: Vec<usize>,
    /// Fraction of the budget already spent.
    pub budget_spent_fraction: f64,
    /// Fraction of objects labelled (inferred + enriched).
    pub labelled_fraction: f64,
    /// Fraction of objects labelled by the classifier (enriched).
    pub enriched_fraction: f64,
    /// Maximum annotator cost in the pool (for normalization).
    pub max_cost: f64,
    /// Validated classifier trust (the enrichment gate's lower confidence
    /// bound, 0 when unknown). Lets the policy condition on whether the
    /// classifier can be expected to carry part of the dataset — when it
    /// cannot, wide cheap coverage beats expert depth.
    pub phi_trust: f64,
}

/// Embed a candidate (object, annotator) action.
///
/// `class_probs` is the classifier's current distribution for the object
/// (uniform if the classifier is untrained); `answers` supplies the
/// object's labelling history.
#[allow(clippy::too_many_arguments)]
pub fn embed(
    object: ObjectId,
    profile: &AnnotatorProfile,
    class_probs: &[f64],
    answers: &AnswerSet,
    labelled: &LabelledSet,
    snapshot: &StateSnapshot,
    assignment_k: usize,
) -> Vec<f32> {
    let k = class_probs.len().max(1);
    let votes = answers.answers_for(object);

    // Object-side uncertainty features.
    let max_prob = class_probs.iter().copied().fold(0.0f64, f64::max);
    let margin = prob::top_two_margin(class_probs);
    let norm_entropy = if k > 1 {
        prob::entropy(class_probs) / (k as f64).ln()
    } else {
        0.0
    };

    // Answer-history features.
    let answer_count = votes.len() as f64 / assignment_k.max(1) as f64;
    let (agreement, model_agrees) = if votes.is_empty() {
        (0.0, 0.5)
    } else {
        let mut counts = vec![0.0f64; k];
        for &(_, c) in votes {
            if c.index() < k {
                counts[c.index()] += 1.0;
            }
        }
        let top = counts.iter().copied().fold(0.0f64, f64::max);
        let agreement = top / votes.len() as f64;
        let model_label = prob::argmax(class_probs).unwrap_or(0);
        let vote_label = prob::argmax(&counts).unwrap_or(0);
        (agreement, if model_label == vote_label { 1.0 } else { 0.0 })
    };

    // Annotator-side features.
    let a = profile.id.index();
    let quality = snapshot.qualities.get(a).copied().unwrap_or(1.0 / k as f64);
    let cost = profile.cost / snapshot.max_cost.max(1e-9);
    let is_expert = if profile.is_expert() { 1.0 } else { 0.0 };
    let load = snapshot.annotator_load.get(a).copied().unwrap_or(0) as f64;
    let load_norm = load / (1.0 + load);

    // Already-labelled flag (masked upstream, but the net sees it too).
    let object_labelled = if labelled.state(object).is_labelled() {
        1.0
    } else {
        0.0
    };

    vec![
        max_prob as f32,
        margin as f32,
        norm_entropy as f32,
        answer_count.min(2.0) as f32,
        agreement as f32,
        model_agrees as f32,
        quality as f32,
        cost as f32,
        is_expert,
        load_norm as f32,
        snapshot.budget_spent_fraction as f32,
        snapshot.labelled_fraction as f32,
        snapshot.enriched_fraction as f32,
        object_labelled,
        snapshot.phi_trust as f32,
    ]
}

/// Pack an (object, annotator) pair into the `u64` key the UCB explorer
/// tracks.
pub fn action_key(object: ObjectId, annotator: AnnotatorId) -> u64 {
    ((object.index() as u64) << 24) | (annotator.index() as u64 & 0xFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::{AnnotatorKind, Answer, ClassId, LabelState};

    fn snapshot() -> StateSnapshot {
        StateSnapshot {
            qualities: vec![0.9, 0.6],
            annotator_load: vec![3, 0],
            budget_spent_fraction: 0.25,
            labelled_fraction: 0.5,
            enriched_fraction: 0.1,
            max_cost: 10.0,
            phi_trust: 0.5,
        }
    }

    fn profile(id: usize, expert: bool) -> AnnotatorProfile {
        AnnotatorProfile::new(
            AnnotatorId(id),
            if expert {
                AnnotatorKind::Expert
            } else {
                AnnotatorKind::Worker
            },
            if expert { 10.0 } else { 1.0 },
        )
        .unwrap()
    }

    #[test]
    fn embedding_has_fixed_width_and_is_finite() {
        let answers = AnswerSet::new(4);
        let labelled = LabelledSet::new(4);
        let v = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.7, 0.3],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert_eq!(v.len(), FEATURE_DIM);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn uncertainty_features_reflect_probs() {
        let answers = AnswerSet::new(1);
        let labelled = LabelledSet::new(1);
        let certain = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.99, 0.01],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        let uncertain = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.5, 0.5],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert!(certain[0] > uncertain[0]); // max prob
        assert!(certain[1] > uncertain[1]); // margin
        assert!(certain[2] < uncertain[2]); // entropy
    }

    #[test]
    fn answer_history_features() {
        let mut answers = AnswerSet::new(2);
        answers
            .record(Answer {
                object: ObjectId(0),
                annotator: AnnotatorId(0),
                label: ClassId(0),
            })
            .unwrap();
        answers
            .record(Answer {
                object: ObjectId(0),
                annotator: AnnotatorId(1),
                label: ClassId(0),
            })
            .unwrap();
        let labelled = LabelledSet::new(2);
        let v = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.8, 0.2],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert!((v[3] - 2.0 / 3.0).abs() < 1e-6); // 2 answers / k=3
        assert!((v[4] - 1.0).abs() < 1e-6); // unanimous agreement
        assert!((v[5] - 1.0).abs() < 1e-6); // model agrees with votes
                                            // No answers: neutral values.
        let v = embed(
            ObjectId(1),
            &profile(0, false),
            &[0.8, 0.2],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert_eq!(v[3], 0.0);
        assert_eq!(v[4], 0.0);
        assert_eq!(v[5], 0.5);
    }

    #[test]
    fn annotator_features_distinguish_expert() {
        let answers = AnswerSet::new(1);
        let labelled = LabelledSet::new(1);
        let w = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.5, 0.5],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        let e = embed(
            ObjectId(0),
            &profile(1, true),
            &[0.5, 0.5],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert!((w[6] - 0.9).abs() < 1e-6); // quality from snapshot
        assert!((e[6] - 0.6).abs() < 1e-6);
        assert!(w[7] < e[7]); // normalized cost
        assert_eq!(w[8], 0.0);
        assert_eq!(e[8], 1.0);
        assert!(w[9] > e[9]); // load
    }

    #[test]
    fn labelled_flag_is_set() {
        let answers = AnswerSet::new(1);
        let mut labelled = LabelledSet::new(1);
        labelled
            .set(ObjectId(0), LabelState::Inferred(ClassId(0)))
            .unwrap();
        let v = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.5, 0.5],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert_eq!(v[13], 1.0);
    }

    #[test]
    fn action_keys_are_unique_for_realistic_sizes() {
        let mut seen = std::collections::HashSet::new();
        for o in 0..100 {
            for a in 0..20 {
                assert!(seen.insert(action_key(ObjectId(o), AnnotatorId(a))));
            }
        }
    }
}
