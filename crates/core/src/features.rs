//! State-action featurization.
//!
//! The paper's raw state — the `|O| × |W|` labelling-history matrix plus
//! annotator cost/quality columns (§III-B) — has `(|C|+1)^{|O||W|}`
//! configurations; the DQN exists precisely because that is intractable.
//! We realize the function approximation by embedding each candidate
//! (object, annotator) action together with the decision-relevant summary
//! of the state into a fixed-width vector (see DESIGN.md §1): classifier
//! uncertainty about the object, the answers it already has and their
//! agreement, the annotator's estimated quality/cost/kind, and global
//! budget/progress fractions.

use crowdrl_linalg::Matrix;
use crowdrl_nn::SoftmaxClassifier;
use crowdrl_types::prob;
use crowdrl_types::{AnnotatorId, AnnotatorProfile, AnswerSet, Dataset, LabelledSet, ObjectId};

/// Width of the state-action embedding fed to the Q-network.
pub const FEATURE_DIM: usize = 15;

/// Number of leading embedding dims that depend only on the object (and
/// the labelled set). The embedding is laid out as an object-dependent
/// prefix of this width followed by an annotator/run-level suffix — no
/// dimension mixes both sides — so the Q-network's first layer factors
/// over the (object, annotator) cartesian product: see
/// [`embed_object_part`], [`embed_annotator_part`] and
/// `DqnAgent::q_values_outer`.
pub const OBJECT_PART_DIM: usize = 7;

/// Snapshot of the run-level quantities the featurizer needs.
#[derive(Debug, Clone)]
pub struct StateSnapshot {
    /// Estimated scalar quality `tr(Π̂^j)/|C|` per annotator.
    pub qualities: Vec<f64>,
    /// Per-annotator answer counts so far.
    pub annotator_load: Vec<usize>,
    /// Fraction of the budget already spent.
    pub budget_spent_fraction: f64,
    /// Fraction of objects labelled (inferred + enriched).
    pub labelled_fraction: f64,
    /// Fraction of objects labelled by the classifier (enriched).
    pub enriched_fraction: f64,
    /// Maximum annotator cost in the pool (for normalization).
    pub max_cost: f64,
    /// Validated classifier trust (the enrichment gate's lower confidence
    /// bound, 0 when unknown). Lets the policy condition on whether the
    /// classifier can be expected to carry part of the dataset — when it
    /// cannot, wide cheap coverage beats expert depth.
    pub phi_trust: f64,
}

/// The annotator-independent half of an embedding: classifier uncertainty
/// and answer-history summaries for one object. Computing these once per
/// object (instead of once per (object, annotator) pair) is what makes
/// batched candidate scoring cheap — the agent assembles the final vector
/// per annotator with [`embed_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectFeatures {
    /// Highest class probability.
    pub max_prob: f64,
    /// Gap between the top two class probabilities.
    pub margin: f64,
    /// Entropy of the class distribution, normalized by `ln k`.
    pub norm_entropy: f64,
    /// Number of answers the object already has.
    pub vote_count: usize,
    /// Fraction of votes on the modal label (0 when unanswered).
    pub agreement: f64,
    /// 1 if the classifier argmax matches the vote argmax, 0 if not,
    /// 0.5 when there are no votes.
    pub model_agrees: f64,
    /// `class_probs.len().max(1)` — kept for the quality fallback.
    pub num_classes: usize,
}

impl ObjectFeatures {
    /// Compute the object-side features from the classifier distribution
    /// and the object's labelling history.
    pub fn compute(object: ObjectId, class_probs: &[f64], answers: &AnswerSet) -> Self {
        let k = class_probs.len().max(1);
        let votes = answers.answers_for(object);

        let max_prob = class_probs.iter().copied().fold(0.0f64, f64::max);
        let margin = prob::top_two_margin(class_probs);
        let norm_entropy = if k > 1 {
            prob::entropy(class_probs) / (k as f64).ln()
        } else {
            0.0
        };

        let (agreement, model_agrees) = if votes.is_empty() {
            (0.0, 0.5)
        } else {
            let mut counts = vec![0.0f64; k];
            for &(_, c) in votes {
                if c.index() < k {
                    counts[c.index()] += 1.0;
                }
            }
            let top = counts.iter().copied().fold(0.0f64, f64::max);
            let agreement = top / votes.len() as f64;
            let model_label = prob::argmax(class_probs).unwrap_or(0);
            let vote_label = prob::argmax(&counts).unwrap_or(0);
            (agreement, if model_label == vote_label { 1.0 } else { 0.0 })
        };

        Self {
            max_prob,
            margin,
            norm_entropy,
            vote_count: votes.len(),
            agreement,
            model_agrees,
            num_classes: k,
        }
    }
}

/// The object-dependent prefix of the embedding ([`OBJECT_PART_DIM`]
/// dims): classifier uncertainty, answer-history summaries, and the
/// already-labelled flag. Everything here is independent of which
/// annotator is being scored, so batched candidate scoring computes it
/// once per object.
pub fn embed_object_part(
    features: &ObjectFeatures,
    object: ObjectId,
    labelled: &LabelledSet,
    assignment_k: usize,
) -> Vec<f32> {
    let answer_count = features.vote_count as f64 / assignment_k.max(1) as f64;

    // Already-labelled flag (masked upstream, but the net sees it too).
    let object_labelled = if labelled.state(object).is_labelled() {
        1.0
    } else {
        0.0
    };

    vec![
        features.max_prob as f32,
        features.margin as f32,
        features.norm_entropy as f32,
        answer_count.min(2.0) as f32,
        features.agreement as f32,
        features.model_agrees as f32,
        object_labelled,
    ]
}

/// Number of leading dims of the annotator suffix that depend on the
/// *individual annotator* (quality, cost, kind, load); the remaining
/// `FEATURE_DIM - OBJECT_PART_DIM - ANNOTATOR_SPECIFIC_DIM` dims are
/// run-level and shared by every annotator in a refresh. The decide
/// path's activation cache keys on the annotator-specific block and
/// resumes the shared run-level block per refresh.
pub const ANNOTATOR_SPECIFIC_DIM: usize = 4;

/// The annotator-specific block of the embedding suffix
/// ([`ANNOTATOR_SPECIFIC_DIM`] dims): estimated quality, normalized
/// cost, expert flag, normalized load. `num_classes` feeds the uniform
/// quality fallback used when the snapshot has no estimate for the
/// annotator.
pub fn embed_annotator_specific(
    profile: &AnnotatorProfile,
    snapshot: &StateSnapshot,
    num_classes: usize,
) -> [f32; ANNOTATOR_SPECIFIC_DIM] {
    let a = profile.id.index();
    let quality = snapshot
        .qualities
        .get(a)
        .copied()
        .unwrap_or(1.0 / num_classes.max(1) as f64);
    let cost = profile.cost / snapshot.max_cost.max(1e-9);
    let is_expert = if profile.is_expert() { 1.0 } else { 0.0 };
    let load = snapshot.annotator_load.get(a).copied().unwrap_or(0) as f64;
    let load_norm = load / (1.0 + load);
    [quality as f32, cost as f32, is_expert, load_norm as f32]
}

/// The run-level block of the embedding suffix: global budget and
/// progress fractions plus classifier trust. Identical for every
/// annotator within one refresh.
pub fn embed_run_part(
    snapshot: &StateSnapshot,
) -> [f32; FEATURE_DIM - OBJECT_PART_DIM - ANNOTATOR_SPECIFIC_DIM] {
    [
        snapshot.budget_spent_fraction as f32,
        snapshot.labelled_fraction as f32,
        snapshot.enriched_fraction as f32,
        snapshot.phi_trust as f32,
    ]
}

/// The annotator- and run-level suffix of the embedding
/// (`FEATURE_DIM - OBJECT_PART_DIM` dims): the annotator's estimated
/// quality/cost/kind/load plus the global budget and progress fractions.
/// Independent of the object, so batched candidate scoring computes it
/// once per annotator. By construction exactly
/// `embed_annotator_specific ++ embed_run_part`.
pub fn embed_annotator_part(
    profile: &AnnotatorProfile,
    snapshot: &StateSnapshot,
    num_classes: usize,
) -> Vec<f32> {
    let mut v = embed_annotator_specific(profile, snapshot, num_classes).to_vec();
    v.extend_from_slice(&embed_run_part(snapshot));
    v
}

/// Assemble the full embedding from precomputed [`ObjectFeatures`] plus
/// the annotator- and run-level features. `embed` delegates here; callers
/// scoring many annotators against the same object should compute the
/// object features once and call this per annotator — or skip the
/// concatenation entirely and feed the two parts to the factored scorer
/// (`DqnAgent::q_values_outer`). By construction the result is exactly
/// `embed_object_part ++ embed_annotator_part`.
pub fn embed_with(
    features: &ObjectFeatures,
    object: ObjectId,
    profile: &AnnotatorProfile,
    labelled: &LabelledSet,
    snapshot: &StateSnapshot,
    assignment_k: usize,
) -> Vec<f32> {
    let mut v = embed_object_part(features, object, labelled, assignment_k);
    v.extend_from_slice(&embed_annotator_part(
        profile,
        snapshot,
        features.num_classes,
    ));
    debug_assert_eq!(v.len(), FEATURE_DIM);
    v
}

/// Embed a candidate (object, annotator) action.
///
/// `class_probs` is the classifier's current distribution for the object
/// (uniform if the classifier is untrained); `answers` supplies the
/// object's labelling history.
#[allow(clippy::too_many_arguments)]
pub fn embed(
    object: ObjectId,
    profile: &AnnotatorProfile,
    class_probs: &[f64],
    answers: &AnswerSet,
    labelled: &LabelledSet,
    snapshot: &StateSnapshot,
    assignment_k: usize,
) -> Vec<f32> {
    embed_with(
        &ObjectFeatures::compute(object, class_probs, answers),
        object,
        profile,
        labelled,
        snapshot,
        assignment_k,
    )
}

#[derive(Debug, Clone)]
struct CacheEntry {
    /// Classifier generation the probabilities were computed under.
    generation: u64,
    /// Answer count the vote features were computed from
    /// (`usize::MAX` = features pending recompute).
    answers_seen: usize,
    probs: Vec<f64>,
    features: ObjectFeatures,
}

/// Per-object cache of classifier distributions and [`ObjectFeatures`].
///
/// [`refresh`](FeatureCache::refresh) recomputes class probabilities only
/// for objects whose entry predates the classifier's current
/// [`generation`](SoftmaxClassifier::generation) — in **one batched**
/// `predict_proba` forward over exactly those rows — and vote-derived
/// features only for objects whose answer set changed since the last
/// refresh. Because the network forward is row-independent, cached and
/// batch-recomputed probabilities are bit-identical to per-object
/// `predict_proba_one` calls, so caching cannot perturb a run.
#[derive(Debug, Clone)]
pub struct FeatureCache {
    entries: Vec<Option<CacheEntry>>,
    num_classes: usize,
    recomputed: usize,
    reused: usize,
}

impl FeatureCache {
    /// An empty cache for `num_objects` objects and `num_classes` classes.
    pub fn new(num_objects: usize, num_classes: usize) -> Self {
        Self {
            entries: vec![None; num_objects],
            num_classes: num_classes.max(1),
            recomputed: 0,
            reused: 0,
        }
    }

    /// Bring the listed objects up to date against the classifier and the
    /// answer set (see the type docs for the invalidation rules). The
    /// untrained classifier yields the uniform distribution, matching the
    /// workflow's untrained fallback.
    pub fn refresh(
        &mut self,
        dataset: &Dataset,
        classifier: &SoftmaxClassifier,
        answers: &AnswerSet,
        objects: &[ObjectId],
    ) {
        let generation = classifier.generation();
        let prob_stale: Vec<ObjectId> = objects
            .iter()
            .copied()
            .filter(
                |obj| !matches!(&self.entries[obj.index()], Some(e) if e.generation == generation),
            )
            .collect();
        self.recomputed += prob_stale.len();
        self.reused += objects.len() - prob_stale.len();

        if !prob_stale.is_empty() {
            if classifier.is_trained() {
                let mut x = Matrix::zeros(prob_stale.len(), dataset.dim());
                for (r, &obj) in prob_stale.iter().enumerate() {
                    x.row_mut(r).copy_from_slice(dataset.features(obj.index()));
                }
                let p = classifier.predict_proba(&x);
                for (r, &obj) in prob_stale.iter().enumerate() {
                    let probs = p.row(r).iter().map(|&v| v as f64).collect();
                    self.store_probs(obj, generation, probs);
                }
            } else {
                let uniform = vec![1.0 / self.num_classes as f64; self.num_classes];
                for &obj in &prob_stale {
                    self.store_probs(obj, generation, uniform.clone());
                }
            }
        }

        for &obj in objects {
            let entry = self.entries[obj.index()]
                .as_mut()
                .expect("entry created above");
            let seen = answers.answers_for(obj).len();
            if entry.answers_seen != seen {
                entry.features = ObjectFeatures::compute(obj, &entry.probs, answers);
                entry.answers_seen = seen;
            }
        }
    }

    /// Cached class distribution. Panics if the object was never refreshed.
    pub fn probs(&self, object: ObjectId) -> &[f64] {
        &self.entries[object.index()]
            .as_ref()
            .expect("object not refreshed")
            .probs
    }

    /// Cached object-side features. Panics if the object was never
    /// refreshed.
    pub fn features(&self, object: ObjectId) -> &ObjectFeatures {
        &self.entries[object.index()]
            .as_ref()
            .expect("object not refreshed")
            .features
    }

    /// Objects whose class probabilities were recomputed across all
    /// refreshes (cache misses).
    pub fn recomputed(&self) -> usize {
        self.recomputed
    }

    /// Objects whose cached probabilities were reused across all refreshes
    /// (cache hits).
    pub fn reused(&self) -> usize {
        self.reused
    }

    fn store_probs(&mut self, object: ObjectId, generation: u64, probs: Vec<f64>) {
        let features = ObjectFeatures {
            max_prob: 0.0,
            margin: 0.0,
            norm_entropy: 0.0,
            vote_count: 0,
            agreement: 0.0,
            model_agrees: 0.0,
            num_classes: self.num_classes,
        };
        self.entries[object.index()] = Some(CacheEntry {
            generation,
            answers_seen: usize::MAX, // features recomputed by refresh()
            probs,
            features,
        });
    }
}

/// Pack an (object, annotator) pair into the `u64` key the UCB explorer
/// tracks.
pub fn action_key(object: ObjectId, annotator: AnnotatorId) -> u64 {
    ((object.index() as u64) << 24) | (annotator.index() as u64 & 0xFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::{AnnotatorKind, Answer, ClassId, LabelState};

    fn snapshot() -> StateSnapshot {
        StateSnapshot {
            qualities: vec![0.9, 0.6],
            annotator_load: vec![3, 0],
            budget_spent_fraction: 0.25,
            labelled_fraction: 0.5,
            enriched_fraction: 0.1,
            max_cost: 10.0,
            phi_trust: 0.5,
        }
    }

    fn profile(id: usize, expert: bool) -> AnnotatorProfile {
        AnnotatorProfile::new(
            AnnotatorId(id),
            if expert {
                AnnotatorKind::Expert
            } else {
                AnnotatorKind::Worker
            },
            if expert { 10.0 } else { 1.0 },
        )
        .unwrap()
    }

    #[test]
    fn embedding_has_fixed_width_and_is_finite() {
        let answers = AnswerSet::new(4);
        let labelled = LabelledSet::new(4);
        let v = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.7, 0.3],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert_eq!(v.len(), FEATURE_DIM);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn uncertainty_features_reflect_probs() {
        let answers = AnswerSet::new(1);
        let labelled = LabelledSet::new(1);
        let certain = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.99, 0.01],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        let uncertain = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.5, 0.5],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert!(certain[0] > uncertain[0]); // max prob
        assert!(certain[1] > uncertain[1]); // margin
        assert!(certain[2] < uncertain[2]); // entropy
    }

    #[test]
    fn answer_history_features() {
        let mut answers = AnswerSet::new(2);
        answers
            .record(Answer {
                object: ObjectId(0),
                annotator: AnnotatorId(0),
                label: ClassId(0),
            })
            .unwrap();
        answers
            .record(Answer {
                object: ObjectId(0),
                annotator: AnnotatorId(1),
                label: ClassId(0),
            })
            .unwrap();
        let labelled = LabelledSet::new(2);
        let v = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.8, 0.2],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert!((v[3] - 2.0 / 3.0).abs() < 1e-6); // 2 answers / k=3
        assert!((v[4] - 1.0).abs() < 1e-6); // unanimous agreement
        assert!((v[5] - 1.0).abs() < 1e-6); // model agrees with votes
                                            // No answers: neutral values.
        let v = embed(
            ObjectId(1),
            &profile(0, false),
            &[0.8, 0.2],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert_eq!(v[3], 0.0);
        assert_eq!(v[4], 0.0);
        assert_eq!(v[5], 0.5);
    }

    #[test]
    fn annotator_features_distinguish_expert() {
        let answers = AnswerSet::new(1);
        let labelled = LabelledSet::new(1);
        let w = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.5, 0.5],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        let e = embed(
            ObjectId(0),
            &profile(1, true),
            &[0.5, 0.5],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert!((w[7] - 0.9).abs() < 1e-6); // quality from snapshot
        assert!((e[7] - 0.6).abs() < 1e-6);
        assert!(w[8] < e[8]); // normalized cost
        assert_eq!(w[9], 0.0);
        assert_eq!(e[9], 1.0);
        assert!(w[10] > e[10]); // load
    }

    #[test]
    fn labelled_flag_is_set() {
        let answers = AnswerSet::new(1);
        let mut labelled = LabelledSet::new(1);
        labelled
            .set(ObjectId(0), LabelState::Inferred(ClassId(0)))
            .unwrap();
        let v = embed(
            ObjectId(0),
            &profile(0, false),
            &[0.5, 0.5],
            &answers,
            &labelled,
            &snapshot(),
            3,
        );
        assert_eq!(v[6], 1.0);
    }

    #[test]
    fn embedding_splits_into_object_and_annotator_parts() {
        let mut answers = AnswerSet::new(2);
        answers
            .record(Answer {
                object: ObjectId(0),
                annotator: AnnotatorId(1),
                label: ClassId(1),
            })
            .unwrap();
        let labelled = LabelledSet::new(2);
        let snap = snapshot();
        let probs = [0.3, 0.7];
        let of = ObjectFeatures::compute(ObjectId(0), &probs, &answers);
        let obj_part = embed_object_part(&of, ObjectId(0), &labelled, 3);
        assert_eq!(obj_part.len(), OBJECT_PART_DIM);
        for expert in [false, true] {
            let p = profile(expert as usize, expert);
            let ann_part = embed_annotator_part(&p, &snap, of.num_classes);
            assert_eq!(ann_part.len(), FEATURE_DIM - OBJECT_PART_DIM);
            // The full embedding is exactly the concatenation: the
            // factored Q-scoring path relies on this layout.
            let mut assembled = obj_part.clone();
            assembled.extend_from_slice(&ann_part);
            let full = embed(ObjectId(0), &p, &probs, &answers, &labelled, &snap, 3);
            assert_eq!(assembled, full);
        }
    }

    #[test]
    fn annotator_part_splits_into_specific_and_run_blocks() {
        let snap = snapshot();
        for expert in [false, true] {
            let p = profile(expert as usize, expert);
            let full = embed_annotator_part(&p, &snap, 2);
            let mut assembled = embed_annotator_specific(&p, &snap, 2).to_vec();
            assembled.extend_from_slice(&embed_run_part(&snap));
            assert_eq!(full, assembled);
            assert_eq!(
                assembled.len(),
                FEATURE_DIM - OBJECT_PART_DIM,
                "blocks must tile the suffix exactly"
            );
        }
    }

    #[test]
    fn action_keys_are_unique_for_realistic_sizes() {
        let mut seen = std::collections::HashSet::new();
        for o in 0..100 {
            for a in 0..20 {
                assert!(seen.insert(action_key(ObjectId(o), AnnotatorId(a))));
            }
        }
    }

    #[test]
    fn embed_with_matches_embed() {
        let mut answers = AnswerSet::new(3);
        answers
            .record(Answer {
                object: ObjectId(1),
                annotator: AnnotatorId(0),
                label: ClassId(1),
            })
            .unwrap();
        answers
            .record(Answer {
                object: ObjectId(1),
                annotator: AnnotatorId(1),
                label: ClassId(0),
            })
            .unwrap();
        let mut labelled = LabelledSet::new(3);
        labelled
            .set(ObjectId(2), LabelState::Inferred(ClassId(0)))
            .unwrap();
        let snap = snapshot();
        for (obj, probs) in [
            (ObjectId(0), vec![0.7, 0.3]),
            (ObjectId(1), vec![0.2, 0.8]),
            (ObjectId(2), vec![0.5, 0.5]),
        ] {
            let of = ObjectFeatures::compute(obj, &probs, &answers);
            for expert in [false, true] {
                let direct = embed(
                    obj,
                    &profile(expert as usize, expert),
                    &probs,
                    &answers,
                    &labelled,
                    &snap,
                    3,
                );
                let assembled = embed_with(
                    &of,
                    obj,
                    &profile(expert as usize, expert),
                    &labelled,
                    &snap,
                    3,
                );
                assert_eq!(direct, assembled);
            }
        }
    }

    mod cache {
        use super::*;
        use crowdrl_nn::{ClassifierConfig, SoftmaxClassifier};
        use crowdrl_types::rng::seeded;
        use crowdrl_types::Dataset;

        fn dataset(n: usize) -> Dataset {
            let features: Vec<f32> = (0..n * 2)
                .map(|i| ((i * 37 % 19) as f32 - 9.0) / 4.0)
                .collect();
            let truth: Vec<ClassId> = (0..n).map(|i| ClassId(i % 2)).collect();
            Dataset::new("cache-test", features, 2, truth, 2).unwrap()
        }

        fn trained_classifier(dataset: &Dataset, seed: u64) -> SoftmaxClassifier {
            let mut rng = seeded(seed);
            let mut clf =
                SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
            let x = Matrix::from_vec(dataset.len(), 2, dataset.feature_buffer().to_vec());
            let truth: Vec<ClassId> = (0..dataset.len()).map(|i| dataset.truth(i)).collect();
            clf.fit_hard(&x, &truth, &mut rng).unwrap();
            clf
        }

        fn all_objects(n: usize) -> Vec<ObjectId> {
            (0..n).map(ObjectId).collect()
        }

        #[test]
        fn cached_probs_match_predict_proba_one_bitwise() {
            let ds = dataset(12);
            let clf = trained_classifier(&ds, 1);
            let answers = AnswerSet::new(ds.len());
            let mut cache = FeatureCache::new(ds.len(), 2);
            cache.refresh(&ds, &clf, &answers, &all_objects(ds.len()));
            for i in 0..ds.len() {
                let direct = clf.predict_proba_one(ds.features(i));
                let cached = cache.probs(ObjectId(i));
                assert_eq!(direct.len(), cached.len());
                for (d, c) in direct.iter().zip(cached) {
                    assert_eq!(d.to_bits(), c.to_bits(), "object {i}");
                }
                assert_eq!(
                    *cache.features(ObjectId(i)),
                    ObjectFeatures::compute(ObjectId(i), cached, &answers)
                );
            }
        }

        #[test]
        fn untrained_classifier_yields_uniform() {
            let ds = dataset(4);
            let mut rng = seeded(2);
            let clf = SoftmaxClassifier::new(ClassifierConfig::default(), 2, 2, &mut rng).unwrap();
            let answers = AnswerSet::new(ds.len());
            let mut cache = FeatureCache::new(ds.len(), 2);
            cache.refresh(&ds, &clf, &answers, &all_objects(ds.len()));
            assert_eq!(cache.probs(ObjectId(0)), &[0.5, 0.5]);
        }

        #[test]
        fn reuses_until_answers_or_classifier_change() {
            let ds = dataset(8);
            let mut clf = trained_classifier(&ds, 3);
            let mut answers = AnswerSet::new(ds.len());
            let mut cache = FeatureCache::new(ds.len(), 2);
            let objs = all_objects(ds.len());

            cache.refresh(&ds, &clf, &answers, &objs);
            assert_eq!(cache.recomputed(), 8);
            assert_eq!(cache.reused(), 0);

            // Unchanged state: pure hits.
            cache.refresh(&ds, &clf, &answers, &objs);
            assert_eq!(cache.recomputed(), 8);
            assert_eq!(cache.reused(), 8);

            // A new answer invalidates vote features but not probabilities.
            answers
                .record(Answer {
                    object: ObjectId(3),
                    annotator: AnnotatorId(0),
                    label: ClassId(1),
                })
                .unwrap();
            cache.refresh(&ds, &clf, &answers, &objs);
            assert_eq!(cache.recomputed(), 8, "probs must be reused");
            assert_eq!(cache.features(ObjectId(3)).vote_count, 1);

            // Retraining invalidates every probability.
            let x = Matrix::from_vec(ds.len(), 2, ds.feature_buffer().to_vec());
            let truth: Vec<ClassId> = (0..ds.len()).map(|i| ds.truth(i)).collect();
            let mut rng = seeded(4);
            clf.fit_hard(&x, &truth, &mut rng).unwrap();
            cache.refresh(&ds, &clf, &answers, &objs);
            assert_eq!(cache.recomputed(), 16);
            for i in 0..ds.len() {
                let direct = clf.predict_proba_one(ds.features(i));
                for (d, c) in direct.iter().zip(cache.probs(ObjectId(i))) {
                    assert_eq!(d.to_bits(), c.to_bits());
                }
            }
        }

        #[test]
        fn partial_refresh_only_touches_listed_objects() {
            let ds = dataset(6);
            let clf = trained_classifier(&ds, 5);
            let answers = AnswerSet::new(ds.len());
            let mut cache = FeatureCache::new(ds.len(), 2);
            cache.refresh(&ds, &clf, &answers, &[ObjectId(1), ObjectId(4)]);
            assert_eq!(cache.recomputed(), 2);
            assert_eq!(cache.probs(ObjectId(1)).len(), 2);
        }
    }
}
