//! The CrowdRL labelling workflow (Algorithm 1).
//!
//! ```text
//! 1  initialize state; sample α·|O| objects, ask annotators to label them
//! 2  while some objects are unlabelled and budget remains:
//! 3      select a batch of objects and assign annotators   (Agent, §IV)
//! 4      purchase the answers on the platform
//! 5      infer true labels jointly with the classifier     (Env, §V)
//! 6      retrain φ; enrich the labelled set where φ is confident
//! 7      compute r(t), store transitions, train the DQN
//! 8  label any remainder with φ
//! ```
//!
//! Each step is delegated: selection to [`SelectionAgent`], inference to
//! `crowdrl-inference`, enrichment to [`enrichment`](crate::enrichment),
//! reward to [`reward`](crate::reward).

use crate::agent::SelectionAgent;
use crate::classifier_util::retrain_on_labelled;
use crate::config::{CrowdRlConfig, InferenceModel};
use crate::enrichment::{enrich, fallback_label_all, refresh_enriched};
use crate::features::{embed_with, FeatureCache, StateSnapshot};
use crate::infer_step::{apply_inference, make_engine, run_inference_step};
use crate::outcome::{IterationStats, LabellingOutcome};
use crate::reward::{iteration_reward, RewardInputs};
use crowdrl_nn::SoftmaxClassifier;
use crowdrl_obs as obs;
use crowdrl_sim::{AnnotatorPool, Platform};
use crowdrl_types::rng::sample_indices;
use crowdrl_types::{AnswerSet, Budget, Dataset, LabelState, LabelledSet, ObjectId, Result};
use rand::Rng;

/// The CrowdRL framework, configured and ready to label datasets.
#[derive(Debug, Clone)]
pub struct CrowdRl {
    config: CrowdRlConfig,
}

impl CrowdRl {
    /// Wrap a validated configuration.
    pub fn new(config: CrowdRlConfig) -> Self {
        Self { config }
    }

    /// The configuration (read-only).
    pub fn config(&self) -> &CrowdRlConfig {
        &self.config
    }

    /// Label `dataset` using `pool` under the configured budget.
    pub fn run<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        rng: &mut R,
    ) -> Result<LabellingOutcome> {
        self.run_detailed(dataset, pool, rng)
            .map(|(outcome, _)| outcome)
    }

    /// Like [`CrowdRl::run`], additionally returning the trained Q-network
    /// parameters — the artifact the paper's offline "cross-training"
    /// methodology transfers between datasets (§VI-A.4): train on the other
    /// datasets, then seed a fresh run via
    /// [`CrowdRlConfigBuilder::pretrained_dqn`](crate::config::CrowdRlConfigBuilder::pretrained_dqn).
    pub fn run_detailed<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        pool: &AnnotatorPool,
        rng: &mut R,
    ) -> Result<(LabellingOutcome, Vec<f32>)> {
        self.config.validate()?;
        obs::init_from_env();
        let run_span = obs::span("workflow.run");
        let n = dataset.len();
        let k_classes = dataset.num_classes();
        let mut platform = Platform::new(dataset, pool, Budget::new(self.config.budget)?);
        let mut classifier = SoftmaxClassifier::new(
            self.config.classifier.clone(),
            dataset.dim(),
            k_classes,
            rng,
        )?;
        let mut agent = SelectionAgent::new(
            self.config.dqn.clone(),
            &self.config.exploration,
            self.config.decide,
            self.config.pretrained_dqn.as_deref(),
            rng,
        )?;
        // The persistent inference engine: carries EM posteriors,
        // confusions and the gathered feature matrix across this run's
        // repeated inference calls (None = stateless cold inference).
        let mut engine = make_engine(&self.config.inference, &self.config.engine);
        let mut labelled = LabelledSet::new(n);
        let mut feature_cache = FeatureCache::new(n, k_classes);
        let mut qualities = vec![0.7f64; pool.len()];
        let max_cost = pool
            .profiles()
            .iter()
            .map(|p| p.cost)
            .fold(0.0f64, f64::max);

        // --- Initial sampling: α·|O| objects, k annotators each. ---
        // The initial panel is stratified: one random expert (when the pool
        // has any) plus random workers. Expert-anchored initial labels give
        // the joint model a confident core to estimate worker qualities and
        // the classifier against; an all-worker start can leave every
        // posterior too ambiguous to bootstrap from.
        let initial_span = obs::span("workflow.initial");
        let initial = ((self.config.initial_ratio * n as f64).round() as usize).min(n);
        let initial_objects = sample_indices(rng, n, initial);
        let experts: Vec<_> = pool.profiles().iter().filter(|p| p.is_expert()).collect();
        let workers: Vec<_> = pool.profiles().iter().filter(|p| !p.is_expert()).collect();
        for &obj in &initial_objects {
            let mut annotators = Vec::with_capacity(self.config.assignment_k);
            if !experts.is_empty() {
                annotators.push(experts[rng.random_range(0..experts.len())].id);
            }
            let tier = if workers.is_empty() {
                &experts
            } else {
                &workers
            };
            let fill = sample_indices(
                rng,
                tier.len(),
                self.config.assignment_k.saturating_sub(annotators.len()),
            );
            annotators.extend(fill.into_iter().map(|i| tier[i].id));
            platform.ask_many(ObjectId(obj), &annotators, rng);
        }
        if platform.answers().total_answers() > 0 {
            let result = run_inference_step(
                &mut engine,
                &self.config.inference,
                dataset,
                platform.answers(),
                pool,
                &mut classifier,
                rng,
            )?;
            apply_inference(
                &result,
                &mut labelled,
                &mut qualities,
                self.config.label_confidence,
            )?;
            if !matches!(self.config.inference, InferenceModel::Joint(_)) {
                retrain_on_labelled(&mut classifier, dataset, &labelled, rng)?;
            }
            // No enrichment before the loop: the classifier has not yet
            // been validated against any out-of-sample human labels.
        }
        drop(initial_span);

        // Per-object posterior confidence from the previous inference pass
        // (None until the object has answers) — the baseline for the
        // reward's confidence-gain term.
        let mut prev_confidence: Vec<Option<f64>> = vec![None; n];

        // Budget pacing: fix this run's per-iteration allowance once, as
        // the post-initial budget spread evenly over the planned number of
        // batches. Recomputing it from the *current* unlabelled count every
        // iteration spirals downward (hard objects stay unlabelled, the
        // divisor stays high while the numerator shrinks, and the tail of
        // the run buys useless one-answer panels).
        let planned_iters = labelled
            .unlabelled_count()
            .div_ceil(self.config.batch_per_iter);
        let fixed_allowance = (platform.budget().remaining() / planned_iters.max(1) as f64)
            .max(pool.min_cost() * self.config.assignment_k as f64);

        // --- Main loop. ---
        let mut trace: Vec<IterationStats> = Vec::new();
        // Running out-of-sample agreement between the classifier and the
        // human-inferred labels. Decayed counts give a lower confidence
        // bound: enrichment opens only when the classifier is *provably*
        // good, not merely lucky on a few objects.
        let mut trust_agree = 0.0f64;
        let mut trust_scored = 0.0f64;
        let mut phi_trust = 0.0f64;
        for t in 0..self.config.max_iters {
            if labelled.all_labelled() || platform.exhausted() {
                break;
            }
            let iter_span = obs::span("workflow.iter");
            let unlabelled_before = labelled.unlabelled_count();
            let spent_before = platform.budget().spent();

            // (a) Unified task selection + assignment, paced so the budget
            // lasts across the remaining unlabelled objects: this
            // iteration's allowance is the remaining budget divided by the
            // remaining iterations at the configured batch size. Pacing is
            // what lets a mixed-cost pool spread experts over the run
            // instead of front-loading them.
            let select_span = obs::span("workflow.select");
            let candidates = self.sample_candidates(
                dataset,
                &labelled,
                &classifier,
                platform.answers(),
                &mut feature_cache,
                rng,
            );
            let snapshot = self.snapshot(&platform, &labelled, &qualities, max_cost, n, phi_trust);
            let allowance = fixed_allowance.min(platform.budget().remaining());
            let assignments = agent.select(
                &candidates,
                pool.profiles(),
                None,
                platform.answers(),
                &labelled,
                &snapshot,
                allowance,
                self.config.assignment_k,
                self.config.batch_per_iter,
                self.config.ablation,
                rng,
            );
            drop(select_span);
            if assignments.is_empty() {
                break;
            }

            // (b) Purchase answers. Record, per selected object, the
            // classifier's *pre-answer* prediction (for the trust estimate)
            // and our best pre-answer confidence (for the reward's gain
            // term: the previous posterior if the object had answers, the
            // classifier's probability otherwise).
            let purchase_span = obs::span("workflow.purchase");
            let mut answers_bought = 0;
            let mut phi_guesses: Vec<(ObjectId, usize)> = Vec::new();
            let mut conf_before: std::collections::HashMap<ObjectId, f64> =
                std::collections::HashMap::new();
            // Index the candidate distributions once: the linear scan per
            // assignment was O(batch x candidate_cap) every iteration.
            let candidate_probs: std::collections::HashMap<ObjectId, &Vec<f64>> =
                candidates.iter().map(|(o, p)| (*o, p)).collect();
            for assignment in &assignments {
                if let Some(probs) = candidate_probs.get(&assignment.object) {
                    if let Some(guess) = crowdrl_types::prob::argmax(probs) {
                        if classifier.is_trained() {
                            phi_guesses.push((assignment.object, guess));
                        }
                    }
                    let prior = prev_confidence
                        .get(assignment.object.index())
                        .copied()
                        .flatten()
                        .unwrap_or_else(|| probs.iter().copied().fold(0.0f64, f64::max));
                    conf_before.insert(assignment.object, prior);
                }
                answers_bought += platform
                    .ask_many(assignment.object, &assignment.annotators, rng)
                    .len();
            }
            let spend = platform.budget().spent() - spent_before;
            drop(purchase_span);

            // (c) Truth inference over all answers so far.
            let inference_span = obs::span("workflow.inference");
            let result = run_inference_step(
                &mut engine,
                &self.config.inference,
                dataset,
                platform.answers(),
                pool,
                &mut classifier,
                rng,
            )?;
            apply_inference(
                &result,
                &mut labelled,
                &mut qualities,
                self.config.label_confidence,
            )?;

            drop(inference_span);

            for obj in result.inferred_objects() {
                prev_confidence[obj.index()] = result.confidence(obj);
            }

            // Trust update: how often did the classifier agree with the
            // labels humans just produced? Only *confident* inferred labels
            // are scored — comparing against a noisy worker-only majority
            // would make a perfect classifier look untrustworthy. (Out of
            // sample: the prediction predates the answers.)
            let mut agree = 0usize;
            let mut scored = 0usize;
            for (obj, guess) in &phi_guesses {
                let confident = result.confidence(*obj).unwrap_or(0.0) >= 0.85;
                if !confident {
                    continue;
                }
                if let Some(label) = result.label(*obj) {
                    scored += 1;
                    if label.index() == *guess {
                        agree += 1;
                    }
                }
            }
            trust_agree = 0.97 * trust_agree + agree as f64;
            trust_scored = 0.97 * trust_scored + scored as f64;
            phi_trust = if trust_scored >= 10.0 {
                let p = (trust_agree / trust_scored).clamp(0.0, 1.0);
                p - (p * (1.0 - p) / trust_scored).sqrt()
            } else {
                0.0
            };

            // (d) Retrain (non-joint models) and enrich.
            let enrich_span = obs::span("workflow.enrich");
            if !matches!(self.config.inference, InferenceModel::Joint(_)) {
                retrain_on_labelled(&mut classifier, dataset, &labelled, rng)?;
            }
            let enriched =
                if self.warmup_done(&labelled) && phi_trust >= self.config.enrichment_trust {
                    enrich(
                        dataset,
                        &classifier,
                        &mut labelled,
                        self.config.enrichment_margin,
                        self.config.enrichment_cap_per_iter,
                    )?
                    .len()
                } else {
                    0
                };
            drop(enrich_span);
            if enriched > 0 && obs::enabled() {
                let budget_fraction = platform.budget().fraction_spent();
                obs::annotate_kv(
                    "workflow.enrichment",
                    &format!("enrichment added {enriched} labels at budget {budget_fraction:.2}"),
                    &[
                        ("added", enriched as f64),
                        ("budget_fraction", budget_fraction),
                        ("iteration", t as f64),
                    ],
                );
            }

            // (e) Reward, replay, learning. Each assignment is credited
            // with its *own* object's confidence **gain** (posterior
            // confidence after the new answers minus the best estimate
            // before them) and its own panel cost; the enrichment term is
            // shared (it is a global consequence of the iteration). Using
            // the gain rather than the absolute confidence means answering
            // an object that was already easy earns nothing — the advantage
            // form of the paper's long-term-value objective.
            let reward_span = obs::span("workflow.reward_train");
            let k = self.config.assignment_k.max(1) as f64;
            let rewards: Vec<f64> = assignments
                .iter()
                .map(|a| {
                    let before = conf_before
                        .get(&a.object)
                        .copied()
                        .unwrap_or(1.0 / k_classes as f64);
                    let after = result.confidence(a.object).unwrap_or(0.0);
                    let confidence = (after - before).max(0.0);
                    let panel_cost: f64 =
                        a.annotators.iter().map(|&id| pool.profile(id).cost).sum();
                    iteration_reward(
                        self.config.lambda,
                        self.config.mu,
                        self.config.eta,
                        RewardInputs {
                            enriched,
                            unlabelled_before,
                            spend: panel_cost,
                            max_iter_spend: k * max_cost,
                            mean_confidence: confidence,
                        },
                    )
                })
                .collect();
            let reward = if rewards.is_empty() {
                0.0
            } else {
                rewards.iter().sum::<f64>() / rewards.len() as f64
            };
            let terminal = labelled.all_labelled() || platform.exhausted();
            let next_candidates = if terminal {
                Vec::new()
            } else {
                self.bootstrap_embeddings(
                    dataset,
                    &platform,
                    pool,
                    &labelled,
                    &classifier,
                    &mut feature_cache,
                    &qualities,
                    max_cost,
                    rng,
                )
            };
            agent.remember(&assignments, &rewards, &next_candidates, terminal);
            let td_loss = agent.train(self.config.train_steps_per_iter, rng);
            drop(reward_span);

            trace.push(IterationStats {
                iteration: t,
                enriched,
                selected: assignments.len(),
                answers: answers_bought,
                spend,
                reward,
                labelled_total: labelled.labelled_count(),
                td_loss,
            });

            if obs::enabled() {
                // Semantic curves, keyed by the iteration clock (never the
                // wall clock): budget burn-down, labelling progress, and
                // the classifier's agreement with the human-inferred
                // labels. All pure reads — recording cannot perturb the
                // run (pinned by tests/determinism.rs).
                let step = t as f64;
                obs::gauge_step(
                    "run.budget_spent_fraction",
                    step,
                    platform.budget().fraction_spent(),
                );
                obs::gauge_step(
                    "run.labelled_fraction",
                    step,
                    labelled.labelled_count() as f64 / n.max(1) as f64,
                );
                obs::gauge_step(
                    "run.enriched_fraction",
                    step,
                    labelled.enriched_count() as f64 / n.max(1) as f64,
                );
                obs::gauge_step("run.phi_trust", step, phi_trust);
                obs::gauge_step("run.reward", step, reward);
                if let Some(l) = td_loss {
                    obs::gauge_step("run.td_loss", step, l as f64);
                }
                if let Some(acc) = classifier_accuracy_on_labelled(dataset, &classifier, &labelled)
                {
                    obs::gauge_step("run.acc_on_labelled", step, acc);
                }
            }
            drop(iter_span);
        }

        // --- Residual answered-but-uncertain objects take their MAP label:
        // the answers were paid for and the posterior, however ambiguous,
        // beats an untrained guess. ---
        let finalize_span = obs::span("workflow.finalize");
        if !labelled.all_labelled() {
            // With a warm engine this reuses the last loop iteration's
            // result when no answers arrived since (the common case), so
            // finalize costs one clone instead of one full EM run.
            let final_result = run_inference_step(
                &mut engine,
                &self.config.inference,
                dataset,
                platform.answers(),
                pool,
                &mut classifier,
                rng,
            )?;
            for obj in final_result.inferred_objects() {
                if !labelled.state(obj).is_labelled() {
                    if let Some(label) = final_result.label(obj) {
                        labelled.set(obj, LabelState::Inferred(label))?;
                    }
                }
            }
        }

        // --- Fallback: label the remainder with the classifier. ---
        let mut fallback_count = 0;
        if self.config.final_fallback && !labelled.all_labelled() {
            if !classifier.is_trained() {
                retrain_on_labelled(&mut classifier, dataset, &labelled, rng)?;
            }
            fallback_count = fallback_label_all(dataset, &classifier, &mut labelled)?;
        }

        // --- Classifier-owned labels are re-predicted with the *final*
        // classifier: enrichment decisions taken mid-run by a weaker
        // classifier otherwise lock in its early mistakes. ---
        refresh_enriched(dataset, &classifier, &mut labelled)?;
        drop(finalize_span);
        drop(run_span);
        // Flush aggregate snapshots so a `CROWDRL_TRACE`-driven process
        // that exits right after the run still leaves a complete trace.
        obs::checkpoint();

        let iterations = trace.len();
        let label_states: Vec<LabelState> = (0..n).map(|i| labelled.state(ObjectId(i))).collect();
        let enriched_count = label_states
            .iter()
            .filter(|s| matches!(s, LabelState::Enriched(_)))
            .count();
        let outcome = LabellingOutcome {
            labels: labelled.to_labels(),
            label_states,
            budget_spent: platform.budget().spent(),
            iterations,
            total_answers: platform.answers().total_answers(),
            enriched_count,
            fallback_count,
            trace,
        };
        Ok((outcome, agent.dqn().export_params()))
    }

    /// Enrichment warmup check: enough objects must carry *human-inferred*
    /// labels before the classifier is allowed to auto-label.
    fn warmup_done(&self, labelled: &LabelledSet) -> bool {
        let inferred = labelled.labelled_count() - labelled.enriched_count();
        inferred as f64 >= self.config.enrichment_warmup * labelled.len() as f64
    }

    /// Sample candidate objects and look up their class distributions
    /// through the feature cache (one batched forward over the objects
    /// the classifier's current generation has not scored yet).
    fn sample_candidates<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        labelled: &LabelledSet,
        classifier: &SoftmaxClassifier,
        answers: &AnswerSet,
        cache: &mut FeatureCache,
        rng: &mut R,
    ) -> Vec<(ObjectId, Vec<f64>)> {
        let unlabelled: Vec<ObjectId> = labelled.unlabelled_objects().collect();
        let chosen = if unlabelled.len() <= self.config.candidate_cap {
            unlabelled
        } else {
            sample_indices(rng, unlabelled.len(), self.config.candidate_cap)
                .into_iter()
                .map(|i| unlabelled[i])
                .collect()
        };
        cache.refresh(dataset, classifier, answers, &chosen);
        chosen
            .into_iter()
            .map(|obj| (obj, cache.probs(obj).to_vec()))
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn snapshot(
        &self,
        platform: &Platform<'_>,
        labelled: &LabelledSet,
        qualities: &[f64],
        max_cost: f64,
        n: usize,
        phi_trust: f64,
    ) -> StateSnapshot {
        StateSnapshot {
            qualities: qualities.to_vec(),
            annotator_load: platform.answers().answer_counts(qualities.len()),
            budget_spent_fraction: platform.budget().fraction_spent(),
            labelled_fraction: labelled.labelled_count() as f64 / n.max(1) as f64,
            enriched_fraction: labelled.enriched_count() as f64 / n.max(1) as f64,
            max_cost,
            phi_trust,
        }
    }

    /// Embeddings of a sample of feasible successor actions, for TD
    /// bootstrapping.
    #[allow(clippy::too_many_arguments)]
    fn bootstrap_embeddings<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        platform: &Platform<'_>,
        pool: &AnnotatorPool,
        labelled: &LabelledSet,
        classifier: &SoftmaxClassifier,
        cache: &mut FeatureCache,
        qualities: &[f64],
        max_cost: f64,
        rng: &mut R,
    ) -> Vec<Vec<f32>> {
        let snapshot = self.snapshot(platform, labelled, qualities, max_cost, dataset.len(), 0.0);
        let unlabelled: Vec<ObjectId> = labelled.unlabelled_objects().collect();
        if unlabelled.is_empty() {
            return Vec::new();
        }
        let sampled: Vec<ObjectId> = sample_indices(
            rng,
            unlabelled.len(),
            self.config.bootstrap_candidates.max(1),
        )
        .into_iter()
        .map(|i| unlabelled[i])
        .collect();
        cache.refresh(dataset, classifier, platform.answers(), &sampled);
        let mut out = Vec::new();
        for obj in sampled {
            // One random annotator per sampled object keeps this cheap.
            let a = rng.random_range(0..pool.len());
            let profile = &pool.profiles()[a];
            if platform.answers().has_answered(obj, profile.id) {
                continue;
            }
            out.push(embed_with(
                cache.features(obj),
                obj,
                profile,
                labelled,
                &snapshot,
                self.config.assignment_k,
            ));
        }
        out
    }
}

/// Fraction of currently-labelled objects whose label the classifier's
/// argmax prediction matches — the "classifier accuracy on labelled"
/// trace gauge (`run.acc_on_labelled`), shared with the async runtime.
/// Pure reads only: it must never perturb the run, so it is called
/// exclusively behind `obs::enabled()`.
pub fn classifier_accuracy_on_labelled(
    dataset: &Dataset,
    classifier: &SoftmaxClassifier,
    labelled: &LabelledSet,
) -> Option<f64> {
    if !classifier.is_trained() {
        return None;
    }
    // One batched forward over the labelled objects instead of a
    // `predict_proba_one` call per object: the gauge runs every iteration
    // and the labelled set approaches |O|, so the per-object path was a
    // quadratic tax on traced runs.
    let pairs: Vec<(ObjectId, crowdrl_types::ClassId)> = labelled.labelled_objects().collect();
    if pairs.is_empty() {
        return None;
    }
    let mut x = crowdrl_linalg::Matrix::zeros(pairs.len(), dataset.dim());
    for (r, (obj, _)) in pairs.iter().enumerate() {
        x.row_mut(r).copy_from_slice(dataset.features(obj.index()));
    }
    let probs = classifier.predict_proba(&x);
    let agree = pairs
        .iter()
        .enumerate()
        .filter(|(r, (_, label))| crowdrl_linalg::ops::argmax(probs.row(*r)) == label.index())
        .count();
    Some(agree as f64 / pairs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Ablation, Exploration};
    use crowdrl_sim::{DatasetSpec, PoolSpec};
    use crowdrl_types::rng::seeded;

    fn quick_config(budget: f64) -> CrowdRlConfig {
        CrowdRlConfig::builder()
            .budget(budget)
            .initial_ratio(0.1)
            .batch_per_iter(4)
            .candidate_cap(32)
            .build()
            .unwrap()
    }

    fn setup(n: usize, seed: u64) -> (Dataset, AnnotatorPool) {
        let mut rng = seeded(seed);
        // Separation is the total centroid distance: 3.5 ⇒ Bayes ≈ 0.96,
        // an easy task where the full pipeline should score well.
        let dataset = DatasetSpec::gaussian("t", n, 4, 2)
            .with_separation(3.5)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
        (dataset, pool)
    }

    fn accuracy(outcome: &LabellingOutcome, dataset: &Dataset) -> f64 {
        outcome
            .labels
            .iter()
            .enumerate()
            .filter(|(i, l)| **l == Some(dataset.truth(*i)))
            .count() as f64
            / dataset.len() as f64
    }

    #[test]
    fn end_to_end_labels_everything_within_budget() {
        let (dataset, pool) = setup(80, 1);
        let mut rng = seeded(2);
        let outcome = CrowdRl::new(quick_config(250.0))
            .run(&dataset, &pool, &mut rng)
            .unwrap();
        assert_eq!(outcome.coverage(), 1.0);
        assert!(outcome.budget_spent <= 250.0 + 1e-9);
        let acc = accuracy(&outcome, &dataset);
        assert!(acc > 0.8, "accuracy {acc}");
        assert!(outcome.total_answers > 0);
    }

    #[test]
    fn zero_budget_yields_no_answers() {
        let (dataset, pool) = setup(20, 3);
        let mut rng = seeded(4);
        let outcome = CrowdRl::new(quick_config(0.0))
            .run(&dataset, &pool, &mut rng)
            .unwrap();
        assert_eq!(outcome.total_answers, 0);
        assert_eq!(outcome.budget_spent, 0.0);
        // Classifier can never train: nothing gets labelled.
        assert_eq!(outcome.coverage(), 0.0);
    }

    #[test]
    fn tiny_budget_still_terminates_and_spends_at_most_budget() {
        let (dataset, pool) = setup(40, 5);
        let mut rng = seeded(6);
        let outcome = CrowdRl::new(quick_config(12.0))
            .run(&dataset, &pool, &mut rng)
            .unwrap();
        assert!(outcome.budget_spent <= 12.0 + 1e-9);
        // Fallback labels everything once the classifier has two classes.
        assert!(outcome.coverage() > 0.0);
    }

    #[test]
    fn run_is_deterministic_given_seed() {
        let (dataset, pool) = setup(40, 7);
        let run = || {
            let mut rng = seeded(8);
            CrowdRl::new(quick_config(120.0))
                .run(&dataset, &pool, &mut rng)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.budget_spent, b.budget_spent);
        assert_eq!(a.total_answers, b.total_answers);
    }

    #[test]
    fn ablations_and_alternative_inference_complete() {
        let (dataset, pool) = setup(40, 9);
        for (name, config) in [
            (
                "m1",
                CrowdRlConfig::builder()
                    .budget(120.0)
                    .ablation(Ablation {
                        random_task_selection: true,
                        ..Default::default()
                    })
                    .build()
                    .unwrap(),
            ),
            (
                "m2",
                CrowdRlConfig::builder()
                    .budget(120.0)
                    .ablation(Ablation {
                        random_task_assignment: true,
                        ..Default::default()
                    })
                    .build()
                    .unwrap(),
            ),
            (
                "m3-pm",
                CrowdRlConfig::builder()
                    .budget(120.0)
                    .inference(InferenceModel::Pm)
                    .build()
                    .unwrap(),
            ),
            (
                "ds",
                CrowdRlConfig::builder()
                    .budget(120.0)
                    .inference(InferenceModel::DawidSkene)
                    .build()
                    .unwrap(),
            ),
            (
                "mv",
                CrowdRlConfig::builder()
                    .budget(120.0)
                    .inference(InferenceModel::MajorityVote)
                    .build()
                    .unwrap(),
            ),
            (
                "eps",
                CrowdRlConfig::builder()
                    .budget(120.0)
                    .exploration(Exploration::EpsilonGreedy {
                        start: 0.5,
                        end: 0.05,
                        decay_steps: 20,
                    })
                    .build()
                    .unwrap(),
            ),
        ] {
            let mut rng = seeded(10);
            let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
            assert!(outcome.budget_spent <= 120.0 + 1e-9, "{name} overspent");
            assert!(
                outcome.coverage() > 0.5,
                "{name} coverage {}",
                outcome.coverage()
            );
        }
    }

    #[test]
    fn trace_records_iterations() {
        let (dataset, pool) = setup(60, 11);
        let mut rng = seeded(12);
        let outcome = CrowdRl::new(quick_config(150.0))
            .run(&dataset, &pool, &mut rng)
            .unwrap();
        assert_eq!(outcome.trace.len(), outcome.iterations);
        for (i, s) in outcome.trace.iter().enumerate() {
            assert_eq!(s.iteration, i);
            assert!(s.spend >= 0.0);
            assert!(s.reward.is_finite());
        }
        // labelled_total generally grows, but confidence gating may
        // temporarily un-label an object whose posterior dropped; the run
        // must still finish with most objects labelled.
        let last = outcome.trace.last().unwrap();
        assert!(last.labelled_total >= outcome.trace[0].labelled_total);
    }

    #[test]
    fn cross_training_params_transfer() {
        let (dataset, pool) = setup(40, 13);
        // "Offline" training run on one dataset...
        let mut rng = seeded(14);
        let donor_outcome_config = quick_config(100.0);
        let donor = CrowdRl::new(donor_outcome_config);
        let _ = donor.run(&dataset, &pool, &mut rng).unwrap();
        // We can't extract the agent from run(); instead verify the config
        // path: a pretrained parameter vector loads and runs.
        let mut probe_rng = seeded(15);
        let probe_agent = SelectionAgent::new(
            crowdrl_rl::DqnConfig::default(),
            &Exploration::Ucb { scale: 1.0 },
            crate::decide::DecideConfig::default(),
            None,
            &mut probe_rng,
        )
        .unwrap();
        let params = probe_agent.dqn().export_params();
        let config = CrowdRlConfig::builder()
            .budget(80.0)
            .pretrained_dqn(params)
            .build()
            .unwrap();
        let mut rng = seeded(16);
        let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
        assert!(outcome.coverage() > 0.0);
    }

    #[test]
    fn enriched_plus_inferred_accounts_for_all_labels() {
        let (dataset, pool) = setup(50, 17);
        let mut rng = seeded(18);
        let outcome = CrowdRl::new(quick_config(150.0))
            .run(&dataset, &pool, &mut rng)
            .unwrap();
        let inferred = outcome
            .label_states
            .iter()
            .filter(|s| matches!(s, LabelState::Inferred(_)))
            .count();
        let labelled = outcome.labels.iter().filter(|l| l.is_some()).count();
        assert_eq!(inferred + outcome.enriched_count, labelled);
    }
}
