//! The Agent: unified task selection + assignment (§IV).
//!
//! Given the candidate unlabelled objects and the annotator pool, the agent
//! embeds every feasible (object, annotator) pair, scores it with the DQN,
//! applies the exploration policy, masks infeasible pairs with `-inf`
//! (already answered / unaffordable — the paper's invalid-action masking,
//! §IV-B), sums each object's top-`k` scores with the bounded min-heap, and
//! selects the `batch` objects with the largest sums together with their
//! top-`k` annotators.
//!
//! The paper's ablations degrade exactly one side: `M1` replaces the object
//! ranking with a uniform-random choice, `M2` replaces the annotator
//! ranking with uniform-random feasible annotators.

use crate::config::{Ablation, Exploration};
use crate::features::{
    embed_annotator_part, embed_object_part, ObjectFeatures, StateSnapshot, FEATURE_DIM,
};
use crowdrl_rl::{topk, DqnAgent, DqnConfig, DqnSnapshot, EpsilonGreedy, Transition, UcbExplorer};
use crowdrl_types::rng::sample_indices;
use crowdrl_types::{
    AnnotatorId, AnnotatorProfile, AnswerSet, Error, LabelledSet, ObjectId, Result,
};
use rand::Rng;
use std::collections::HashMap;

/// One chosen assignment: an object and the annotators to ask, plus the
/// embeddings used (needed to build replay transitions afterwards).
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The selected object.
    pub object: ObjectId,
    /// The annotators to ask, best first.
    pub annotators: Vec<AnnotatorId>,
    /// State-action embedding per chosen annotator (parallel to
    /// `annotators`).
    pub embeddings: Vec<Vec<f32>>,
}

/// The RL selection agent: Q-network plus exploration state.
#[derive(Debug, Clone)]
pub struct SelectionAgent {
    dqn: DqnAgent,
    ucb: Option<UcbExplorer>,
    eps: Option<EpsilonGreedy>,
}

/// Checkpointable state of a [`SelectionAgent`]: the Q-network (weights,
/// optimizer, replay buffer) plus whichever exploration state is active.
#[derive(Debug, Clone)]
pub struct AgentState {
    /// Q-network, optimizer and replay snapshot.
    pub dqn: DqnSnapshot,
    /// UCB per-annotator pick counts, when UCB exploration is configured.
    pub ucb_counts: Option<Vec<(u64, u64)>>,
    /// ε-greedy decay clock, when ε-greedy exploration is configured.
    pub eps_steps: Option<u64>,
}

impl SelectionAgent {
    /// Build the agent. `dqn.input_dim` is forced to [`FEATURE_DIM`].
    pub fn new<R: Rng + ?Sized>(
        mut dqn: DqnConfig,
        exploration: &Exploration,
        pretrained: Option<&[f32]>,
        rng: &mut R,
    ) -> Result<Self> {
        dqn.input_dim = FEATURE_DIM;
        let mut dqn = DqnAgent::new(dqn, rng)?;
        if let Some(params) = pretrained {
            dqn.import_params(params)?;
        }
        let (ucb, eps) = match exploration {
            Exploration::Ucb { scale } => (Some(UcbExplorer::new(*scale)), None),
            Exploration::EpsilonGreedy {
                start,
                end,
                decay_steps,
            } => (None, Some(EpsilonGreedy::new(*start, *end, *decay_steps))),
        };
        Ok(Self { dqn, ucb, eps })
    }

    /// The underlying DQN (for parameter export in cross-training).
    pub fn dqn(&self) -> &DqnAgent {
        &self.dqn
    }

    /// Export the full learning state for a checkpoint.
    pub fn export_state(&self) -> AgentState {
        AgentState {
            dqn: self.dqn.snapshot(),
            ucb_counts: self.ucb.as_ref().map(UcbExplorer::export_counts),
            eps_steps: self.eps.as_ref().map(EpsilonGreedy::steps),
        }
    }

    /// Restore a state exported by [`export_state`](Self::export_state).
    /// The agent must have been built with the same configuration (same
    /// network shape and exploration kind).
    pub fn restore_state(&mut self, state: AgentState) -> Result<()> {
        if state.ucb_counts.is_some() != self.ucb.is_some()
            || state.eps_steps.is_some() != self.eps.is_some()
        {
            return Err(Error::InvalidParameter(
                "agent checkpoint uses a different exploration policy".into(),
            ));
        }
        self.dqn.restore(state.dqn)?;
        if let (Some(ucb), Some(counts)) = (&mut self.ucb, state.ucb_counts) {
            ucb.restore_counts(&counts);
        }
        if let (Some(eps), Some(steps)) = (&mut self.eps, state.eps_steps) {
            eps.set_steps(steps);
        }
        Ok(())
    }

    /// Select up to `batch` objects and `k` annotators each, spending at
    /// most `iteration_allowance` budget units.
    ///
    /// `candidates` pairs each candidate object with the classifier's
    /// current class distribution for it. Pairs where the annotator already
    /// answered the object or costs more than the remaining allowance are
    /// masked. Two allocation rules keep the spend paced (see the module
    /// docs): panels contain **at most one expert** (the paper's own worked
    /// assignment, w1/w3/w5, has exactly one), and annotators that no
    /// longer fit the running allowance are skipped in favor of cheaper
    /// ones.
    ///
    /// `slots`, when given, caps how many assignments each annotator may
    /// take across this whole batch (a shared pool's free concurrency
    /// slots). Without it the top-scored annotator would be proposed for
    /// every object, and a brokered service could grant only a slot's
    /// worth of them. `None` means unbounded, the single-run behaviour.
    #[allow(clippy::too_many_arguments)]
    pub fn select<R: Rng + ?Sized>(
        &mut self,
        candidates: &[(ObjectId, Vec<f64>)],
        profiles: &[AnnotatorProfile],
        slots: Option<&HashMap<AnnotatorId, usize>>,
        answers: &AnswerSet,
        labelled: &LabelledSet,
        snapshot: &StateSnapshot,
        iteration_allowance: f64,
        k: usize,
        batch: usize,
        ablation: Ablation,
        rng: &mut R,
    ) -> Vec<Assignment> {
        if candidates.is_empty() || profiles.is_empty() || k == 0 || batch == 0 {
            return Vec::new();
        }
        let w = profiles.len();

        // Score every candidate pair with one *factored* batched forward:
        // the embedding splits into an object-dependent prefix and an
        // annotator/run-level suffix (`features::OBJECT_PART_DIM`), so the
        // Q-network's first layer is evaluated once per object part and
        // once per annotator part instead of once per pair. All candidates
        // share the classifier's class count, so the annotator parts are
        // identical across objects.
        let num_classes = candidates[0].1.len();
        debug_assert!(candidates.iter().all(|(_, p)| p.len() == num_classes));
        let object_parts: Vec<Vec<f32>> = candidates
            .iter()
            .map(|(object, probs)| {
                let object_features = ObjectFeatures::compute(*object, probs, answers);
                embed_object_part(&object_features, *object, labelled, k)
            })
            .collect();
        let annotator_parts: Vec<Vec<f32>> = profiles
            .iter()
            .map(|profile| embed_annotator_part(profile, snapshot, num_classes))
            .collect();
        let q_raw = self.dqn.q_values_outer(&object_parts, &annotator_parts);

        // ε-greedy: one coin per iteration decides explore-vs-exploit.
        let explore_all = match &mut self.eps {
            Some(eps) => {
                if crowdrl_obs::enabled() {
                    // Sample ε *before* the coin advances the decay clock:
                    // this is the value the decision below actually uses.
                    crowdrl_obs::gauge_step(
                        "dqn.epsilon",
                        self.dqn.train_steps() as f64,
                        eps.epsilon(),
                    );
                }
                eps.should_explore(rng)
            }
            None => false,
        };

        // Per-pair adjusted scores with masking.
        let mut scores = vec![f64::NEG_INFINITY; candidates.len() * w];
        for (ci, (object, _)) in candidates.iter().enumerate() {
            for (ai, profile) in profiles.iter().enumerate() {
                let idx = ci * w + ai;
                if answers.has_answered(*object, profile.id) {
                    continue; // masked: Q = -inf (§IV-B)
                }
                if profile.cost > iteration_allowance {
                    continue; // cannot fit this iteration's allowance
                }
                let q = q_raw[idx] as f64;
                // UCB counts are tracked per *annotator*, not per pair: a
                // (object, annotator) pair is masked after one answer, so
                // pair-level counts never differentiate anything. What
                // exploration must cover is the annotator dimension —
                // "have we tried routing work to w_j lately?".
                scores[idx] = match &self.ucb {
                    Some(ucb) => ucb.score_soft(q, profile.id.index() as u64),
                    None => q,
                };
            }
        }

        // Rank objects by top-k score sums.
        let sums: Vec<f64> = (0..candidates.len())
            .map(|ci| topk::top_k_sum(&scores[ci * w..(ci + 1) * w], k))
            .collect();

        let chosen_objects: Vec<usize> = if ablation.random_task_selection || explore_all {
            // M1 / exploration: uniform-random among candidates with at
            // least one feasible pair.
            let feasible: Vec<usize> = (0..candidates.len())
                .filter(|&ci| sums[ci] != f64::NEG_INFINITY)
                .collect();
            sample_indices(rng, feasible.len(), batch)
                .into_iter()
                .map(|i| feasible[i])
                .collect()
        } else {
            topk::top_k_indices(&sums, batch)
        };

        let mut out = Vec::with_capacity(chosen_objects.len());
        let mut allowance = iteration_allowance;
        // Batch-wide concurrency bookkeeping: how many times each
        // annotator (by position) has been picked so far this batch.
        let mut picked = vec![0usize; w];
        for ci in chosen_objects {
            let (object, _) = &candidates[ci];
            let row = &scores[ci * w..(ci + 1) * w];
            let ranked: Vec<usize> = if ablation.random_task_assignment || explore_all {
                let feasible: Vec<usize> =
                    (0..w).filter(|&ai| row[ai] != f64::NEG_INFINITY).collect();
                sample_indices(rng, feasible.len(), feasible.len())
                    .into_iter()
                    .map(|i| feasible[i])
                    .collect()
            } else {
                topk::top_k_indices(row, w)
            };
            // Greedy panel fill: best-scored first, at most one expert,
            // each pick charged against the iteration allowance and the
            // annotator's free concurrency slots.
            let mut annotator_idx = Vec::with_capacity(k);
            let mut has_expert = false;
            for ai in ranked {
                if annotator_idx.len() == k {
                    break;
                }
                if row[ai] == f64::NEG_INFINITY {
                    continue; // masked pair (already answered / over-allowance)
                }
                let profile = &profiles[ai];
                if profile.is_expert() && has_expert {
                    continue;
                }
                if profile.cost > allowance {
                    continue;
                }
                if let Some(slots) = slots {
                    let free = slots.get(&profile.id).copied().unwrap_or(usize::MAX);
                    if picked[ai] >= free {
                        continue; // all concurrency slots spoken for
                    }
                }
                allowance -= profile.cost;
                has_expert |= profile.is_expert();
                picked[ai] += 1;
                annotator_idx.push(ai);
            }
            if annotator_idx.is_empty() {
                continue;
            }
            let annotators: Vec<AnnotatorId> =
                annotator_idx.iter().map(|&ai| profiles[ai].id).collect();
            // Reassemble the full replay embeddings for the few chosen
            // pairs only — the concatenation is exactly `embed_with`.
            let chosen_embeddings: Vec<Vec<f32>> = annotator_idx
                .iter()
                .map(|&ai| {
                    let mut e = object_parts[ci].clone();
                    e.extend_from_slice(&annotator_parts[ai]);
                    e
                })
                .collect();
            if let Some(ucb) = &mut self.ucb {
                for a in &annotators {
                    ucb.record(a.index() as u64);
                }
            }
            out.push(Assignment {
                object: *object,
                annotators,
                embeddings: chosen_embeddings,
            });
        }
        out
    }

    /// Store transitions for the executed assignments with one reward per
    /// assignment (`rewards` parallel to `assignments`). Sharper
    /// per-object credit makes "this expert answer made this object's label
    /// confident" learnable far faster than a single batch-wide reward.
    pub fn remember(
        &mut self,
        assignments: &[Assignment],
        rewards: &[f64],
        next_candidates: &[Vec<f32>],
        terminal: bool,
    ) {
        debug_assert_eq!(assignments.len(), rewards.len());
        for (assignment, &reward) in assignments.iter().zip(rewards) {
            for embedding in &assignment.embeddings {
                self.dqn.remember(Transition {
                    state_action: embedding.clone(),
                    reward: reward as f32,
                    next_candidates: next_candidates.to_vec(),
                    terminal,
                });
            }
        }
    }

    /// Run `steps` minibatch TD updates; returns the mean loss if any ran.
    pub fn train<R: Rng + ?Sized>(&mut self, steps: usize, rng: &mut R) -> Option<f32> {
        let mut total = 0.0;
        let mut ran = 0;
        for _ in 0..steps {
            if let Some(l) = self.dqn.train_step(rng) {
                total += l;
                ran += 1;
            }
        }
        (ran > 0).then(|| total / ran as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;
    use crowdrl_types::{AnnotatorKind, Answer, ClassId};

    fn profiles(workers: usize, experts: usize) -> Vec<AnnotatorProfile> {
        let mut out = Vec::new();
        for i in 0..workers + experts {
            let expert = i >= workers;
            out.push(
                AnnotatorProfile::new(
                    AnnotatorId(i),
                    if expert {
                        AnnotatorKind::Expert
                    } else {
                        AnnotatorKind::Worker
                    },
                    if expert { 10.0 } else { 1.0 },
                )
                .unwrap(),
            );
        }
        out
    }

    fn snapshot(w: usize) -> StateSnapshot {
        StateSnapshot {
            qualities: vec![0.7; w],
            annotator_load: vec![0; w],
            budget_spent_fraction: 0.0,
            labelled_fraction: 0.0,
            enriched_fraction: 0.0,
            max_cost: 10.0,
            phi_trust: 0.0,
        }
    }

    fn agent(seed: u64) -> SelectionAgent {
        let mut rng = seeded(seed);
        SelectionAgent::new(
            DqnConfig::default(),
            &Exploration::Ucb { scale: 0.1 },
            None,
            &mut rng,
        )
        .unwrap()
    }

    fn candidates(n: usize) -> Vec<(ObjectId, Vec<f64>)> {
        (0..n).map(|i| (ObjectId(i), vec![0.6, 0.4])).collect()
    }

    #[test]
    fn selects_requested_batch_and_k() {
        let mut agent = agent(1);
        let profiles = profiles(3, 1);
        let answers = AnswerSet::new(10);
        let labelled = LabelledSet::new(10);
        let mut rng = seeded(2);
        let picks = agent.select(
            &candidates(10),
            &profiles,
            None,
            &answers,
            &labelled,
            &snapshot(4),
            1000.0,
            3,
            2,
            Ablation::default(),
            &mut rng,
        );
        assert_eq!(picks.len(), 2);
        for p in &picks {
            assert_eq!(p.annotators.len(), 3);
            assert_eq!(p.embeddings.len(), 3);
            assert_eq!(p.embeddings[0].len(), FEATURE_DIM);
            // No duplicate annotators within an assignment.
            let mut a = p.annotators.clone();
            a.sort();
            a.dedup();
            assert_eq!(a.len(), 3);
        }
        // Distinct objects.
        assert_ne!(picks[0].object, picks[1].object);
    }

    #[test]
    fn masks_already_answered_pairs() {
        let mut agent = agent(3);
        let profiles = profiles(2, 0);
        let mut answers = AnswerSet::new(2);
        // Object 0 already answered by both annotators: unselectable.
        for a in 0..2 {
            answers
                .record(Answer {
                    object: ObjectId(0),
                    annotator: AnnotatorId(a),
                    label: ClassId(0),
                })
                .unwrap();
        }
        let labelled = LabelledSet::new(2);
        let mut rng = seeded(4);
        let picks = agent.select(
            &candidates(2),
            &profiles,
            None,
            &answers,
            &labelled,
            &snapshot(2),
            1000.0,
            2,
            2,
            Ablation::default(),
            &mut rng,
        );
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].object, ObjectId(1));
    }

    #[test]
    fn masks_unaffordable_annotators() {
        let mut agent = agent(5);
        let profiles = profiles(1, 1); // worker cost 1, expert cost 10
        let answers = AnswerSet::new(3);
        let labelled = LabelledSet::new(3);
        let mut rng = seeded(6);
        let picks = agent.select(
            &candidates(3),
            &profiles,
            None,
            &answers,
            &labelled,
            &snapshot(2),
            5.0, // can't afford the expert
            2,
            1,
            Ablation::default(),
            &mut rng,
        );
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].annotators, vec![AnnotatorId(0)]);
    }

    #[test]
    fn returns_empty_when_nothing_feasible() {
        let mut agent = agent(7);
        let profiles = profiles(2, 0);
        let answers = AnswerSet::new(1);
        let labelled = LabelledSet::new(1);
        let mut rng = seeded(8);
        let picks = agent.select(
            &candidates(1),
            &profiles,
            None,
            &answers,
            &labelled,
            &snapshot(2),
            0.5, // below every cost
            2,
            1,
            Ablation::default(),
            &mut rng,
        );
        assert!(picks.is_empty());
        assert!(agent
            .select(
                &[],
                &profiles,
                None,
                &answers,
                &labelled,
                &snapshot(2),
                10.0,
                2,
                1,
                Ablation::default(),
                &mut rng
            )
            .is_empty());
    }

    #[test]
    fn random_ablations_still_respect_masks() {
        let mut agent = agent(9);
        let profiles = profiles(1, 1);
        let answers = AnswerSet::new(4);
        let labelled = LabelledSet::new(4);
        let mut rng = seeded(10);
        let ablation = Ablation {
            random_task_selection: true,
            random_task_assignment: true,
        };
        for _ in 0..20 {
            let picks = agent.select(
                &candidates(4),
                &profiles,
                None,
                &answers,
                &labelled,
                &snapshot(2),
                5.0, // expert unaffordable
                1,
                2,
                ablation,
                &mut rng,
            );
            for p in &picks {
                assert_eq!(
                    p.annotators,
                    vec![AnnotatorId(0)],
                    "must avoid unaffordable expert"
                );
            }
        }
    }

    #[test]
    fn remember_and_train_flow() {
        let mut rng = seeded(11);
        let config = DqnConfig {
            min_replay: 4,
            batch_size: 4,
            ..Default::default()
        };
        let mut agent =
            SelectionAgent::new(config, &Exploration::Ucb { scale: 0.1 }, None, &mut rng).unwrap();
        let assignment = Assignment {
            object: ObjectId(0),
            annotators: vec![AnnotatorId(0), AnnotatorId(1)],
            embeddings: vec![vec![0.1; FEATURE_DIM], vec![0.2; FEATURE_DIM]],
        };
        for _ in 0..4 {
            agent.remember(std::slice::from_ref(&assignment), &[0.5], &[], true);
        }
        assert!(agent.train(3, &mut rng).is_some());
        assert!(agent.dqn().train_steps() >= 1);
    }

    #[test]
    fn export_restore_roundtrips_learning_state() {
        let mut rng = seeded(21);
        let config = DqnConfig {
            min_replay: 4,
            batch_size: 4,
            ..Default::default()
        };
        let mut agent = SelectionAgent::new(
            config.clone(),
            &Exploration::Ucb { scale: 0.1 },
            None,
            &mut rng,
        )
        .unwrap();
        let assignment = Assignment {
            object: ObjectId(0),
            annotators: vec![AnnotatorId(0)],
            embeddings: vec![vec![0.3; FEATURE_DIM]],
        };
        for _ in 0..6 {
            agent.remember(std::slice::from_ref(&assignment), &[1.0], &[], true);
        }
        agent.train(2, &mut rng);
        let state = agent.export_state();
        let mut other =
            SelectionAgent::new(config, &Exploration::Ucb { scale: 0.1 }, None, &mut rng).unwrap();
        other.restore_state(state).unwrap();
        let probe = vec![0.5; FEATURE_DIM];
        assert_eq!(agent.dqn().q_value(&probe), other.dqn().q_value(&probe));
        assert_eq!(agent.dqn().train_steps(), other.dqn().train_steps());
        // Mismatched exploration kinds are rejected.
        let mut eps_agent = SelectionAgent::new(
            DqnConfig::default(),
            &Exploration::EpsilonGreedy {
                start: 0.5,
                end: 0.1,
                decay_steps: 100,
            },
            None,
            &mut rng,
        )
        .unwrap();
        assert!(eps_agent.restore_state(agent.export_state()).is_err());
    }

    #[test]
    fn pretrained_params_load() {
        let mut rng = seeded(12);
        let donor = SelectionAgent::new(
            DqnConfig::default(),
            &Exploration::Ucb { scale: 0.0 },
            None,
            &mut rng,
        )
        .unwrap();
        let params = donor.dqn().export_params();
        let recipient = SelectionAgent::new(
            DqnConfig::default(),
            &Exploration::Ucb { scale: 0.0 },
            Some(&params),
            &mut rng,
        )
        .unwrap();
        let probe = vec![0.3; FEATURE_DIM];
        assert!((donor.dqn().q_value(&probe) - recipient.dqn().q_value(&probe)).abs() < 1e-6);
    }
}
