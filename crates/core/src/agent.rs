//! The Agent: unified task selection + assignment (§IV).
//!
//! Given the candidate unlabelled objects and the annotator pool, the agent
//! embeds every feasible (object, annotator) pair, scores it with the DQN,
//! applies the exploration policy, masks infeasible pairs with `-inf`
//! (already answered / unaffordable — the paper's invalid-action masking,
//! §IV-B), sums each object's top-`k` scores with the bounded min-heap, and
//! selects the `batch` objects with the largest sums together with their
//! top-`k` annotators.
//!
//! The paper's ablations degrade exactly one side: `M1` replaces the object
//! ranking with a uniform-random choice, `M2` replaces the annotator
//! ranking with uniform-random feasible annotators.

use crate::config::{Ablation, Exploration};
use crate::decide::{AnnotatorCache, DecideConfig, DecideMode, DecideStats, LazyPairScores};
use crate::features::{
    embed_annotator_specific, embed_object_part, embed_run_part, ObjectFeatures, StateSnapshot,
    ANNOTATOR_SPECIFIC_DIM, FEATURE_DIM, OBJECT_PART_DIM,
};
use crowdrl_rl::{topk, DqnAgent, DqnConfig, DqnSnapshot, EpsilonGreedy, Transition, UcbExplorer};
use crowdrl_types::rng::sample_indices;
use crowdrl_types::{
    AnnotatorId, AnnotatorProfile, AnswerSet, Error, LabelledSet, ObjectId, Result,
};
use rand::Rng;
use std::collections::HashMap;

/// One chosen assignment: an object and the annotators to ask, plus the
/// embeddings used (needed to build replay transitions afterwards).
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The selected object.
    pub object: ObjectId,
    /// The annotators to ask, best first.
    pub annotators: Vec<AnnotatorId>,
    /// State-action embedding per chosen annotator (parallel to
    /// `annotators`).
    pub embeddings: Vec<Vec<f32>>,
}

/// The RL selection agent: Q-network plus exploration state.
#[derive(Debug, Clone)]
pub struct SelectionAgent {
    dqn: DqnAgent,
    ucb: Option<UcbExplorer>,
    eps: Option<EpsilonGreedy>,
    decide: DecideConfig,
    cache: AnnotatorCache,
    stats: DecideStats,
}

/// One greedy panel-fill attempt (see [`fill_panel`]).
struct FillAttempt {
    /// Chosen annotator positions, best first.
    picks: Vec<usize>,
    /// The walk reached an entry at or below `stop_below` before the
    /// panel filled — an unscored annotator could rank from here on, so
    /// the attempt is not trustworthy.
    hit_barrier: bool,
}

/// Walk `ranked` best-first and greedily fill a panel of up to `k`
/// annotators under the panel constraints (at most one expert, running
/// allowance, free concurrency slots). Pure: the caller commits the
/// picks (allowance, `picked`, UCB counts) only once the attempt is
/// accepted. `stop_below` is the pruned path's barrier — entries at or
/// below it abort the walk (`NEG_INFINITY` disables the barrier; ranked
/// lists never contain `-inf` entries).
#[allow(clippy::too_many_arguments)]
fn fill_panel(
    ranked: &[usize],
    score_of: &dyn Fn(usize) -> f64,
    active: &[&AnnotatorProfile],
    slots: Option<&HashMap<AnnotatorId, usize>>,
    picked: &[usize],
    mut allowance: f64,
    k: usize,
    stop_below: f64,
) -> FillAttempt {
    let mut picks = Vec::with_capacity(k);
    let mut has_expert = false;
    for &ai in ranked {
        if picks.len() == k {
            break;
        }
        if score_of(ai) <= stop_below {
            return FillAttempt {
                picks,
                hit_barrier: true,
            };
        }
        let profile = active[ai];
        if profile.is_expert() && has_expert {
            continue;
        }
        if profile.cost > allowance {
            continue;
        }
        if let Some(slots) = slots {
            let free = slots.get(&profile.id).copied().unwrap_or(usize::MAX);
            if picked[ai] >= free {
                continue; // all concurrency slots spoken for
            }
        }
        allowance -= profile.cost;
        has_expert |= profile.is_expert();
        picks.push(ai);
    }
    FillAttempt {
        picks,
        hit_barrier: false,
    }
}

/// Checkpointable state of a [`SelectionAgent`]: the Q-network (weights,
/// optimizer, replay buffer) plus whichever exploration state is active.
#[derive(Debug, Clone)]
pub struct AgentState {
    /// Q-network, optimizer and replay snapshot.
    pub dqn: DqnSnapshot,
    /// UCB per-annotator pick counts, when UCB exploration is configured.
    pub ucb_counts: Option<Vec<(u64, u64)>>,
    /// ε-greedy decay clock, when ε-greedy exploration is configured.
    pub eps_steps: Option<u64>,
}

impl SelectionAgent {
    /// Build the agent. `dqn.input_dim` is forced to [`FEATURE_DIM`].
    pub fn new<R: Rng + ?Sized>(
        mut dqn: DqnConfig,
        exploration: &Exploration,
        decide: DecideConfig,
        pretrained: Option<&[f32]>,
        rng: &mut R,
    ) -> Result<Self> {
        dqn.input_dim = FEATURE_DIM;
        let mut dqn = DqnAgent::new(dqn, rng)?;
        if let Some(params) = pretrained {
            dqn.import_params(params)?;
        }
        let (ucb, eps) = match exploration {
            Exploration::Ucb { scale } => (Some(UcbExplorer::new(*scale)), None),
            Exploration::EpsilonGreedy {
                start,
                end,
                decay_steps,
            } => (None, Some(EpsilonGreedy::new(*start, *end, *decay_steps))),
        };
        Ok(Self {
            dqn,
            ucb,
            eps,
            decide,
            cache: AnnotatorCache::new(),
            stats: DecideStats::default(),
        })
    }

    /// The underlying DQN (for parameter export in cross-training).
    pub fn dqn(&self) -> &DqnAgent {
        &self.dqn
    }

    /// The decide-path configuration in effect.
    pub fn decide_config(&self) -> DecideConfig {
        self.decide
    }

    /// Cumulative decide-path counters (monotone; snapshot and
    /// [`DecideStats::delta_since`] to scope them to one call).
    pub fn decide_stats(&self) -> DecideStats {
        self.stats
    }

    /// Number of annotators with a cached first-layer activation partial.
    pub fn cached_annotators(&self) -> usize {
        self.cache.len()
    }

    /// Drop one annotator's cached activation partial (quarantine
    /// entry/release, profile retirement). Dirty-set hygiene only: cache
    /// entries are also keyed by parameter generation and feature bits,
    /// so a stale hit is structurally impossible without this call.
    pub fn invalidate_annotator(&mut self, index: usize) {
        self.cache.invalidate(index);
    }

    /// Export the full learning state for a checkpoint.
    pub fn export_state(&self) -> AgentState {
        AgentState {
            dqn: self.dqn.snapshot(),
            ucb_counts: self.ucb.as_ref().map(UcbExplorer::export_counts),
            eps_steps: self.eps.as_ref().map(EpsilonGreedy::steps),
        }
    }

    /// Restore a state exported by [`export_state`](Self::export_state).
    /// The agent must have been built with the same configuration (same
    /// network shape and exploration kind).
    pub fn restore_state(&mut self, state: AgentState) -> Result<()> {
        if state.ucb_counts.is_some() != self.ucb.is_some()
            || state.eps_steps.is_some() != self.eps.is_some()
        {
            return Err(Error::InvalidParameter(
                "agent checkpoint uses a different exploration policy".into(),
            ));
        }
        self.dqn.restore(state.dqn)?;
        if let (Some(ucb), Some(counts)) = (&mut self.ucb, state.ucb_counts) {
            ucb.restore_counts(&counts);
        }
        if let (Some(eps), Some(steps)) = (&mut self.eps, state.eps_steps) {
            eps.set_steps(steps);
        }
        Ok(())
    }

    /// Select up to `batch` objects and `k` annotators each, spending at
    /// most `iteration_allowance` budget units.
    ///
    /// `candidates` pairs each candidate object with the classifier's
    /// current class distribution for it. Pairs where the annotator already
    /// answered the object or costs more than the remaining allowance are
    /// masked. Two allocation rules keep the spend paced (see the module
    /// docs): panels contain **at most one expert** (the paper's own worked
    /// assignment, w1/w3/w5, has exactly one), and annotators that no
    /// longer fit the running allowance are skipped in favor of cheaper
    /// ones.
    ///
    /// `slots`, when given, caps how many assignments each annotator may
    /// take across this whole batch (a shared pool's free concurrency
    /// slots). Without it the top-scored annotator would be proposed for
    /// every object, and a brokered service could grant only a slot's
    /// worth of them. `None` means unbounded, the single-run behaviour.
    #[allow(clippy::too_many_arguments)]
    pub fn select<R: Rng + ?Sized>(
        &mut self,
        candidates: &[(ObjectId, Vec<f64>)],
        profiles: &[AnnotatorProfile],
        slots: Option<&HashMap<AnnotatorId, usize>>,
        answers: &AnswerSet,
        labelled: &LabelledSet,
        snapshot: &StateSnapshot,
        iteration_allowance: f64,
        k: usize,
        batch: usize,
        ablation: Ablation,
        rng: &mut R,
    ) -> Vec<Assignment> {
        if candidates.is_empty() || profiles.is_empty() || k == 0 || batch == 0 {
            return Vec::new();
        }
        let c = candidates.len();
        self.stats.total_pairs += (c * profiles.len()) as u64;

        // Annotator-level feasibility pre-filter: annotators whose cost
        // exceeds the iteration allowance, or whose free concurrency
        // slots are exhausted, can never be picked — drop them *before*
        // any embedding or forward is built. (Slot-exhausted annotators
        // used to be scored anyway, inflating object top-k sums with
        // picks the fill loop then rejected.)
        let active: Vec<&AnnotatorProfile> = profiles
            .iter()
            .filter(|p| {
                let free = match slots {
                    Some(s) => s.get(&p.id).copied().unwrap_or(usize::MAX),
                    None => usize::MAX,
                };
                p.cost <= iteration_allowance && free > 0
            })
            .collect();
        self.stats.forwarded_annotators += active.len() as u64;
        self.stats.filtered_annotators += (profiles.len() - active.len()) as u64;
        if active.is_empty() {
            return Vec::new();
        }
        let w = active.len();

        // The embedding splits into an object-dependent prefix and an
        // annotator/run-level suffix (`features::OBJECT_PART_DIM`), so the
        // Q-network's first layer is evaluated once per object part and
        // once per annotator part instead of once per pair. The suffix
        // splits again into an annotator-specific block (cacheable across
        // refreshes) and a run-level block shared by the whole pool.
        let embed_span = crowdrl_obs::span("decide.embed");
        let num_classes = candidates[0].1.len();
        debug_assert!(candidates.iter().all(|(_, p)| p.len() == num_classes));
        let object_parts: Vec<Vec<f32>> = candidates
            .iter()
            .map(|(object, probs)| {
                let object_features = ObjectFeatures::compute(*object, probs, answers);
                embed_object_part(&object_features, *object, labelled, k)
            })
            .collect();
        let run_part = embed_run_part(snapshot);
        let specifics: Vec<[f32; ANNOTATOR_SPECIFIC_DIM]> = active
            .iter()
            .map(|profile| embed_annotator_specific(profile, snapshot, num_classes))
            .collect();

        // Pair-level mask: already-answered pairs (§IV-B). Cost and slot
        // infeasibility were already removed at the annotator level.
        let mut masked = vec![false; c * w];
        for (ci, (object, _)) in candidates.iter().enumerate() {
            for (ai, profile) in active.iter().enumerate() {
                masked[ci * w + ai] = answers.has_answered(*object, profile.id);
            }
        }

        drop(embed_span);

        // ε-greedy: one coin per iteration decides explore-vs-exploit.
        let explore_all = match &mut self.eps {
            Some(eps) => {
                if crowdrl_obs::enabled() {
                    // Sample ε *before* the coin advances the decay clock:
                    // this is the value the decision below actually uses.
                    crowdrl_obs::gauge_step(
                        "dqn.epsilon",
                        self.dqn.train_steps() as f64,
                        eps.epsilon(),
                    );
                }
                eps.should_explore(rng)
            }
            None => false,
        };
        let random_selection = ablation.random_task_selection || explore_all;
        let random_assignment = ablation.random_task_assignment || explore_all;

        // When both rankings are random (M1+M2 or an exploration step),
        // feasibility alone decides — skip the Q-network entirely. The
        // RNG draw sequence and the outputs are identical to the scored
        // paths: masked pairs are the only exclusions either way.
        let skip_scoring = random_selection && random_assignment;

        // Exhaustive mode: one factored batched forward over every
        // (candidate, active annotator) pair, UCB-adjusted, masked.
        // UCB counts are tracked per *annotator*, not per pair: a pair is
        // masked after one answer, so pair-level counts never
        // differentiate anything. What exploration must cover is the
        // annotator dimension — "have we tried routing work to w_j
        // lately?".
        let mut dense: Option<Vec<f64>> = None;
        // Pruned mode: cached first-layer partials per annotator, resumed
        // with the run block and bias, wrapped in a lazily-scored grid
        // with column deduplication and sound per-column score upper
        // bounds (see `decide`).
        let mut grid: Option<LazyPairScores> = None;
        if !skip_scoring && self.decide.mode == DecideMode::Pruned {
            let _grid_span = crowdrl_obs::span("decide.grid");
            let generation = self.dqn.params_generation();
            let net = self.dqn.online_network();
            let first = net.first_layer();
            let mut rp = Vec::with_capacity(w);
            for (ai, profile) in active.iter().enumerate() {
                let mut row = self.cache.partial_for(
                    net,
                    generation,
                    profile.id.index(),
                    &specifics[ai],
                    &mut self.stats,
                );
                first.accumulate_partial(
                    &mut row,
                    &run_part,
                    OBJECT_PART_DIM + ANNOTATOR_SPECIFIC_DIM,
                );
                for (v, b) in row.iter_mut().zip(first.bias()) {
                    *v += b;
                }
                rp.push(row);
            }
            let keys: Vec<u64> = active.iter().map(|p| p.id.index() as u64).collect();
            let lazy = LazyPairScores::new(
                net,
                &object_parts,
                rp,
                masked.clone(),
                keys,
                self.ucb.as_ref(),
            );
            // Column dedup is the pruning workhorse. When the pool is
            // mostly distinct (a long-profiled pool where every annotator
            // carries its own quality estimate), the lazy grid's per-pair
            // overhead outweighs its savings — score densely instead.
            // Both backends produce bit-identical selections, so this is
            // purely a cost choice.
            if 2 * lazy.column_count() <= w {
                grid = Some(lazy);
            }
        }
        if !skip_scoring && grid.is_none() {
            // Exhaustive mode, or the pruned grid declined: one factored
            // batched forward over every (candidate, active annotator)
            // pair, UCB-adjusted, masked.
            let annotator_parts: Vec<Vec<f32>> = specifics
                .iter()
                .map(|s| {
                    let mut part = s.to_vec();
                    part.extend_from_slice(&run_part);
                    part
                })
                .collect();
            let q_raw = self.dqn.q_values_outer(&object_parts, &annotator_parts);
            self.stats.scored_pairs += (c * w) as u64;
            let mut scores = vec![f64::NEG_INFINITY; c * w];
            for ci in 0..c {
                for (ai, profile) in active.iter().enumerate() {
                    let idx = ci * w + ai;
                    if masked[idx] {
                        continue; // masked: Q = -inf (§IV-B)
                    }
                    let q = q_raw[idx] as f64;
                    scores[idx] = match &self.ucb {
                        Some(ucb) => ucb.score_soft(q, profile.id.index() as u64),
                        None => q,
                    };
                }
            }
            dense = Some(scores);
        }

        let _rank_span = crowdrl_obs::span("decide.rank");
        // Rank objects by top-k score sums (exact in both modes: the
        // pruned grid extends its scored prefix until every object's
        // k-th best strictly clears the best unscored bound).
        let chosen_objects: Vec<usize> = if random_selection {
            // M1 / exploration: uniform-random among candidates with at
            // least one feasible pair.
            let feasible: Vec<usize> = (0..c)
                .filter(|&ci| (0..w).any(|ai| !masked[ci * w + ai]))
                .collect();
            sample_indices(rng, feasible.len(), batch)
                .into_iter()
                .map(|i| feasible[i])
                .collect()
        } else {
            let sums: Vec<f64> = match (&dense, &mut grid) {
                (Some(scores), _) => (0..c)
                    .map(|ci| topk::top_k_sum(&scores[ci * w..(ci + 1) * w], k))
                    .collect(),
                (None, Some(g)) => {
                    g.ensure_exact_sums(k, self.decide.shortlist, &mut self.stats);
                    g.exact_sums(k)
                }
                (None, None) => unreachable!("scored selection requires a scoring backend"),
            };
            topk::top_k_indices(&sums, batch)
        };

        let mut out = Vec::with_capacity(chosen_objects.len());
        let mut allowance = iteration_allowance;
        // Batch-wide concurrency bookkeeping: how many times each active
        // annotator (by position) has been picked so far this batch.
        let mut picked = vec![0usize; w];
        for ci in chosen_objects {
            // Greedy panel fill: best-scored first, at most one expert,
            // each pick charged against the iteration allowance and the
            // annotator's free concurrency slots.
            let attempt = if random_assignment {
                // M2 / exploration: uniform-random feasible annotators.
                let feasible: Vec<usize> = (0..w).filter(|&ai| !masked[ci * w + ai]).collect();
                let ranked: Vec<usize> = sample_indices(rng, feasible.len(), feasible.len())
                    .into_iter()
                    .map(|i| feasible[i])
                    .collect();
                fill_panel(
                    &ranked,
                    &|_| 0.0,
                    &active,
                    slots,
                    &picked,
                    allowance,
                    k,
                    f64::NEG_INFINITY,
                )
            } else if let Some(scores) = &dense {
                let row = &scores[ci * w..(ci + 1) * w];
                let ranked = topk::top_k_indices(row, w);
                fill_panel(
                    &ranked,
                    &|ai| row[ai],
                    &active,
                    slots,
                    &picked,
                    allowance,
                    k,
                    f64::NEG_INFINITY,
                )
            } else {
                let g = grid.as_mut().expect("scored assignment requires the grid");
                if random_selection {
                    // The object was chosen at random, so its row may be
                    // entirely unscored — score it outright.
                    g.score_full_row(ci, &mut self.stats);
                    let ranked = g.ranked_scored(ci);
                    fill_panel(
                        &ranked,
                        &|ai| g.score_at(ci, ai),
                        &active,
                        slots,
                        &picked,
                        allowance,
                        k,
                        f64::NEG_INFINITY,
                    )
                } else {
                    // Walk the scored entries; the barrier aborts the
                    // moment an unscored annotator could outrank the rest
                    // of the walk. An attempt that ends early (barrier
                    // hit, or panel unfilled with annotators unscored)
                    // falls back to scoring the whole row — pruning never
                    // changes the outcome, only the work.
                    let beta = g.barrier();
                    let ranked = g.ranked_scored(ci);
                    let first = fill_panel(
                        &ranked,
                        &|ai| g.score_at(ci, ai),
                        &active,
                        slots,
                        &picked,
                        allowance,
                        k,
                        beta,
                    );
                    if !g.fully_scored() && (first.hit_barrier || first.picks.len() < k) {
                        self.stats.full_row_fallbacks += 1;
                        g.score_full_row(ci, &mut self.stats);
                        let ranked = g.ranked_scored(ci);
                        fill_panel(
                            &ranked,
                            &|ai| g.score_at(ci, ai),
                            &active,
                            slots,
                            &picked,
                            allowance,
                            k,
                            f64::NEG_INFINITY,
                        )
                    } else {
                        first
                    }
                }
            };
            if attempt.picks.is_empty() {
                continue;
            }
            // Commit the accepted attempt: replay the allowance and slot
            // charges in pick order (bit-identical to charging during the
            // walk), then record and emit.
            for &ai in &attempt.picks {
                allowance -= active[ai].cost;
                picked[ai] += 1;
            }
            let annotators: Vec<AnnotatorId> =
                attempt.picks.iter().map(|&ai| active[ai].id).collect();
            // Reassemble the full replay embeddings for the few chosen
            // pairs only — the concatenation is exactly `embed_with`.
            let chosen_embeddings: Vec<Vec<f32>> = attempt
                .picks
                .iter()
                .map(|&ai| {
                    let mut e = object_parts[ci].clone();
                    e.extend_from_slice(&specifics[ai]);
                    e.extend_from_slice(&run_part);
                    debug_assert_eq!(e.len(), FEATURE_DIM);
                    e
                })
                .collect();
            if let Some(ucb) = &mut self.ucb {
                for a in &annotators {
                    ucb.record(a.index() as u64);
                }
            }
            out.push(Assignment {
                object: candidates[ci].0,
                annotators,
                embeddings: chosen_embeddings,
            });
        }
        out
    }

    /// Store transitions for the executed assignments with one reward per
    /// assignment (`rewards` parallel to `assignments`). Sharper
    /// per-object credit makes "this expert answer made this object's label
    /// confident" learnable far faster than a single batch-wide reward.
    pub fn remember(
        &mut self,
        assignments: &[Assignment],
        rewards: &[f64],
        next_candidates: &[Vec<f32>],
        terminal: bool,
    ) {
        debug_assert_eq!(assignments.len(), rewards.len());
        // One shared copy of the successor candidate set for the whole
        // batch; each transition takes a refcount, not a deep clone.
        let next_candidates: std::sync::Arc<[Vec<f32>]> = next_candidates.to_vec().into();
        for (assignment, &reward) in assignments.iter().zip(rewards) {
            for embedding in &assignment.embeddings {
                self.dqn.remember(Transition {
                    state_action: embedding.clone(),
                    reward: reward as f32,
                    next_candidates: next_candidates.clone(),
                    terminal,
                });
            }
        }
    }

    /// Run `steps` minibatch TD updates; returns the mean loss if any ran.
    pub fn train<R: Rng + ?Sized>(&mut self, steps: usize, rng: &mut R) -> Option<f32> {
        let mut total = 0.0;
        let mut ran = 0;
        for _ in 0..steps {
            if let Some(l) = self.dqn.train_step(rng) {
                total += l;
                ran += 1;
            }
        }
        (ran > 0).then(|| total / ran as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdrl_types::rng::seeded;
    use crowdrl_types::{AnnotatorKind, Answer, ClassId};

    fn profiles(workers: usize, experts: usize) -> Vec<AnnotatorProfile> {
        let mut out = Vec::new();
        for i in 0..workers + experts {
            let expert = i >= workers;
            out.push(
                AnnotatorProfile::new(
                    AnnotatorId(i),
                    if expert {
                        AnnotatorKind::Expert
                    } else {
                        AnnotatorKind::Worker
                    },
                    if expert { 10.0 } else { 1.0 },
                )
                .unwrap(),
            );
        }
        out
    }

    fn snapshot(w: usize) -> StateSnapshot {
        StateSnapshot {
            qualities: vec![0.7; w],
            annotator_load: vec![0; w],
            budget_spent_fraction: 0.0,
            labelled_fraction: 0.0,
            enriched_fraction: 0.0,
            max_cost: 10.0,
            phi_trust: 0.0,
        }
    }

    fn agent(seed: u64) -> SelectionAgent {
        agent_with(seed, DecideConfig::default())
    }

    fn agent_with(seed: u64, decide: DecideConfig) -> SelectionAgent {
        let mut rng = seeded(seed);
        SelectionAgent::new(
            DqnConfig::default(),
            &Exploration::Ucb { scale: 0.1 },
            decide,
            None,
            &mut rng,
        )
        .unwrap()
    }

    fn candidates(n: usize) -> Vec<(ObjectId, Vec<f64>)> {
        (0..n).map(|i| (ObjectId(i), vec![0.6, 0.4])).collect()
    }

    #[test]
    fn selects_requested_batch_and_k() {
        let mut agent = agent(1);
        let profiles = profiles(3, 1);
        let answers = AnswerSet::new(10);
        let labelled = LabelledSet::new(10);
        let mut rng = seeded(2);
        let picks = agent.select(
            &candidates(10),
            &profiles,
            None,
            &answers,
            &labelled,
            &snapshot(4),
            1000.0,
            3,
            2,
            Ablation::default(),
            &mut rng,
        );
        assert_eq!(picks.len(), 2);
        for p in &picks {
            assert_eq!(p.annotators.len(), 3);
            assert_eq!(p.embeddings.len(), 3);
            assert_eq!(p.embeddings[0].len(), FEATURE_DIM);
            // No duplicate annotators within an assignment.
            let mut a = p.annotators.clone();
            a.sort();
            a.dedup();
            assert_eq!(a.len(), 3);
        }
        // Distinct objects.
        assert_ne!(picks[0].object, picks[1].object);
    }

    #[test]
    fn masks_already_answered_pairs() {
        let mut agent = agent(3);
        let profiles = profiles(2, 0);
        let mut answers = AnswerSet::new(2);
        // Object 0 already answered by both annotators: unselectable.
        for a in 0..2 {
            answers
                .record(Answer {
                    object: ObjectId(0),
                    annotator: AnnotatorId(a),
                    label: ClassId(0),
                })
                .unwrap();
        }
        let labelled = LabelledSet::new(2);
        let mut rng = seeded(4);
        let picks = agent.select(
            &candidates(2),
            &profiles,
            None,
            &answers,
            &labelled,
            &snapshot(2),
            1000.0,
            2,
            2,
            Ablation::default(),
            &mut rng,
        );
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].object, ObjectId(1));
    }

    #[test]
    fn masks_unaffordable_annotators() {
        let mut agent = agent(5);
        let profiles = profiles(1, 1); // worker cost 1, expert cost 10
        let answers = AnswerSet::new(3);
        let labelled = LabelledSet::new(3);
        let mut rng = seeded(6);
        let picks = agent.select(
            &candidates(3),
            &profiles,
            None,
            &answers,
            &labelled,
            &snapshot(2),
            5.0, // can't afford the expert
            2,
            1,
            Ablation::default(),
            &mut rng,
        );
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].annotators, vec![AnnotatorId(0)]);
    }

    #[test]
    fn returns_empty_when_nothing_feasible() {
        let mut agent = agent(7);
        let profiles = profiles(2, 0);
        let answers = AnswerSet::new(1);
        let labelled = LabelledSet::new(1);
        let mut rng = seeded(8);
        let picks = agent.select(
            &candidates(1),
            &profiles,
            None,
            &answers,
            &labelled,
            &snapshot(2),
            0.5, // below every cost
            2,
            1,
            Ablation::default(),
            &mut rng,
        );
        assert!(picks.is_empty());
        assert!(agent
            .select(
                &[],
                &profiles,
                None,
                &answers,
                &labelled,
                &snapshot(2),
                10.0,
                2,
                1,
                Ablation::default(),
                &mut rng
            )
            .is_empty());
    }

    #[test]
    fn random_ablations_still_respect_masks() {
        let mut agent = agent(9);
        let profiles = profiles(1, 1);
        let answers = AnswerSet::new(4);
        let labelled = LabelledSet::new(4);
        let mut rng = seeded(10);
        let ablation = Ablation {
            random_task_selection: true,
            random_task_assignment: true,
        };
        for _ in 0..20 {
            let picks = agent.select(
                &candidates(4),
                &profiles,
                None,
                &answers,
                &labelled,
                &snapshot(2),
                5.0, // expert unaffordable
                1,
                2,
                ablation,
                &mut rng,
            );
            for p in &picks {
                assert_eq!(
                    p.annotators,
                    vec![AnnotatorId(0)],
                    "must avoid unaffordable expert"
                );
            }
        }
    }

    #[test]
    fn remember_and_train_flow() {
        let mut rng = seeded(11);
        let config = DqnConfig {
            min_replay: 4,
            batch_size: 4,
            ..Default::default()
        };
        let mut agent = SelectionAgent::new(
            config,
            &Exploration::Ucb { scale: 0.1 },
            DecideConfig::default(),
            None,
            &mut rng,
        )
        .unwrap();
        let assignment = Assignment {
            object: ObjectId(0),
            annotators: vec![AnnotatorId(0), AnnotatorId(1)],
            embeddings: vec![vec![0.1; FEATURE_DIM], vec![0.2; FEATURE_DIM]],
        };
        for _ in 0..4 {
            agent.remember(std::slice::from_ref(&assignment), &[0.5], &[], true);
        }
        assert!(agent.train(3, &mut rng).is_some());
        assert!(agent.dqn().train_steps() >= 1);
    }

    #[test]
    fn export_restore_roundtrips_learning_state() {
        let mut rng = seeded(21);
        let config = DqnConfig {
            min_replay: 4,
            batch_size: 4,
            ..Default::default()
        };
        let mut agent = SelectionAgent::new(
            config.clone(),
            &Exploration::Ucb { scale: 0.1 },
            DecideConfig::default(),
            None,
            &mut rng,
        )
        .unwrap();
        let assignment = Assignment {
            object: ObjectId(0),
            annotators: vec![AnnotatorId(0)],
            embeddings: vec![vec![0.3; FEATURE_DIM]],
        };
        for _ in 0..6 {
            agent.remember(std::slice::from_ref(&assignment), &[1.0], &[], true);
        }
        agent.train(2, &mut rng);
        let state = agent.export_state();
        let mut other = SelectionAgent::new(
            config,
            &Exploration::Ucb { scale: 0.1 },
            DecideConfig::default(),
            None,
            &mut rng,
        )
        .unwrap();
        other.restore_state(state).unwrap();
        let probe = vec![0.5; FEATURE_DIM];
        assert_eq!(agent.dqn().q_value(&probe), other.dqn().q_value(&probe));
        assert_eq!(agent.dqn().train_steps(), other.dqn().train_steps());
        // Mismatched exploration kinds are rejected.
        let mut eps_agent = SelectionAgent::new(
            DqnConfig::default(),
            &Exploration::EpsilonGreedy {
                start: 0.5,
                end: 0.1,
                decay_steps: 100,
            },
            DecideConfig::default(),
            None,
            &mut rng,
        )
        .unwrap();
        assert!(eps_agent.restore_state(agent.export_state()).is_err());
    }

    #[test]
    fn pretrained_params_load() {
        let mut rng = seeded(12);
        let donor = SelectionAgent::new(
            DqnConfig::default(),
            &Exploration::Ucb { scale: 0.0 },
            DecideConfig::default(),
            None,
            &mut rng,
        )
        .unwrap();
        let params = donor.dqn().export_params();
        let recipient = SelectionAgent::new(
            DqnConfig::default(),
            &Exploration::Ucb { scale: 0.0 },
            DecideConfig::default(),
            Some(&params),
            &mut rng,
        )
        .unwrap();
        let probe = vec![0.3; FEATURE_DIM];
        assert!((donor.dqn().q_value(&probe) - recipient.dqn().q_value(&probe)).abs() < 1e-6);
    }

    #[test]
    fn pruned_and_exhaustive_selections_are_bit_identical() {
        use crate::decide::DecideMode;
        // Small shortlist forces real pruning even at this pool size.
        for seed in [31u64, 32, 33] {
            let mut pruned = agent_with(
                seed,
                DecideConfig {
                    mode: DecideMode::Pruned,
                    shortlist: 4,
                },
            );
            let mut exhaustive = agent_with(
                seed,
                DecideConfig {
                    mode: DecideMode::Exhaustive,
                    shortlist: 4,
                },
            );
            let profiles = profiles(20, 3);
            let mut answers = AnswerSet::new(12);
            answers
                .record(Answer {
                    object: ObjectId(0),
                    annotator: AnnotatorId(2),
                    label: ClassId(0),
                })
                .unwrap();
            let labelled = LabelledSet::new(12);
            let mut slots: HashMap<AnnotatorId, usize> = HashMap::new();
            slots.insert(AnnotatorId(1), 0); // exhausted: must be pre-filtered
            slots.insert(AnnotatorId(4), 1);
            for round in 0..4 {
                let mut rng_a = seeded(seed * 100 + round);
                let mut rng_b = seeded(seed * 100 + round);
                let a = pruned.select(
                    &candidates(12),
                    &profiles,
                    Some(&slots),
                    &answers,
                    &labelled,
                    &snapshot(23),
                    60.0,
                    3,
                    4,
                    Ablation::default(),
                    &mut rng_a,
                );
                let b = exhaustive.select(
                    &candidates(12),
                    &profiles,
                    Some(&slots),
                    &answers,
                    &labelled,
                    &snapshot(23),
                    60.0,
                    3,
                    4,
                    Ablation::default(),
                    &mut rng_b,
                );
                assert_eq!(a, b, "seed {seed} round {round}");
                assert_eq!(rng_a.state(), rng_b.state(), "RNG streams diverged");
            }
            let stats = pruned.decide_stats();
            assert!(
                stats.scored_pairs < stats.total_pairs,
                "pruning never engaged: {stats:?}"
            );
        }
    }

    #[test]
    fn prefiltered_annotators_are_never_forwarded() {
        // Slot-exhausted and over-allowance annotators must be dropped
        // *before* embedding/scoring, not merely skipped at panel fill.
        let mut agent = agent(41);
        let profiles = profiles(4, 1); // worker cost 1, expert cost 10
        let answers = AnswerSet::new(6);
        let labelled = LabelledSet::new(6);
        let mut slots: HashMap<AnnotatorId, usize> = HashMap::new();
        slots.insert(AnnotatorId(0), 0);
        slots.insert(AnnotatorId(1), 2);
        let mut rng = seeded(42);
        let picks = agent.select(
            &candidates(6),
            &profiles,
            Some(&slots),
            &answers,
            &labelled,
            &snapshot(5),
            5.0, // expert (cost 10) unaffordable
            2,
            3,
            Ablation::default(),
            &mut rng,
        );
        let stats = agent.decide_stats();
        // Pool of 5: annotator 0 (no slots) and the expert (unaffordable)
        // are filtered, three workers forwarded.
        assert_eq!(stats.forwarded_annotators, 3);
        assert_eq!(stats.filtered_annotators, 2);
        assert_eq!(stats.total_pairs, 6 * 5);
        for p in &picks {
            assert!(!p.annotators.contains(&AnnotatorId(0)));
            assert!(!p.annotators.contains(&AnnotatorId(4)));
        }
        // Exhausting annotator 1's two slots across the batch is still
        // enforced by the fill loop.
        let uses = picks
            .iter()
            .flat_map(|p| &p.annotators)
            .filter(|a| **a == AnnotatorId(1))
            .count();
        assert!(uses <= 2);
    }

    #[test]
    fn activation_cache_hits_across_refreshes_and_invalidates() {
        let mut agent = agent(51);
        let profiles = profiles(6, 1);
        let answers = AnswerSet::new(8);
        let labelled = LabelledSet::new(8);
        let run = |agent: &mut SelectionAgent, seed: u64| {
            let mut rng = seeded(seed);
            agent.select(
                &candidates(8),
                &profiles,
                None,
                &answers,
                &labelled,
                &snapshot(7),
                100.0,
                2,
                2,
                Ablation::default(),
                &mut rng,
            );
        };
        run(&mut agent, 1);
        let first = agent.decide_stats();
        assert_eq!(first.cache_misses, 7); // cold: every annotator computed
        assert_eq!(first.cache_hits, 0);
        run(&mut agent, 2);
        let second = agent.decide_stats().delta_since(&first);
        // No training in between and the same snapshot: all hits. (UCB
        // counts changed, but they adjust scores, not the cached DQN
        // partial.)
        assert_eq!(second.cache_misses, 0);
        assert_eq!(second.cache_hits, 7);
        assert_eq!(agent.cached_annotators(), 7);
        agent.invalidate_annotator(3);
        assert_eq!(agent.cached_annotators(), 6);
        let before = agent.decide_stats();
        run(&mut agent, 3);
        let third = agent.decide_stats().delta_since(&before);
        assert_eq!(third.cache_misses, 1); // only the invalidated one
        assert_eq!(third.cache_hits, 6);
    }
}
