//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The build environment has no network access, so this workspace ships a
//! small implementation of the `crossbeam 0.8` API surface the CrowdRL
//! crates use:
//!
//! * [`channel::unbounded`] / [`channel::bounded`] — multi-producer
//!   **multi-consumer** channels (the part `std::sync::mpsc` cannot do),
//!   built on a `Mutex<VecDeque>` + `Condvar`. Fine for the coarse-grained
//!   job queues used here; not a lock-free replacement.
//! * [`scope`] — scoped threads with crossbeam's closure signature
//!   (`|scope| ...` and `scope.spawn(|scope| ...)`), built on
//!   [`std::thread::scope`], returning `Err` when any spawned thread
//!   panicked instead of propagating the panic.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Receivers wait here for data; senders wait here for capacity.
        signal: Condvar,
        capacity: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty; senders still connected.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// The sending half; clonable for multi-producer use.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable for multi-consumer (work-stealing) use.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Queue `msg`, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.shared.signal.wait(state).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.signal.notify_all();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Take the next message, blocking until one arrives. Fails only when
        /// the queue is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    // A bounded sender may be waiting for the free slot.
                    self.shared.signal.notify_all();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.signal.wait(state).expect("channel poisoned");
            }
        }

        /// Take the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.signal.notify_all();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterate over messages until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.state.lock().expect("channel poisoned").senders -= 1;
            self.shared.signal.notify_all();
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
            self.shared.signal.notify_all();
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            signal: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A channel holding at most `cap` queued messages; `send` blocks when
    /// full. (`cap == 0` behaves as capacity 1 here, not as a rendezvous.)
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }
}

/// A scope for spawning threads that may borrow from the caller's stack.
///
/// Mirrors crossbeam's shape: the closure passed to [`scope`] and every
/// closure passed to [`Scope::spawn`] receive a `&Scope`, so spawned threads
/// can spawn further threads.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope; it is joined when the scope ends.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Run `f` with a thread scope; all spawned threads are joined before this
/// returns. Returns `Err` (with the panic payload) when `f` or any spawned
/// thread panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn unbounded_multi_consumer_delivers_every_job() {
        let (tx, rx) = channel::unbounded::<usize>();
        let (out_tx, out_rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                s.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        out_tx.send(v * 2).unwrap();
                    }
                });
            }
        })
        .unwrap();
        drop(out_tx);
        let mut got: Vec<usize> = out_rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_drains_then_disconnects() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = channel::bounded::<usize>(2);
        let sent = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|_| {
                for i in 0..50 {
                    tx.send(i).unwrap();
                    sent.fetch_add(1, Ordering::SeqCst);
                }
            });
            s.spawn(|_| {
                for want in 0..50 {
                    assert_eq!(rx.recv(), Ok(want));
                }
            });
        })
        .unwrap();
        assert_eq!(sent.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn scope_reports_thread_panics_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn scope_returns_closure_value() {
        let result = scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().unwrap() * 2
        });
        assert_eq!(result.unwrap(), 42);
    }
}
