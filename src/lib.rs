//! # CrowdRL
//!
//! An end-to-end reinforcement-learning framework for data labelling — a
//! from-scratch Rust reproduction of *CrowdRL* (Li et al., ICDE 2021).
//!
//! CrowdRL labels a dataset under a monetary budget by unifying three
//! classically separate problems:
//!
//! * **Task selection** — which unlabelled objects to label next,
//! * **Task assignment** — which annotators (cheap noisy crowd workers or
//!   expensive near-perfect experts) should label them,
//! * **Truth inference** — what the true label is, given noisy answers.
//!
//! A Deep Q-Network scores (object, annotator) pairs so selection and
//! assignment become one action; an EM-style *joint* inference model couples
//! the annotator confusion matrices with a classifier trained on the
//! evolving labelled set; high-confidence classifier predictions enrich the
//! labelled set for free.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `crowdrl-types` | IDs, datasets, confusion matrices, budgets |
//! | [`obs`] | `crowdrl-obs` | zero-dependency tracing/metrics + trace analyzer |
//! | [`linalg`] | `crowdrl-linalg` | dense matrix kernels |
//! | [`nn`] | `crowdrl-nn` | feed-forward neural networks |
//! | [`sim`] | `crowdrl-sim` | crowdsourcing-platform simulator |
//! | [`inference`] | `crowdrl-inference` | truth-inference algorithms |
//! | [`rl`] | `crowdrl-rl` | DQN substrate |
//! | [`core`] | `crowdrl-core` | the CrowdRL workflow itself |
//! | [`baselines`] | `crowdrl-baselines` | DLTA / OBA / IDLE / DALC / Hybrid |
//! | [`eval`] | `crowdrl-eval` | metrics and experiment runner |
//! | [`serve`] | `crowdrl-serve` | discrete-event asynchronous labelling runtime |
//! | [`service`] | `crowdrl-service` | multi-tenant sharded serving over one shared pool |
//!
//! ## Quickstart
//!
//! ```
//! use crowdrl::prelude::*;
//!
//! // A small synthetic labelling problem: 60 objects, 2 classes.
//! let spec = DatasetSpec::gaussian("demo", 60, 6, 2).with_separation(2.0);
//! let mut rng = crowdrl::types::rng::seeded(7);
//! let dataset = spec.generate(&mut rng).unwrap();
//!
//! // Three workers and one expert.
//! let pool = PoolSpec::new(3, 1).generate(dataset.num_classes(), &mut rng).unwrap();
//!
//! // Run the CrowdRL workflow with a budget of 120 units.
//! let config = CrowdRlConfig::builder().budget(120.0).initial_ratio(0.1).build().unwrap();
//! let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
//!
//! let metrics = evaluate_labels(&dataset, &outcome.labels).unwrap();
//! assert!(metrics.accuracy > 0.5);
//! ```

pub use crowdrl_baselines as baselines;
pub use crowdrl_core as core;
pub use crowdrl_eval as eval;
pub use crowdrl_inference as inference;
pub use crowdrl_linalg as linalg;
pub use crowdrl_nn as nn;
pub use crowdrl_obs as obs;
pub use crowdrl_rl as rl;
pub use crowdrl_serve as serve;
pub use crowdrl_service as service;
pub use crowdrl_sim as sim;
pub use crowdrl_types as types;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use crowdrl_core::{CrowdRl, CrowdRlConfig, LabellingOutcome};
    pub use crowdrl_eval::metrics::{evaluate_labels, Metrics};
    pub use crowdrl_linalg::NumericMode;
    pub use crowdrl_serve::{AsyncOutcome, ExecMode, RunAsync, ServeConfig, ServiceMetrics};
    pub use crowdrl_service::{
        AdmissionPolicy, ProjectSpec, ProjectStatus, Service, ServiceCheckpoint, ServiceConfig,
        ServiceError, ServiceOutcome, ServiceRunOutcome,
    };
    pub use crowdrl_sim::{AnnotatorPool, DatasetSpec, PoolSpec};
    pub use crowdrl_types::{
        AnnotatorId, AnnotatorKind, AnnotatorProfile, Answer, AnswerSet, Budget, ClassId,
        ConfusionMatrix, Dataset, LabelState, LabelledSet, ObjectId,
    };
}
