//! Property-based fuzzing of the full workflow: across randomized (but
//! valid) configurations, pools, and datasets, the run must always respect
//! its invariants — budget ceiling, label-range validity, bookkeeping
//! consistency, and termination.

use crowdrl::prelude::*;
use crowdrl::types::rng::seeded;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full (small) labelling run
        max_shrink_iters: 32,
    })]

    #[test]
    fn workflow_invariants_hold_for_any_valid_config(
        n in 12usize..60,
        budget in 0.0f64..400.0,
        alpha in 0.0f64..0.3,
        k in 1usize..5,
        batch in 1usize..10,
        workers in 1usize..5,
        experts in 0usize..3,
        separation in 0.2f64..4.0,
        margin in 0.1f64..0.95,
        seed in 0u64..10_000,
    ) {
        let mut rng = seeded(seed);
        let dataset = DatasetSpec::gaussian("prop", n, 5, 2)
            .with_separation(separation)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(workers, experts).generate(2, &mut rng).unwrap();
        let config = CrowdRlConfig::builder()
            .budget(budget)
            .initial_ratio(alpha)
            .assignment_k(k)
            .batch_per_iter(batch)
            .enrichment_margin(margin)
            .candidate_cap(32)
            .build()
            .unwrap();
        let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();

        // Budget is a hard ceiling.
        prop_assert!(outcome.budget_spent <= budget + 1e-9,
            "spent {} of {budget}", outcome.budget_spent);
        // Shapes and label ranges.
        prop_assert_eq!(outcome.labels.len(), n);
        prop_assert_eq!(outcome.label_states.len(), n);
        for (label, state) in outcome.labels.iter().zip(&outcome.label_states) {
            prop_assert_eq!(*label, state.label());
            if let Some(c) = label {
                prop_assert!(c.index() < 2);
            }
        }
        // Bookkeeping consistency.
        let enriched = outcome
            .label_states
            .iter()
            .filter(|s| matches!(s, LabelState::Enriched(_)))
            .count();
        prop_assert_eq!(enriched, outcome.enriched_count);
        prop_assert_eq!(outcome.trace.len(), outcome.iterations);
        for s in &outcome.trace {
            prop_assert!(s.spend >= 0.0);
            prop_assert!(s.reward.is_finite());
        }
        // Metrics never panic or leave range.
        let m = evaluate_labels(&dataset, &outcome.labels).unwrap();
        for v in [m.accuracy, m.precision, m.recall, m.f1, m.coverage] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
