//! Decide-equivalence battery: the pruned decide path (cached annotator
//! activations + exact bound-driven shortlists) must produce selections,
//! panels, traces and spend **bit-identical** to exhaustive scoring —
//! across pool sizes, execution widths, and under fault injection with
//! quarantine-driven cache invalidation mid-run. Pruning is a pure
//! optimization; any divergence here is a correctness bug, never an
//! acceptable approximation.

use crowdrl::core::{DecideConfig, DecideMode};
use crowdrl::prelude::*;
use crowdrl::rl::DqnConfig;
use crowdrl::serve::{AsyncRuntime, QuarantineConfig, TraceEvent};
use crowdrl::sim::{FaultPlan, QualityDrift};
use crowdrl::types::rng::seeded;

/// A labelling problem sized to the pool: bigger pools get fewer objects
/// so the exhaustive reference stays affordable in a debug test run.
fn scenario(pool_size: usize, objects: usize) -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(0xDEC1DE ^ pool_size as u64);
    let dataset = DatasetSpec::gaussian(format!("decide{pool_size}"), objects, 4, 2)
        .with_separation(2.5)
        .generate(&mut rng)
        .unwrap();
    let experts = (pool_size / 10).max(1);
    let pool = PoolSpec::new(pool_size - experts, experts)
        .generate(2, &mut rng)
        .unwrap();
    (dataset, pool)
}

fn config(mode: DecideMode, shortlist: usize, objects: usize) -> CrowdRlConfig {
    CrowdRlConfig::builder()
        .budget(2.75 * objects as f64)
        .candidate_cap(12)
        // A narrow net keeps the exhaustive reference cheap; the decide
        // path never depends on the architecture.
        .dqn(DqnConfig {
            hidden: vec![32, 16],
            ..DqnConfig::default()
        })
        .decide(DecideConfig { mode, shortlist })
        .build()
        .unwrap()
}

fn run(
    pool_size: usize,
    objects: usize,
    mode: DecideMode,
    shortlist: usize,
    serve: ServeConfig,
) -> AsyncOutcome {
    let (dataset, pool) = scenario(pool_size, objects);
    let mut rng = seeded(97);
    AsyncRuntime::new(config(mode, shortlist, objects), serve)
        .run(&dataset, &pool, &mut rng)
        .unwrap()
}

/// Everything observable must match, down to the bit: labels, per-object
/// label provenance, spend, answer counts, the per-refresh iteration
/// trace, and the full discrete event trace.
fn assert_identical(a: &AsyncOutcome, b: &AsyncOutcome, what: &str) {
    assert_eq!(a.outcome.labels, b.outcome.labels, "{what}: labels");
    assert_eq!(
        a.outcome.label_states, b.outcome.label_states,
        "{what}: label states"
    );
    assert_eq!(
        a.outcome.budget_spent.to_bits(),
        b.outcome.budget_spent.to_bits(),
        "{what}: budget spent"
    );
    assert_eq!(
        a.outcome.total_answers, b.outcome.total_answers,
        "{what}: answers"
    );
    assert_eq!(
        a.outcome.iterations, b.outcome.iterations,
        "{what}: iterations"
    );
    // IterationStats carries f64s and no PartialEq; its Debug rendering
    // is a round-trippable representation, so string equality is value
    // equality.
    assert_eq!(
        format!("{:?}", a.outcome.trace),
        format!("{:?}", b.outcome.trace),
        "{what}: iteration trace"
    );
    assert_eq!(a.trace, b.trace, "{what}: event trace");
}

#[test]
fn pruned_matches_exhaustive_across_pool_sizes() {
    // Shortlist 16 forces real pruning even at the 100-annotator pool;
    // the larger pools prune most of their columns.
    for (pool_size, objects) in [(100usize, 30usize), (500, 24), (2_000, 16)] {
        let serve = ServeConfig::default();
        let exhaustive = run(
            pool_size,
            objects,
            DecideMode::Exhaustive,
            16,
            serve.clone(),
        );
        let pruned = run(pool_size, objects, DecideMode::Pruned, 16, serve);
        assert_identical(
            &exhaustive,
            &pruned,
            &format!("pool {pool_size} x {objects} objects"),
        );
        assert!(
            exhaustive.outcome.total_answers > 0,
            "degenerate run: nothing was ever purchased at pool {pool_size}"
        );
    }
}

#[test]
fn pruned_matches_exhaustive_across_exec_widths() {
    let (pool_size, objects) = (500usize, 24usize);
    let reference = run(
        pool_size,
        objects,
        DecideMode::Exhaustive,
        16,
        ServeConfig::default(),
    );
    for width in [1usize, 2, 4] {
        let mode = if width == 1 {
            ExecMode::SingleThread
        } else {
            ExecMode::WorkerPool { workers: width }
        };
        let pruned = run(
            pool_size,
            objects,
            DecideMode::Pruned,
            16,
            ServeConfig::default().with_mode(mode),
        );
        assert_identical(&reference, &pruned, &format!("width {width}"));
    }
}

#[test]
fn pruned_matches_exhaustive_under_faults_and_quarantine() {
    // Two workers drift into spammers immediately; the breaker trips
    // mid-run, shrinking the selectable pool and invalidating the
    // drifted annotators' cached activations. Stochastic faults jitter
    // the answer stream on top. The pool is small enough that the
    // drifted annotators actually accrue `min_answers` and trip.
    let faulted = || {
        ServeConfig::default()
            .with_faults(FaultPlan {
                no_show_rate: 0.05,
                straggler_rate: 0.08,
                drifts: vec![
                    QualityDrift {
                        annotator: AnnotatorId(0),
                        at: 0.0,
                    },
                    QualityDrift {
                        annotator: AnnotatorId(7),
                        at: 0.0,
                    },
                ],
                ..FaultPlan::default()
            })
            .with_quarantine(QuarantineConfig {
                enabled: true,
                min_answers: 4,
                ..QuarantineConfig::default()
            })
    };
    let (pool_size, objects) = (16usize, 40usize);
    // Shortlist 6 on a 16-strong pool: pruning stays engaged even as
    // quarantine shrinks the live pool.
    let exhaustive = run(pool_size, objects, DecideMode::Exhaustive, 6, faulted());
    let pruned = run(pool_size, objects, DecideMode::Pruned, 6, faulted());
    assert_identical(&exhaustive, &pruned, "faulted + quarantined");
    // The scenario must actually exercise quarantine-driven invalidation:
    // at least one breaker has to trip while panels are still being cut.
    assert!(
        pruned
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Quarantined { .. })),
        "no annotator was quarantined; the invalidation path went untested"
    );
}

#[test]
fn tiny_shortlist_and_tiny_pool_degrade_gracefully() {
    // Pool smaller than any sensible shortlist, and a shortlist of 1:
    // the pruned path must clamp and still match.
    let serve = ServeConfig::default();
    let exhaustive = run(12, 20, DecideMode::Exhaustive, 1, serve.clone());
    let pruned = run(12, 20, DecideMode::Pruned, 1, serve);
    assert_identical(&exhaustive, &pruned, "pool 12, shortlist 1");
}
