//! Chaos tests for the multi-tenant service: tenant-isolated fault
//! containment (injected shard panics, scheduled aborts, project
//! outages) and crash-consistent checkpoint/restore.
//!
//! The two load-bearing properties:
//!
//! * **Isolation** — a faulted tenant fails alone. Healthy projects in
//!   a run containing a poisoned tenant finish *bit-identically* to a
//!   run that never admitted it.
//! * **Crash consistency** — kill-and-resume at any checkpoint boundary
//!   finishes bit-identically to the uninterrupted (still faulted) run,
//!   in both execution modes, and a checkpoint cut under one config
//!   refuses to restore under another.

use crowdrl::prelude::*;
use crowdrl::serve::RunControl;
use crowdrl::sim::{OutageWindow, ProjectAbort, ProjectOutage, ProjectPanic, ServiceFaultPlan};
use crowdrl::types::rng::seeded;

/// Labels rendered one character per object (class digit, `.` for
/// unlabelled).
fn render(labels: &[Option<ClassId>]) -> String {
    labels
        .iter()
        .map(|l| match l {
            Some(ClassId(c)) => char::from_digit(*c as u32, 10).unwrap_or('?'),
            None => '.',
        })
        .collect()
}

/// `n` small projects over a 12-annotator pool. Generation order is
/// pool first, then datasets in submission order, so `scenario(5)` and
/// `scenario(6)` agree exactly on the first five specs — that is what
/// lets the isolation test compare a faulted 6-project run against a
/// 5-project baseline.
fn scenario(n: usize) -> (Vec<ProjectSpec>, AnnotatorPool) {
    let mut rng = seeded(0xC0FFEE);
    let pool = PoolSpec::new(9, 3).generate(2, &mut rng).unwrap();
    let specs = (0..n)
        .map(|p| {
            let dataset = DatasetSpec::gaussian(format!("chaos{p}"), 18 + 2 * p, 4, 2)
                .with_separation(2.5)
                .generate(&mut rng)
                .unwrap();
            let config = CrowdRlConfig::builder()
                .budget(54.0 + 6.0 * p as f64)
                .build()
                .unwrap();
            ProjectSpec::new(format!("project-{p}"), config, dataset)
        })
        .collect();
    (specs, pool)
}

/// A tenant that is both flaky and doomed: every arrival it would
/// receive is deferred past the horizon, and its first shard advance
/// panics.
fn doomed_tenant_plan(project: usize) -> ServiceFaultPlan {
    ServiceFaultPlan {
        outages: vec![ProjectOutage {
            project,
            window: OutageWindow {
                start: 0.0,
                end: 1.0e5,
            },
        }],
        panics: vec![ProjectPanic { project, at: 1.0 }],
        ..ServiceFaultPlan::default()
    }
}

// ---------------------------------------------------------------------
// Isolation: a poisoned tenant fails alone.
// ---------------------------------------------------------------------

/// Capacity-1 service, six projects, the sixth poisoned (outage +
/// panic). Projects 0–4 run to completion before the poisoned one ever
/// activates, so their labels, spend, and trace must match a baseline
/// service that was only ever handed the five healthy specs.
#[test]
fn healthy_tenants_are_bit_identical_when_a_tenant_fails() {
    let config = ServiceConfig::default()
        .with_capacity(1)
        .with_shards(2)
        .with_watermarks(8, 20.0);

    let (healthy_specs, pool) = scenario(5);
    let baseline = Service::new(config.clone())
        .unwrap()
        .run(&healthy_specs, &pool, &mut seeded(0xBEEF))
        .unwrap();

    let (specs, pool) = scenario(6);
    let faulted = Service::new(config.with_faults(doomed_tenant_plan(5)))
        .unwrap()
        .run(&specs, &pool, &mut seeded(0xBEEF))
        .unwrap();

    // The poisoned tenant failed, alone, with a typed error and frozen
    // metrics but no outcome.
    assert_eq!(faulted.reports[5].status, ProjectStatus::Failed);
    assert!(matches!(
        faulted.reports[5].error,
        Some(ServiceError::ProjectFailed { project: 5, .. })
    ));
    assert!(faulted.reports[5].outcome.is_none());
    assert!(faulted.reports[5].metrics.is_some());
    assert_eq!(faulted.aggregate.failed, 1);

    // Every healthy tenant is bit-identical to the baseline.
    for p in 0..5 {
        let a = &baseline.reports[p];
        let b = &faulted.reports[p];
        assert_eq!(b.status, ProjectStatus::Completed, "project {p}");
        let (oa, ob) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        assert_eq!(render(&oa.labels), render(&ob.labels), "project {p} labels");
        assert_eq!(
            oa.budget_spent.to_bits(),
            ob.budget_spent.to_bits(),
            "project {p} spend"
        );
        assert_eq!(a.metrics, b.metrics, "project {p} metrics");
    }

    // The faulted run's trace, restricted to the healthy tenants, is
    // the baseline trace.
    let healthy: Vec<_> = faulted.trace.iter().filter(|(p, _)| *p < 5).collect();
    assert_eq!(healthy, baseline.trace.iter().collect::<Vec<_>>());
}

// ---------------------------------------------------------------------
// Mid-run failure: containment, resource reclamation, FIFO promotion.
// ---------------------------------------------------------------------

fn concurrent_config(mode: ExecMode) -> ServiceConfig {
    ServiceConfig::default()
        .with_capacity(3)
        .with_shards(2)
        .with_mode(mode)
        .with_watermarks(8, 20.0)
        .with_faults(ServiceFaultPlan {
            panics: vec![ProjectPanic {
                project: 0,
                at: 1.0,
            }],
            ..ServiceFaultPlan::default()
        })
}

fn run_concurrent(mode: ExecMode) -> ServiceOutcome {
    let (specs, pool) = scenario(5);
    let service = Service::new(concurrent_config(mode)).unwrap();
    service.run(&specs, &pool, &mut seeded(0xBEEF)).unwrap()
}

/// Five projects on a capacity-3 service; project 0 panics in its first
/// shard advance. The panic is contained to project 0, its slot is
/// handed to the queued projects in FIFO order, and every other tenant
/// completes within budget.
#[test]
fn a_shard_panic_fails_only_its_project_and_promotes_the_queue_in_order() {
    let outcome = run_concurrent(ExecMode::SingleThread);

    assert_eq!(outcome.reports[0].status, ProjectStatus::Failed);
    match &outcome.reports[0].error {
        Some(ServiceError::ProjectFailed { project, reason }) => {
            assert_eq!(*project, 0);
            assert!(reason.contains("panicked"), "reason: {reason}");
        }
        other => panic!("expected ProjectFailed, got {other:?}"),
    }
    assert_eq!(outcome.aggregate.failed, 1);

    for (p, report) in outcome.reports.iter().enumerate().skip(1) {
        let budget = 54.0 + 6.0 * p as f64;
        assert_eq!(report.status, ProjectStatus::Completed, "project {p}");
        let spent = report.outcome.as_ref().unwrap().budget_spent;
        assert!(spent <= budget + 1e-9, "project {p} overspent: {spent}");
    }

    // FIFO promotion: queued projects 3 and 4 activate in submission
    // order (first trace appearance decides).
    let first = |p: usize| outcome.trace.iter().position(|(q, _)| *q == p).unwrap();
    assert!(first(3) < first(4), "queue promoted out of order");
}

/// The faulted concurrent run is bit-identical between `SingleThread`
/// and `WorkerPool` at several widths: panic containment and resource
/// reclamation happen at the same deterministic points regardless of
/// the thread cap.
#[test]
fn fault_containment_is_bit_identical_across_exec_modes() {
    let single = run_concurrent(ExecMode::SingleThread);
    for workers in [1usize, 2, 4] {
        let pooled = run_concurrent(ExecMode::WorkerPool { workers });
        assert_eq!(
            single.trace, pooled.trace,
            "trace diverged at width {workers}"
        );
        for (p, (a, b)) in single.reports.iter().zip(&pooled.reports).enumerate() {
            assert_eq!(a.status, b.status, "status diverged: project {p}");
            assert_eq!(a.metrics, b.metrics, "metrics diverged: project {p}");
            assert_eq!(
                a.outcome.as_ref().map(|o| render(&o.labels)),
                b.outcome.as_ref().map(|o| render(&o.labels)),
                "labels diverged: project {p}"
            );
        }
        assert_eq!(
            single.aggregate.total_spent.to_bits(),
            pooled.aggregate.total_spent.to_bits()
        );
        assert_eq!(single.aggregate.rounds, pooled.aggregate.rounds);
    }
}

/// A scheduled abort (tenant pulls the plug mid-run) fails the project
/// through the same containment path: typed error, frozen metrics,
/// everyone else completes.
#[test]
fn a_scheduled_abort_fails_only_its_project() {
    let (specs, pool) = scenario(3);
    let config = ServiceConfig::default()
        .with_capacity(3)
        .with_shards(2)
        .with_watermarks(8, 20.0)
        .with_faults(ServiceFaultPlan {
            aborts: vec![ProjectAbort {
                project: 1,
                at: 25.0,
            }],
            ..ServiceFaultPlan::default()
        });
    let outcome = Service::new(config)
        .unwrap()
        .run(&specs, &pool, &mut seeded(0xBEEF))
        .unwrap();

    assert_eq!(outcome.reports[1].status, ProjectStatus::Failed);
    match &outcome.reports[1].error {
        Some(ServiceError::ProjectFailed { project, reason }) => {
            assert_eq!(*project, 1);
            assert!(reason.contains("abort"), "reason: {reason}");
        }
        other => panic!("expected ProjectFailed, got {other:?}"),
    }
    assert!(outcome.reports[1].metrics.is_some());
    for p in [0usize, 2] {
        assert_eq!(
            outcome.reports[p].status,
            ProjectStatus::Completed,
            "project {p}"
        );
    }
}

// ---------------------------------------------------------------------
// Crash consistency: kill-and-resume is bit-identical.
// ---------------------------------------------------------------------

fn checkpointed_config(mode: ExecMode) -> ServiceConfig {
    concurrent_config(mode).with_checkpoint_every(2)
}

/// The uninterrupted faulted run, counting checkpoint cuts.
fn run_reference(mode: ExecMode) -> (ServiceOutcome, usize) {
    let (specs, pool) = scenario(5);
    let service = Service::new(checkpointed_config(mode)).unwrap();
    let mut cuts = 0usize;
    let mut sink = |_cp: ServiceCheckpoint| {
        cuts += 1;
        RunControl::Continue
    };
    let outcome = service
        .run_with_checkpoints(&specs, &pool, &mut seeded(0xBEEF), &mut sink)
        .unwrap();
    match outcome {
        ServiceRunOutcome::Completed(outcome) => (*outcome, cuts),
        ServiceRunOutcome::Halted => panic!("nothing asked for a halt"),
    }
}

/// Run until the `halt_at`-th checkpoint, then kill; returns the
/// encoded checkpoint.
fn run_killed(mode: ExecMode, halt_at: usize) -> String {
    let (specs, pool) = scenario(5);
    let service = Service::new(checkpointed_config(mode)).unwrap();
    let mut seen = 0usize;
    let mut encoded = String::new();
    let mut sink = |cp: ServiceCheckpoint| {
        seen += 1;
        if seen == halt_at {
            encoded = cp.encode();
            RunControl::Halt
        } else {
            RunControl::Continue
        }
    };
    let outcome = service
        .run_with_checkpoints(&specs, &pool, &mut seeded(0xBEEF), &mut sink)
        .unwrap();
    assert!(matches!(outcome, ServiceRunOutcome::Halted));
    assert!(!encoded.is_empty());
    encoded
}

/// Decode + resume to completion. The caller hands the rng over seeded
/// exactly as for the original run — the service re-derives the crowd
/// and per-project seeds from it, which is what makes the resume exact.
fn resume_from(mode: ExecMode, encoded: &str) -> ServiceOutcome {
    let checkpoint = ServiceCheckpoint::decode(encoded).unwrap();
    let (specs, pool) = scenario(5);
    let service = Service::new(checkpointed_config(mode)).unwrap();
    let mut sink = |_cp: ServiceCheckpoint| RunControl::Continue;
    let outcome = service
        .resume(&specs, &pool, &mut seeded(0xBEEF), checkpoint, &mut sink)
        .unwrap();
    match outcome {
        ServiceRunOutcome::Completed(outcome) => *outcome,
        ServiceRunOutcome::Halted => panic!("resume was never asked to halt"),
    }
}

fn assert_outcomes_identical(a: &ServiceOutcome, b: &ServiceOutcome, what: &str) {
    assert_eq!(a.trace, b.trace, "{what}: trace");
    assert_eq!(a.reports.len(), b.reports.len(), "{what}: report count");
    for (p, (ra, rb)) in a.reports.iter().zip(&b.reports).enumerate() {
        assert_eq!(ra.status, rb.status, "{what}: project {p} status");
        assert_eq!(ra.metrics, rb.metrics, "{what}: project {p} metrics");
        assert_eq!(ra.error, rb.error, "{what}: project {p} error");
        assert_eq!(
            ra.outcome.as_ref().map(|o| render(&o.labels)),
            rb.outcome.as_ref().map(|o| render(&o.labels)),
            "{what}: project {p} labels"
        );
        assert_eq!(
            ra.outcome.as_ref().map(|o| o.budget_spent.to_bits()),
            rb.outcome.as_ref().map(|o| o.budget_spent.to_bits()),
            "{what}: project {p} spend"
        );
    }
    assert_eq!(
        a.aggregate.total_spent.to_bits(),
        b.aggregate.total_spent.to_bits(),
        "{what}: total spent"
    );
    assert_eq!(a.aggregate.rounds, b.aggregate.rounds, "{what}: rounds");
    assert_eq!(a.aggregate.failed, b.aggregate.failed, "{what}: failed");
    assert_eq!(
        a.aggregate.sim_duration, b.aggregate.sim_duration,
        "{what}: sim clock"
    );
}

/// Kill at two different checkpoint boundaries and resume — the result
/// must be bit-identical to the uninterrupted faulted run. The kill and
/// the resume may even happen in *different* execution modes: the
/// fingerprint canonicalizes the mode away because both modes run the
/// identical algorithm.
#[test]
fn kill_and_resume_is_bit_identical_to_the_uninterrupted_run() {
    let (reference, cuts) = run_reference(ExecMode::SingleThread);
    assert!(
        cuts >= 3,
        "scenario too short to exercise resume ({cuts} cuts)"
    );

    for halt_at in [1usize, 3] {
        let encoded = run_killed(ExecMode::SingleThread, halt_at);
        let resumed = resume_from(ExecMode::SingleThread, &encoded);
        assert_outcomes_identical(&reference, &resumed, &format!("halt at cut {halt_at}"));
    }

    // Cross-mode: killed single-threaded, resumed on the worker pool,
    // and the other way around.
    let encoded = run_killed(ExecMode::SingleThread, 2);
    let resumed = resume_from(ExecMode::WorkerPool { workers: 2 }, &encoded);
    assert_outcomes_identical(&reference, &resumed, "single-thread kill, pooled resume");

    let encoded = run_killed(ExecMode::WorkerPool { workers: 2 }, 2);
    let resumed = resume_from(ExecMode::SingleThread, &encoded);
    assert_outcomes_identical(&reference, &resumed, "pooled kill, single-thread resume");
}

/// A checkpoint cut under one configuration refuses to restore under a
/// materially different one, with a typed fingerprint error.
#[test]
fn restore_rejects_a_checkpoint_from_a_different_configuration() {
    let encoded = run_killed(ExecMode::SingleThread, 1);
    let checkpoint = ServiceCheckpoint::decode(&encoded).unwrap();
    let (specs, pool) = scenario(5);

    let drifted =
        Service::new(checkpointed_config(ExecMode::SingleThread).with_capacity(4)).unwrap();
    let mut sink = |_cp: ServiceCheckpoint| RunControl::Continue;
    let err = drifted
        .resume(&specs, &pool, &mut seeded(0xBEEF), checkpoint, &mut sink)
        .unwrap_err();
    assert!(
        err.to_string().contains("fingerprint"),
        "wrong error: {err}"
    );
}

// ---------------------------------------------------------------------
// Overload protection.
// ---------------------------------------------------------------------

/// A bounded admission queue sheds the overflow with a typed error and
/// never lets a shed project touch the pool.
#[test]
fn a_bounded_admission_queue_sheds_overflow_with_a_typed_error() {
    let (specs, pool) = scenario(4);
    let config = ServiceConfig::default()
        .with_capacity(1)
        .with_shards(2)
        .with_watermarks(8, 20.0)
        .with_max_queue_depth(1);
    let outcome = Service::new(config)
        .unwrap()
        .run(&specs, &pool, &mut seeded(0xBEEF))
        .unwrap();

    for p in 0..2 {
        assert_eq!(
            outcome.reports[p].status,
            ProjectStatus::Completed,
            "project {p}"
        );
    }
    for p in 2..4 {
        assert_eq!(
            outcome.reports[p].status,
            ProjectStatus::Rejected,
            "project {p}"
        );
        assert!(matches!(
            outcome.reports[p].error,
            Some(ServiceError::AdmissionRejected { .. })
        ));
        assert!(outcome.reports[p].metrics.is_none());
    }
    assert_eq!(outcome.aggregate.shed, 2);
    assert_eq!(outcome.aggregate.rejected, 2);
    // Shed projects never dispatched anything.
    assert!(outcome.trace.iter().all(|(p, _)| *p < 2));
}

/// The promotion backpressure floor and the settlement-backlog bound
/// are liveness-safe: with both engaged, every admitted project still
/// completes (an empty active set always promotes, so the floor cannot
/// deadlock the queue).
#[test]
fn overload_knobs_do_not_starve_admitted_projects() {
    let (specs, pool) = scenario(4);
    let config = ServiceConfig::default()
        .with_capacity(2)
        .with_shards(2)
        .with_watermarks(8, 20.0)
        .with_min_free_slot_ratio(0.5)
        .with_max_settlement_backlog(6);
    let outcome = Service::new(config)
        .unwrap()
        .run(&specs, &pool, &mut seeded(0xBEEF))
        .unwrap();

    for (p, report) in outcome.reports.iter().enumerate() {
        assert_eq!(report.status, ProjectStatus::Completed, "project {p}");
    }
    assert_eq!(outcome.aggregate.failed, 0);
    assert_eq!(outcome.aggregate.rejected, 0);
}
