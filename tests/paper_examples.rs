//! Fidelity tests against the paper's worked example (Figure 1,
//! Tables II–V, Examples 1–3): eight videos, three workers, two experts,
//! budget 30, worker cost 1, expert cost 5.

use crowdrl::inference::MajorityVote;
use crowdrl::prelude::*;
use crowdrl::rl::topk;
use crowdrl::types::rng::seeded;
use crowdrl::types::{AnnotatorId, Budget, ObjectId};

/// The pool of Table II: workers w1–w3 (cost 1, qualities 0.65/0.62/0.60)
/// and experts w4–w5 (cost 5, qualities 0.985/1.0).
fn table2_pool() -> AnnotatorPool {
    use crowdrl::types::{AnnotatorKind, AnnotatorProfile, ConfusionMatrix};
    let profiles = vec![
        AnnotatorProfile::new(AnnotatorId(0), AnnotatorKind::Worker, 1.0).unwrap(),
        AnnotatorProfile::new(AnnotatorId(1), AnnotatorKind::Worker, 1.0).unwrap(),
        AnnotatorProfile::new(AnnotatorId(2), AnnotatorKind::Worker, 1.0).unwrap(),
        AnnotatorProfile::new(AnnotatorId(3), AnnotatorKind::Expert, 5.0).unwrap(),
        AnnotatorProfile::new(AnnotatorId(4), AnnotatorKind::Expert, 5.0).unwrap(),
    ];
    let latent = vec![
        // Table IV gives w1's confusion matrix exactly.
        ConfusionMatrix::from_rows(&[vec![0.60, 0.40], vec![0.30, 0.70]]).unwrap(),
        ConfusionMatrix::with_accuracy(2, 0.62).unwrap(),
        ConfusionMatrix::with_accuracy(2, 0.60).unwrap(),
        // Table V gives w4's matrix exactly.
        ConfusionMatrix::from_rows(&[vec![0.98, 0.02], vec![0.01, 0.99]]).unwrap(),
        ConfusionMatrix::with_accuracy(2, 1.0).unwrap(),
    ];
    AnnotatorPool::from_parts(profiles, latent).unwrap()
}

#[test]
fn table2_qualities_match_the_paper() {
    let pool = table2_pool();
    // §III-B: "The estimated quality of w4 is (0.98+0.99)/2 = 0.985".
    let w4 = pool.latent_confusion(AnnotatorId(3)).quality();
    assert!((w4 - 0.985).abs() < 1e-12);
    let w5 = pool.latent_confusion(AnnotatorId(4)).quality();
    assert!((w5 - 1.0).abs() < 1e-12);
    assert_eq!(pool.workers().count(), 3);
    assert_eq!(pool.experts().count(), 2);
    assert_eq!(pool.min_cost(), 1.0);
}

#[test]
fn example1_majority_voting_on_o1() {
    // Example 1: w1, w3, w4 label o1 as {positive, negative, positive};
    // majority voting infers positive.
    let mut answers = AnswerSet::new(8);
    for (annotator, label) in [(0usize, 0usize), (2, 1), (3, 0)] {
        answers
            .record(Answer {
                object: ObjectId(0),
                annotator: AnnotatorId(annotator),
                label: ClassId(label),
            })
            .unwrap();
    }
    let result = MajorityVote.infer(&answers, 2, 5).unwrap();
    assert_eq!(
        result.label(ObjectId(0)),
        Some(ClassId(0)),
        "positive wins 2-1"
    );
}

#[test]
fn example2_costs_add_up() {
    // Example 2: o8 assigned to w1, w3 (workers) and w5 (expert):
    // r_cost = 1 + 1 + 5 = 7.
    let pool = table2_pool();
    let cost: f64 = [0usize, 2, 4]
        .iter()
        .map(|&i| pool.profile(AnnotatorId(i)).cost)
        .sum();
    assert_eq!(cost, 7.0);
}

#[test]
fn example3_table3_topk_selects_o8() {
    // Table III Q-values (columns o1..o8, rows w1..w5; 'x' = labelled
    // objects masked at -inf). The paper selects o8 (top-3 sum 9) and
    // assigns it to w1, w3, w5.
    let ninf = f64::NEG_INFINITY;
    let q_by_object: Vec<Vec<f64>> = vec![
        vec![ninf; 5],
        vec![3.0, 1.0, 1.0, 2.0, 2.0],
        vec![1.0, 1.0, 1.0, 2.0, 4.0],
        vec![ninf; 5],
        vec![ninf; 5],
        vec![1.0, 2.0, 1.0, 1.0, 2.0],
        vec![3.0, 2.0, 0.0, 1.0, 1.0],
        vec![4.0, 1.0, 3.0, 0.0, 2.0],
    ];
    let sums: Vec<f64> = q_by_object
        .iter()
        .map(|row| topk::top_k_sum(row, 3))
        .collect();
    let winner = crowdrl::types::prob::argmax(&sums).unwrap();
    assert_eq!(winner, 7, "o8 has the largest top-3 sum");
    assert_eq!(sums[7], 9.0);
    let chosen = topk::top_k_indices(&q_by_object[7], 3);
    assert_eq!(chosen, vec![0, 2, 4], "w1, w3, w5 as in the paper");
}

#[test]
fn figure1_workflow_labels_8_videos_within_budget_30() {
    // The running example end-to-end: 8 videos, budget 30. Features are
    // fluency/volume as in Figure 1; positives cluster high, negatives low.
    let mut rng = seeded(1);
    let dataset = DatasetSpec::gaussian("videos", 8, 2, 2)
        .with_separation(4.0)
        .generate(&mut rng)
        .unwrap();
    let pool = table2_pool();
    let config = CrowdRlConfig::builder()
        .budget(30.0)
        .initial_ratio(0.25) // Example 2: α = 0.25 → 2 objects
        .assignment_k(3)
        .build()
        .unwrap();
    let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
    assert!(
        outcome.budget_spent <= 30.0 + 1e-9,
        "B = 30 is a hard ceiling"
    );
    assert_eq!(outcome.coverage(), 1.0, "all 8 videos end labelled");
    let m = evaluate_labels(&dataset, &outcome.labels).unwrap();
    assert!(m.accuracy >= 0.5, "accuracy {}", m.accuracy);
}

#[test]
fn platform_charges_table2_prices() {
    let mut rng = seeded(2);
    let dataset = DatasetSpec::gaussian("videos", 8, 2, 2)
        .generate(&mut rng)
        .unwrap();
    let pool = table2_pool();
    let mut platform = crowdrl::sim::Platform::new(&dataset, &pool, Budget::new(30.0).unwrap());
    // Example 2's second-iteration panel: w1, w3, w5 on o6 → spend 7.
    platform.ask(ObjectId(5), AnnotatorId(0), &mut rng).unwrap();
    platform.ask(ObjectId(5), AnnotatorId(2), &mut rng).unwrap();
    platform.ask(ObjectId(5), AnnotatorId(4), &mut rng).unwrap();
    assert_eq!(platform.budget().spent(), 7.0);
    assert_eq!(platform.budget().remaining(), 23.0);
}
