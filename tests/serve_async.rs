//! Integration tests of the asynchronous labelling runtime: determinism
//! across execution modes, equivalence with the batch workflow, and the
//! timeout/requeue machinery.

use crowdrl::prelude::*;
use crowdrl::serve::AsyncRuntime;
use crowdrl::sim::DynamicsSpec;
use crowdrl::types::rng::seeded;

fn setup(n: usize, seed: u64) -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(seed);
    let dataset = DatasetSpec::gaussian("serve-test", n, 4, 2)
        .with_separation(3.5)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
    (dataset, pool)
}

fn quick_config(budget: f64) -> CrowdRlConfig {
    CrowdRlConfig::builder()
        .budget(budget)
        .initial_ratio(0.1)
        .batch_per_iter(4)
        .candidate_cap(32)
        .build()
        .unwrap()
}

fn accuracy(labels: &[Option<ClassId>], dataset: &Dataset) -> f64 {
    labels
        .iter()
        .enumerate()
        .filter(|(i, l)| **l == Some(dataset.truth(*i)))
        .count() as f64
        / dataset.len() as f64
}

#[test]
fn async_runs_are_deterministic_given_a_seed() {
    let (dataset, pool) = setup(60, 1);
    let crowdrl = CrowdRl::new(quick_config(150.0));
    let serve = ServeConfig::default();
    let run = || {
        let mut rng = seeded(2);
        crowdrl
            .run_async(&dataset, &pool, &serve, &mut rng)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.trace, b.trace,
        "event traces diverged between identical runs"
    );
    assert_eq!(a.outcome.labels, b.outcome.labels);
    assert_eq!(a.outcome.budget_spent, b.outcome.budget_spent);
    // Wall-clock readings (wall_seconds, events_per_second) vary between
    // runs; every simulated-time quantity must not.
    let normalize = |mut m: ServiceMetrics| {
        m.wall_seconds = 0.0;
        m.events_per_second = 0.0;
        m
    };
    assert_eq!(normalize(a.metrics), normalize(b.metrics));
}

#[test]
fn worker_pool_mode_replays_the_single_thread_trace() {
    let (dataset, pool) = setup(60, 3);
    let crowdrl = CrowdRl::new(quick_config(150.0));
    let run = |mode| {
        let serve = ServeConfig::default().with_mode(mode);
        let mut rng = seeded(4);
        crowdrl
            .run_async(&dataset, &pool, &serve, &mut rng)
            .unwrap()
    };
    let single = run(ExecMode::SingleThread);
    let pooled = run(ExecMode::WorkerPool { workers: 3 });
    // The entire observable run is identical: every dispatched question,
    // every delivery, every expiry, in the same order at the same
    // simulated times — and therefore the same labels and spend.
    assert_eq!(single.trace, pooled.trace);
    assert_eq!(single.outcome.labels, pooled.outcome.labels);
    assert_eq!(single.outcome.budget_spent, pooled.outcome.budget_spent);
    // Wall-clock differs between modes; everything else must not.
    assert_eq!(single.metrics.dispatched, pooled.metrics.dispatched);
    assert_eq!(
        single.metrics.answers_delivered,
        pooled.metrics.answers_delivered
    );
    assert_eq!(single.metrics.timeouts, pooled.metrics.timeouts);
    assert_eq!(single.metrics.latency_p50, pooled.metrics.latency_p50);
}

#[test]
fn async_accuracy_tracks_the_batch_workflow() {
    let (dataset, pool) = setup(100, 5);
    let crowdrl = CrowdRl::new(quick_config(250.0));
    let mut batch_rng = seeded(6);
    let batch = crowdrl.run(&dataset, &pool, &mut batch_rng).unwrap();
    let mut async_rng = seeded(6);
    let result = crowdrl
        .run_async(&dataset, &pool, &ServeConfig::default(), &mut async_rng)
        .unwrap();
    let batch_acc = accuracy(&batch.labels, &dataset);
    let async_acc = accuracy(&result.outcome.labels, &dataset);
    // Same dataset, pool and budget: the asynchronous service must land
    // within a few points of the synchronous reference (the two runs
    // draw different RNG streams, so exact parity is not expected).
    assert!(
        (batch_acc - async_acc).abs() <= 0.05 + 1e-9,
        "batch {batch_acc} vs async {async_acc}"
    );
    assert!(batch_acc >= 0.9, "batch accuracy degraded: {batch_acc}");
    assert!(async_acc >= 0.9, "async accuracy degraded: {async_acc}");
    assert_eq!(result.outcome.coverage(), 1.0);
    assert!(result.outcome.budget_spent <= 250.0 + 1e-9);
    // The service actually serviced: answers flowed, refreshes ran.
    assert!(result.metrics.answers_delivered > 0);
    assert!(result.metrics.refreshes > 0);
    assert!(result.metrics.latency_p50 > 0.0);
}

#[test]
fn timeouts_requeue_and_the_run_still_completes() {
    let (dataset, pool) = setup(50, 7);
    // Flaky crowd and a tight timeout: drops and expiries everywhere.
    let serve = ServeConfig {
        dynamics: DynamicsSpec {
            worker_mean_latency: 10.0,
            expert_mean_latency: 30.0,
            worker_drop_rate: 0.35,
            expert_drop_rate: 0.2,
        },
        timeout: 25.0,
        ..ServeConfig::default()
    };
    let crowdrl = CrowdRl::new(quick_config(150.0));
    let mut rng = seeded(8);
    let result = crowdrl
        .run_async(&dataset, &pool, &serve, &mut rng)
        .unwrap();
    assert!(
        result.metrics.timeouts > 0,
        "flaky crowd produced no timeouts"
    );
    assert!(result.metrics.requeues > 0, "timeouts never requeued");
    // Timeouts release their reservations: what was charged is exactly
    // the delivered answers, and the budget held.
    assert!(result.outcome.budget_spent <= 150.0 + 1e-9);
    assert_eq!(
        result.outcome.total_answers,
        result.metrics.answers_delivered
    );
    // The classifier fallback still labels everything.
    assert_eq!(result.outcome.coverage(), 1.0);
}

#[test]
fn zero_budget_async_run_terminates_empty() {
    let (dataset, pool) = setup(20, 9);
    let runtime = AsyncRuntime::new(quick_config(0.0), ServeConfig::default());
    let mut rng = seeded(10);
    let result = runtime.run(&dataset, &pool, &mut rng).unwrap();
    assert_eq!(result.metrics.answers_delivered, 0);
    assert_eq!(result.outcome.budget_spent, 0.0);
    assert_eq!(result.outcome.coverage(), 0.0);
}
