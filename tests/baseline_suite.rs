//! Every labelling framework must satisfy the same contract on a shared
//! scenario: respect the budget, produce well-formed outcomes, and land in
//! a sane quality band. Also checks the paper's headline orderings on a
//! seed-averaged comparison.

use crowdrl::baselines::{paper_baselines, BaselineParams, CrowdRlStrategy, LabellingStrategy};
use crowdrl::prelude::*;
use crowdrl::types::rng::seeded;

fn scenario(seed: u64) -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(seed);
    let dataset = DatasetSpec::gaussian("suite", 120, 8, 2)
        .with_separation(2.2)
        .with_label_noise(0.04)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 2).generate(2, &mut rng).unwrap();
    (dataset, pool)
}

fn all_methods() -> Vec<Box<dyn LabellingStrategy>> {
    let mut methods = paper_baselines();
    methods.push(Box::new(CrowdRlStrategy::full()));
    methods
}

#[test]
fn every_framework_satisfies_the_contract() {
    let (dataset, pool) = scenario(1);
    let budget = 500.0;
    let params = BaselineParams::with_budget(budget);
    for method in all_methods() {
        let mut rng = seeded(2);
        let outcome = method.run(&dataset, &pool, &params, &mut rng).unwrap();
        // Budget is a hard ceiling.
        assert!(
            outcome.budget_spent <= budget + 1e-9,
            "{} overspent: {}",
            method.name(),
            outcome.budget_spent
        );
        // Outcome shapes are well-formed.
        assert_eq!(outcome.labels.len(), dataset.len(), "{}", method.name());
        assert_eq!(
            outcome.label_states.len(),
            dataset.len(),
            "{}",
            method.name()
        );
        for (label, state) in outcome.labels.iter().zip(&outcome.label_states) {
            assert_eq!(*label, state.label(), "{}", method.name());
        }
        // Labels are in range.
        for label in outcome.labels.iter().flatten() {
            assert!(label.index() < dataset.num_classes(), "{}", method.name());
        }
        // Metrics computable and sane.
        let m = evaluate_labels(&dataset, &outcome.labels).unwrap();
        assert!(
            m.accuracy > 0.3,
            "{} accuracy {}",
            method.name(),
            m.accuracy
        );
        assert!((0.0..=1.0).contains(&m.coverage), "{}", method.name());
    }
}

#[test]
fn crowdrl_beats_oba_on_noisy_workers() {
    // The paper's most robust ordering: OBA trusts noisy humans blindly
    // and performs worst; CrowdRL models them. Averaged over seeds.
    let mut crowdrl_total = 0.0;
    let mut oba_total = 0.0;
    let seeds = [3u64, 4, 5];
    for &s in &seeds {
        let (dataset, pool) = scenario(s);
        let params = BaselineParams::with_budget(500.0);
        let acc = |method: &dyn LabellingStrategy, run_seed: u64| {
            let mut rng = seeded(run_seed);
            let outcome = method.run(&dataset, &pool, &params, &mut rng).unwrap();
            evaluate_labels(&dataset, &outcome.labels).unwrap().accuracy
        };
        crowdrl_total += acc(&CrowdRlStrategy::full(), s + 100);
        oba_total += acc(&crowdrl::baselines::Oba::default(), s + 100);
    }
    let (crowdrl_mean, oba_mean) = (
        crowdrl_total / seeds.len() as f64,
        oba_total / seeds.len() as f64,
    );
    assert!(
        crowdrl_mean > oba_mean + 0.05,
        "CrowdRL ({crowdrl_mean:.3}) must clearly beat OBA ({oba_mean:.3})"
    );
}

#[test]
fn frameworks_degrade_gracefully_without_experts() {
    // A worker-only pool is legal everywhere (IDLE's escalation tier is
    // simply empty).
    let mut rng = seeded(6);
    let dataset = DatasetSpec::gaussian("noexp", 60, 4, 2)
        .with_separation(2.5)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(4, 0).generate(2, &mut rng).unwrap();
    let params = BaselineParams::with_budget(250.0);
    for method in all_methods() {
        let mut rng = seeded(7);
        let outcome = method.run(&dataset, &pool, &params, &mut rng).unwrap();
        assert!(outcome.budget_spent <= 250.0 + 1e-9, "{}", method.name());
    }
}

#[test]
fn frameworks_handle_expert_only_pools() {
    let mut rng = seeded(8);
    let dataset = DatasetSpec::gaussian("onlyexp", 40, 4, 2)
        .with_separation(2.5)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(0, 2).generate(2, &mut rng).unwrap();
    let params = BaselineParams::with_budget(400.0);
    for method in all_methods() {
        let mut rng = seeded(9);
        let outcome = method.run(&dataset, &pool, &params, &mut rng).unwrap();
        assert!(outcome.budget_spent <= 400.0 + 1e-9, "{}", method.name());
        let m = evaluate_labels(&dataset, &outcome.labels).unwrap();
        // Experts are near-perfect, so labelled objects should be mostly
        // right — except where a framework's own AI worker (OBA's k-NN)
        // labels the tail, which this small budget can leave undertrained.
        if m.coverage > 0.3 {
            assert!(m.accuracy / m.coverage > 0.5, "{}", method.name());
        }
    }
}
