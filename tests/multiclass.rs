//! Multi-class labelling: the data model is |C|-generic throughout
//! (`ConfusionMatrix` is |C|×|C|, the classifier head is softmax over |C|),
//! so the full pipeline must work beyond the paper's binary datasets.

use crowdrl::baselines::{paper_baselines, BaselineParams};
use crowdrl::inference::{DawidSkene, MajorityVote};
use crowdrl::prelude::*;
use crowdrl::types::rng::seeded;
use crowdrl::types::{AnnotatorId, ObjectId};

fn scenario(k: usize, seed: u64) -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(seed);
    let dataset = DatasetSpec::gaussian("mc", 120, 10, k)
        .with_separation(3.0)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 1).generate(k, &mut rng).unwrap();
    (dataset, pool)
}

#[test]
fn crowdrl_labels_a_four_class_dataset() {
    let (dataset, pool) = scenario(4, 1);
    let config = CrowdRlConfig::builder().budget(500.0).build().unwrap();
    let mut rng = seeded(2);
    let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
    assert!(outcome.budget_spent <= 500.0 + 1e-9);
    let m = evaluate_labels(&dataset, &outcome.labels).unwrap();
    // Chance is 0.25; the pipeline must do far better.
    assert!(m.accuracy > 0.55, "4-class accuracy {}", m.accuracy);
    assert!(m.macro_f1 > 0.5, "macro F1 {}", m.macro_f1);
    // All labels in range.
    for l in outcome.labels.iter().flatten() {
        assert!(l.index() < 4);
    }
}

#[test]
fn inference_models_handle_three_classes() {
    let (dataset, pool) = scenario(3, 3);
    let mut rng = seeded(4);
    let mut answers = AnswerSet::new(dataset.len());
    for i in 0..dataset.len() {
        for p in pool.profiles() {
            let label = pool.sample_answer(p.id, dataset.truth(i), &mut rng);
            answers
                .record(Answer {
                    object: ObjectId(i),
                    annotator: p.id,
                    label,
                })
                .unwrap();
        }
    }
    let mv = MajorityVote.infer(&answers, 3, pool.len()).unwrap();
    let ds = DawidSkene::default()
        .infer(&answers, 3, pool.len())
        .unwrap();
    for r in [&mv, &ds] {
        assert!(r.validate(3, 1e-6));
        let acc = (0..dataset.len())
            .filter(|&i| r.label(ObjectId(i)) == Some(dataset.truth(i)))
            .count() as f64
            / dataset.len() as f64;
        assert!(acc > 0.6, "3-class inference accuracy {acc}");
    }
    // Estimated confusion matrices are 3x3 row-stochastic.
    for m in &ds.confusions {
        assert_eq!(m.num_classes(), 3);
        m.validate(1e-6).unwrap();
    }
    // Expert quality should be recovered as the highest.
    let q = ds.qualities();
    let expert = pool.experts().next().unwrap();
    let best = crowdrl::types::prob::argmax(&q).unwrap();
    assert_eq!(AnnotatorId(best), expert, "qualities {q:?}");
}

#[test]
fn baselines_complete_on_multiclass() {
    let (dataset, pool) = scenario(3, 5);
    let params = BaselineParams::with_budget(400.0);
    for strategy in paper_baselines() {
        let mut rng = seeded(6);
        let outcome = strategy.run(&dataset, &pool, &params, &mut rng).unwrap();
        assert!(outcome.budget_spent <= 400.0 + 1e-9, "{}", strategy.name());
        let m = evaluate_labels(&dataset, &outcome.labels).unwrap();
        assert!(
            m.accuracy > 0.33,
            "{} accuracy {}",
            strategy.name(),
            m.accuracy
        );
    }
}

#[test]
fn unbalanced_classes_are_handled() {
    let mut rng = seeded(7);
    let dataset = DatasetSpec::gaussian("imb", 150, 8, 2)
        .with_separation(3.0)
        .with_class_balance(vec![0.85, 0.15])
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
    let config = CrowdRlConfig::builder().budget(450.0).build().unwrap();
    let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
    let m = evaluate_labels(&dataset, &outcome.labels).unwrap();
    // Must beat the majority-class guess meaningfully on macro metrics.
    assert!(m.macro_f1 > 0.6, "imbalanced macro F1 {}", m.macro_f1);
}
