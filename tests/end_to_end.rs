//! End-to-end integration tests: the full CrowdRL pipeline through the
//! facade crate, spanning simulator, inference, RL, and workflow crates.

use crowdrl::core::config::Ablation;
use crowdrl::prelude::*;
use crowdrl::types::rng::seeded;

fn scenario(n: usize, separation: f64, seed: u64) -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(seed);
    let dataset = DatasetSpec::gaussian("e2e", n, 6, 2)
        .with_separation(separation)
        .with_label_noise(0.03)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
    (dataset, pool)
}

fn accuracy(dataset: &Dataset, outcome: &crowdrl::core::LabellingOutcome) -> f64 {
    outcome
        .labels
        .iter()
        .enumerate()
        .filter(|(i, l)| **l == Some(dataset.truth(*i)))
        .count() as f64
        / dataset.len() as f64
}

#[test]
fn full_pipeline_labels_everything_accurately() {
    let (dataset, pool) = scenario(150, 3.0, 1);
    let config = CrowdRlConfig::builder().budget(600.0).build().unwrap();
    let mut rng = seeded(2);
    let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
    assert_eq!(outcome.coverage(), 1.0, "every object must end labelled");
    assert!(
        outcome.budget_spent <= 600.0 + 1e-9,
        "budget is a hard ceiling"
    );
    let acc = accuracy(&dataset, &outcome);
    assert!(acc > 0.8, "end-to-end accuracy {acc}");
    let metrics = evaluate_labels(&dataset, &outcome.labels).unwrap();
    assert!((metrics.accuracy - acc).abs() < 1e-12);
    assert!(metrics.f1 > 0.75, "F1 {}", metrics.f1);
}

#[test]
fn budget_is_never_exceeded_even_when_tiny() {
    for budget in [0.0, 1.0, 7.0, 33.0] {
        let (dataset, pool) = scenario(60, 2.5, 3);
        let config = CrowdRlConfig::builder().budget(budget).build().unwrap();
        let mut rng = seeded(4);
        let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
        assert!(
            outcome.budget_spent <= budget + 1e-9,
            "spent {} of {budget}",
            outcome.budget_spent
        );
    }
}

#[test]
fn cross_trained_policy_holds_up_against_random_policy() {
    // The paper evaluates CrowdRL with an offline cross-trained Q-network
    // (§VI-A.4); a from-scratch network inside one short episode has no
    // time to learn. Cross-train on a donor dataset first, then compare
    // against the doubly-random ablation (random TS + random TA), averaged
    // over seeds.
    use crowdrl::baselines::BaselineParams;
    use crowdrl::eval::{cross_train, Condition};

    let donor = {
        let mut rng = seeded(40);
        let dataset = DatasetSpec::gaussian("donor", 100, 6, 2)
            .with_separation(2.0)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
        Condition {
            dataset,
            pool,
            params: BaselineParams::with_budget(350.0),
        }
    };
    let base = CrowdRlConfig::builder().budget(450.0).build().unwrap();
    let params = cross_train(&base, &[donor], 41).unwrap();

    let (dataset, pool) = scenario(150, 2.0, 5);
    let run = |ablation: Ablation, pretrained: Option<Vec<f32>>, seed: u64| {
        let mut config = CrowdRlConfig::builder().budget(450.0).build().unwrap();
        config.ablation = ablation;
        config.pretrained_dqn = pretrained;
        let mut rng = seeded(seed);
        let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
        accuracy(&dataset, &outcome)
    };
    let seeds = [11u64, 12, 13];
    let full: f64 = seeds
        .iter()
        .map(|&s| run(Ablation::default(), Some(params.clone()), s))
        .sum::<f64>()
        / seeds.len() as f64;
    let random: f64 = seeds
        .iter()
        .map(|&s| {
            run(
                Ablation {
                    random_task_selection: true,
                    random_task_assignment: true,
                },
                None,
                s,
            )
        })
        .sum::<f64>()
        / seeds.len() as f64;
    // Both policies share the budget pacing machinery, so random is a
    // strong opponent; the learned policy must at minimum hold its own.
    assert!(
        full + 0.03 > random,
        "cross-trained policy ({full:.3}) should not lose clearly to random ({random:.3})"
    );
}

#[test]
fn enrichment_saves_money_on_easy_tasks() {
    // On a very separable task, the classifier should take over a chunk of
    // the labelling, leaving budget unspent or labels purchased low.
    let (dataset, pool) = scenario(200, 4.5, 6);
    let config = CrowdRlConfig::builder().budget(900.0).build().unwrap();
    let mut rng = seeded(7);
    let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
    assert!(
        outcome.enriched_count > 20,
        "classifier should label a meaningful share, got {}",
        outcome.enriched_count
    );
    let acc = accuracy(&dataset, &outcome);
    assert!(acc > 0.85, "easy-task accuracy {acc}");
}

#[test]
fn outcome_bookkeeping_is_consistent() {
    let (dataset, pool) = scenario(80, 2.5, 8);
    let config = CrowdRlConfig::builder().budget(300.0).build().unwrap();
    let mut rng = seeded(9);
    let outcome = CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap();
    assert_eq!(outcome.labels.len(), dataset.len());
    assert_eq!(outcome.label_states.len(), dataset.len());
    // Label states agree with labels.
    for (label, state) in outcome.labels.iter().zip(&outcome.label_states) {
        assert_eq!(*label, state.label());
    }
    // Enriched count matches the states.
    let enriched = outcome
        .label_states
        .iter()
        .filter(|s| matches!(s, LabelState::Enriched(_)))
        .count();
    assert_eq!(enriched, outcome.enriched_count);
    // Trace iterations are sequential.
    for (i, s) in outcome.trace.iter().enumerate() {
        assert_eq!(s.iteration, i);
    }
}
