//! Property-based staleness hunt for the decide-path pruning engine:
//! twin agents — one pruned (cached annotator activations + exact
//! shortlists), one exhaustive — are driven through arbitrary
//! interleavings of profile updates (quality/load drift), quarantine
//! and release, slot exhaustion, answer arrival, and online training.
//! After **every** mutation both agents select from identical inputs
//! and identically-seeded RNGs; any stale cached activation or unsound
//! pruning bound shows up as a divergent panel or RNG stream.

use std::collections::HashMap;

use crowdrl::core::agent::SelectionAgent;
use crowdrl::core::features::{StateSnapshot, FEATURE_DIM};
use crowdrl::core::{Ablation, DecideConfig, DecideMode, Exploration};
use crowdrl::prelude::*;
use crowdrl::rl::DqnConfig;
use crowdrl::types::rng::seeded;
use proptest::prelude::*;

const POOL: usize = 24;
const OBJECTS: usize = 8;
const CLASSES: usize = 2;

fn dqn_config() -> DqnConfig {
    DqnConfig {
        hidden: vec![16, 8],
        // Tiny replay gate so the training op actually steps the
        // parameters (and bumps the cache's params generation).
        min_replay: 4,
        batch_size: 4,
        ..DqnConfig::default()
    }
}

fn twin(seed: u64, mode: DecideMode) -> SelectionAgent {
    let mut rng = seeded(seed);
    SelectionAgent::new(
        dqn_config(),
        &Exploration::Ucb { scale: 0.1 },
        DecideConfig { mode, shortlist: 4 },
        None,
        &mut rng,
    )
    .unwrap()
}

/// The mutable world both agents observe: everything a serve loop would
/// change between refreshes.
struct World {
    profiles: Vec<AnnotatorProfile>,
    quarantined: Vec<bool>,
    slots: HashMap<AnnotatorId, usize>,
    answers: AnswerSet,
    qualities: Vec<f64>,
    loads: Vec<usize>,
}

impl World {
    fn new() -> Self {
        let profiles = (0..POOL)
            .map(|i| {
                let expert = i >= POOL - 2;
                AnnotatorProfile::new(
                    AnnotatorId(i),
                    if expert {
                        AnnotatorKind::Expert
                    } else {
                        AnnotatorKind::Worker
                    },
                    if expert { 8.0 } else { 1.0 },
                )
                .unwrap()
            })
            .collect();
        Self {
            profiles,
            quarantined: vec![false; POOL],
            slots: HashMap::new(),
            answers: AnswerSet::new(OBJECTS),
            // A few quality tiers, like a pool where the inference
            // engine has profiled some annotators and left the rest at
            // the prior: enough sharing that column dedup engages (a
            // fully-distinct pool makes the grid decline to dense — also
            // correct, but then this property would be vacuous), while
            // the mutation ops diversify it over the run.
            qualities: (0..POOL).map(|i| 0.45 + 0.1 * (i % 3) as f64).collect(),
            loads: vec![0; POOL],
        }
    }

    /// The live pool a serve loop would hand to `select` (quarantined
    /// annotators filtered out, like `core_loop::decide`).
    fn live(&self) -> Vec<AnnotatorProfile> {
        self.profiles
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.quarantined[*i])
            .map(|(_, p)| p.clone())
            .collect()
    }

    fn snapshot(&self, step: usize) -> StateSnapshot {
        StateSnapshot {
            qualities: self.qualities.clone(),
            annotator_load: self.loads.clone(),
            budget_spent_fraction: (step as f64 * 0.03).min(0.9),
            labelled_fraction: (step as f64 * 0.02).min(0.8),
            enriched_fraction: 0.0,
            max_cost: 8.0,
            phi_trust: 0.0,
        }
    }
}

/// One mutation drawn from the op stream. `target`/`value` are raw
/// entropy; each op maps them into its own domain.
fn apply(world: &mut World, op: u8, target: usize, value: u16) {
    let j = target % POOL;
    match op % 6 {
        // Profile update: inferred quality drifts — the cached
        // activation for j is keyed on these bits and must recompute.
        0 => world.qualities[j] = 0.05 + (value % 90) as f64 / 100.0,
        // Profile update: load changes (also part of the cache key).
        1 => world.loads[j] = (value % 8) as usize,
        // Quarantine: j leaves the live pool; serve invalidates its
        // cache entry (dirty-set discipline).
        2 => world.quarantined[j] = true,
        // Release from quarantine: j re-enters with whatever profile it
        // has now — a stale pre-quarantine activation must not be used.
        3 => world.quarantined[j] = false,
        // Slot exhaustion / partial refill on the shared pool.
        4 => {
            world.slots.insert(AnnotatorId(j), (value % 3) as usize);
        }
        // Answer arrival: flips the pair mask for (object, j).
        _ => {
            let object = ObjectId(target % OBJECTS);
            if !world.answers.has_answered(object, AnnotatorId(j)) {
                world
                    .answers
                    .record(Answer {
                        object,
                        annotator: AnnotatorId(j),
                        label: ClassId((value % CLASSES as u16) as usize),
                    })
                    .unwrap();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
    })]

    #[test]
    fn no_interleaving_ever_serves_a_stale_cached_activation(
        ops in proptest::collection::vec((0u8..6, 0usize..64, 0u16..1024), 4..28),
        train_every in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let mut pruned = twin(seed, DecideMode::Pruned);
        let mut exhaustive = twin(seed, DecideMode::Exhaustive);
        let mut world = World::new();
        let candidates: Vec<(ObjectId, Vec<f64>)> = (0..OBJECTS)
            .map(|i| {
                let p = 0.35 + (i as f64 * 0.07) % 0.4;
                (ObjectId(i), vec![p, 1.0 - p])
            })
            .collect();
        let labelled = LabelledSet::new(OBJECTS);

        for (step, &(op, target, value)) in ops.iter().enumerate() {
            apply(&mut world, op, target, value);
            if op % 6 == 2 || op % 6 == 3 {
                // Mirror serve's quarantine hook on both twins so the
                // comparison covers the invalidation path itself.
                pruned.invalidate_annotator(target % POOL);
                exhaustive.invalidate_annotator(target % POOL);
            }

            let live = world.live();
            let snapshot = world.snapshot(step);
            let mut rng_p = seeded(seed ^ (step as u64).wrapping_mul(0x9E37));
            let mut rng_e = seeded(seed ^ (step as u64).wrapping_mul(0x9E37));
            let picks_p = pruned.select(
                &candidates, &live, Some(&world.slots), &world.answers,
                &labelled, &snapshot, 20.0, 3, 3, Ablation::default(), &mut rng_p,
            );
            let picks_e = exhaustive.select(
                &candidates, &live, Some(&world.slots), &world.answers,
                &labelled, &snapshot, 20.0, 3, 3, Ablation::default(), &mut rng_e,
            );
            // Identical panels, identical embeddings (the Assignment
            // carries the full per-pick state-action vectors — a stale
            // cached block would differ even if the argmax survived),
            // identical RNG consumption.
            prop_assert_eq!(&picks_p, &picks_e, "step {}: panels diverged", step);
            prop_assert_eq!(
                rng_p.state(), rng_e.state(),
                "step {}: RNG streams diverged", step
            );

            // The pruned twin must actually be pruning somewhere in the
            // run, otherwise this property is vacuous.
            let stats = pruned.decide_stats();
            prop_assert!(stats.scored_pairs <= stats.total_pairs);

            // Periodically train both twins on the identical experience
            // so the cache must survive parameter-generation bumps.
            if step % train_every == train_every - 1 && !picks_p.is_empty() {
                let rewards = vec![0.5; picks_p.len()];
                let next = vec![vec![0.1; FEATURE_DIM]];
                pruned.remember(&picks_p, &rewards, &next, false);
                exhaustive.remember(&picks_e, &rewards, &next, false);
                let mut tr_p = seeded(seed ^ 0xBEEF ^ step as u64);
                let mut tr_e = seeded(seed ^ 0xBEEF ^ step as u64);
                let loss_p = pruned.train(2, &mut tr_p);
                let loss_e = exhaustive.train(2, &mut tr_e);
                prop_assert_eq!(
                    loss_p.map(f32::to_bits), loss_e.map(f32::to_bits),
                    "step {}: training diverged", step
                );
            }
        }

        // Across the whole interleaving the shortlist must have pruned
        // real work (column dedup across the tiered pool) and the
        // activation cache must have been consulted — otherwise this
        // property tested nothing.
        let stats = pruned.decide_stats();
        prop_assert!(stats.total_pairs > 0);
        prop_assert!(
            stats.scored_pairs < stats.total_pairs,
            "pruning never engaged: scored {} of {}",
            stats.scored_pairs,
            stats.total_pairs
        );
        prop_assert!(stats.cache_hits + stats.cache_misses > 0);
    }
}
