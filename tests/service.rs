//! Integration tests for the multi-tenant service: pinned golden labels
//! for a 3-project shared-pool run, bit-identity between execution
//! modes at several pool widths, admission control, and per-project
//! budget isolation.
//!
//! If a PR *intentionally* changes the numerics, re-capture the golden
//! constants with `GOLDEN_CAPTURE=1 cargo test --test service -- golden`.

use crowdrl::prelude::*;
use crowdrl::types::rng::seeded;

/// Labels rendered one character per object (class digit, `.` for
/// unlabelled) — compact to pin, precise enough to catch a single flip.
fn render(labels: &[Option<ClassId>]) -> String {
    labels
        .iter()
        .map(|l| match l {
            Some(ClassId(c)) => char::from_digit(*c as u32, 10).unwrap_or('?'),
            None => '.',
        })
        .collect()
}

/// Three small projects with different sizes, budgets and priorities,
/// sharing a 12-annotator pool.
fn scenario() -> (Vec<ProjectSpec>, AnnotatorPool) {
    let mut rng = seeded(0xC0FFEE);
    let pool = PoolSpec::new(9, 3).generate(2, &mut rng).unwrap();
    let sizes = [30usize, 24, 36];
    let budgets = [90.0, 72.0, 108.0];
    let specs = (0..3)
        .map(|p| {
            let dataset = DatasetSpec::gaussian(format!("svc{p}"), sizes[p], 4, 2)
                .with_separation(2.5)
                .generate(&mut rng)
                .unwrap();
            let config = CrowdRlConfig::builder().budget(budgets[p]).build().unwrap();
            ProjectSpec::new(format!("project-{p}"), config, dataset).with_priority((3 - p) as u32)
        })
        .collect();
    (specs, pool)
}

fn run(mode: ExecMode) -> ServiceOutcome {
    let (specs, pool) = scenario();
    let config = ServiceConfig::default()
        .with_shards(3)
        .with_mode(mode)
        .with_watermarks(8, 20.0);
    let service = Service::new(config).unwrap();
    let mut rng = seeded(0xBEEF);
    service.run(&specs, &pool, &mut rng).unwrap()
}

const GOLDEN_SERVICE_LABELS: [&str; 3] = [
    "000001000000010100100101000100",
    "101100000100101100000111",
    "111011110011110100111010101001011001",
];
const GOLDEN_SERVICE_SPENT: [f64; 3] = [90.0, 72.0, 108.0];

#[test]
fn three_project_run_reproduces_the_golden_labels() {
    let outcome = run(ExecMode::SingleThread);
    assert_eq!(outcome.reports.len(), 3);
    if std::env::var("GOLDEN_CAPTURE").is_ok() {
        for (p, report) in outcome.reports.iter().enumerate() {
            let o = report.outcome.as_ref().unwrap();
            println!(
                "project {p}: labels {:?} spent {}",
                render(&o.labels),
                o.budget_spent
            );
        }
        return;
    }
    for (p, report) in outcome.reports.iter().enumerate() {
        assert_eq!(report.status, ProjectStatus::Completed, "project {p}");
        let o = report.outcome.as_ref().unwrap();
        assert_eq!(render(&o.labels), GOLDEN_SERVICE_LABELS[p], "project {p}");
        assert!(
            (o.budget_spent - GOLDEN_SERVICE_SPENT[p]).abs() < 1e-9,
            "project {p} spent {}",
            o.budget_spent
        );
    }
}

#[test]
fn worker_pool_is_bit_identical_to_single_thread_at_every_width() {
    let baseline = run(ExecMode::SingleThread);
    for workers in [1usize, 2, 4] {
        let parallel = run(ExecMode::WorkerPool { workers });
        assert_eq!(
            baseline.trace, parallel.trace,
            "trace diverged at width {workers}"
        );
        for (p, (a, b)) in baseline.reports.iter().zip(&parallel.reports).enumerate() {
            assert_eq!(
                a.outcome.as_ref().unwrap().labels,
                b.outcome.as_ref().unwrap().labels,
                "labels diverged for project {p} at width {workers}"
            );
            // Per-project wall time is pinned to zero, so the whole
            // metrics struct must match bit-for-bit.
            assert_eq!(a.metrics, b.metrics, "metrics diverged at width {workers}");
        }
        assert_eq!(
            baseline.aggregate.fairness_spread,
            parallel.aggregate.fairness_spread
        );
        assert_eq!(
            baseline.aggregate.sim_duration,
            parallel.aggregate.sim_duration
        );
    }
}

#[test]
fn admission_rejects_past_capacity_without_moving_money() {
    let (specs, pool) = scenario();
    let config = ServiceConfig::default()
        .with_capacity(2)
        .with_admission(AdmissionPolicy::Reject)
        .with_shards(2);
    let service = Service::new(config).unwrap();
    let mut rng = seeded(0xBEEF);
    let outcome = service.run(&specs, &pool, &mut rng).unwrap();
    assert_eq!(outcome.reports[0].status, ProjectStatus::Completed);
    assert_eq!(outcome.reports[1].status, ProjectStatus::Completed);
    assert_eq!(outcome.reports[2].status, ProjectStatus::Rejected);
    assert!(outcome.reports[2].outcome.is_none());
    assert!(outcome.reports[2].metrics.is_none());
    assert!(!outcome.trace.iter().any(|(p, _)| *p == 2));
    assert_eq!(outcome.aggregate.admitted, 2);
    assert_eq!(outcome.aggregate.rejected, 1);
}

#[test]
fn queued_projects_activate_when_capacity_frees_up() {
    let (specs, pool) = scenario();
    let config = ServiceConfig::default()
        .with_capacity(1)
        .with_admission(AdmissionPolicy::Queue)
        .with_shards(2);
    let service = Service::new(config).unwrap();
    let mut rng = seeded(0xBEEF);
    let outcome = service.run(&specs, &pool, &mut rng).unwrap();
    for (p, report) in outcome.reports.iter().enumerate() {
        assert_eq!(report.status, ProjectStatus::Completed, "project {p}");
        assert!(report.outcome.is_some(), "project {p}");
    }
    // With one slot, later projects start strictly after earlier ones:
    // the first trace event tagged with each project is ordered.
    let first_event = |p: usize| outcome.trace.iter().position(|(q, _)| *q == p).unwrap();
    assert!(first_event(0) < first_event(1));
    assert!(first_event(1) < first_event(2));
}

#[test]
fn budgets_are_isolated_per_project() {
    let outcome = run(ExecMode::SingleThread);
    let budgets = [90.0, 72.0, 108.0];
    let mut total = 0.0;
    for (p, report) in outcome.reports.iter().enumerate() {
        let m = report.metrics.as_ref().unwrap();
        assert!(
            m.budget_spent <= budgets[p] + 1e-9,
            "project {p} overspent: {} > {}",
            m.budget_spent,
            budgets[p]
        );
        total += m.budget_spent;
    }
    assert!((outcome.aggregate.total_spent - total).abs() < 1e-9);
}
