//! Golden-trace regression test: a fixed-seed CrowdRL run is snapshotted
//! (inferred labels, budget spent, F1) and pinned here. Any refactor of the
//! hot paths — parallel kernels, cached featurization, batched DQN scoring
//! — must reproduce the snapshot bit-for-bit; both the batch workflow and
//! the asynchronous runtime are covered.
//!
//! If a PR *intentionally* changes the numerics (new algorithm, not a new
//! schedule), re-capture by running with `GOLDEN_CAPTURE=1` and paste the
//! printed constants below.

use crowdrl::eval::evaluate_labels;
use crowdrl::prelude::*;
use crowdrl::types::rng::seeded;

/// Labels rendered as one character per object: the class digit, or `.`
/// for unlabelled. Compact enough to pin, precise enough to catch any
/// single flipped label.
fn render(labels: &[Option<ClassId>]) -> String {
    labels
        .iter()
        .map(|l| match l {
            Some(ClassId(c)) => char::from_digit(*c as u32, 10).unwrap_or('?'),
            None => '.',
        })
        .collect()
}

fn scenario() -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(0xD00D);
    let dataset = DatasetSpec::gaussian("golden", 80, 4, 2)
        .with_separation(2.5)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
    (dataset, pool)
}

fn config(budget: f64) -> CrowdRlConfig {
    CrowdRlConfig::builder().budget(budget).build().unwrap()
}

/// F1 rounded to 6 decimal places: fixed precision makes the constant
/// readable while still catching any real numeric drift.
fn f1_fixed(dataset: &Dataset, labels: &[Option<ClassId>]) -> f64 {
    let m = evaluate_labels(dataset, labels).unwrap();
    (m.f1 * 1e6).round() / 1e6
}

const GOLDEN_BATCH_LABELS: &str =
    "10100111010010111000000000101101010100001000100011000100000110011100011111111110";
const GOLDEN_BATCH_SPENT: f64 = 220.0;
const GOLDEN_BATCH_F1: f64 = 0.953488;

const GOLDEN_ASYNC_LABELS: &str =
    "11000111011010111010101000101001010100001000100010000100010110011100011111111110";
const GOLDEN_ASYNC_SPENT: f64 = 220.0;
const GOLDEN_ASYNC_F1: f64 = 0.939759;

#[test]
fn batch_run_reproduces_the_golden_trace() {
    let (dataset, pool) = scenario();
    let mut rng = seeded(77);
    let outcome = CrowdRl::new(config(220.0))
        .run(&dataset, &pool, &mut rng)
        .unwrap();
    let labels = render(&outcome.labels);
    let f1 = f1_fixed(&dataset, &outcome.labels);
    if std::env::var("GOLDEN_CAPTURE").is_ok() {
        println!("BATCH_LABELS={labels}");
        println!("BATCH_SPENT={:?}", outcome.budget_spent);
        println!("BATCH_F1={f1:?}");
        return;
    }
    assert_eq!(labels, GOLDEN_BATCH_LABELS, "inferred labels drifted");
    assert_eq!(
        outcome.budget_spent, GOLDEN_BATCH_SPENT,
        "budget spend drifted"
    );
    assert_eq!(f1, GOLDEN_BATCH_F1, "F1 drifted");
}

#[test]
fn async_run_reproduces_the_golden_trace() {
    let (dataset, pool) = scenario();
    let mut rng = seeded(78);
    let result = CrowdRl::new(config(220.0))
        .run_async(&dataset, &pool, &ServeConfig::default(), &mut rng)
        .unwrap();
    let labels = render(&result.outcome.labels);
    let f1 = f1_fixed(&dataset, &result.outcome.labels);
    if std::env::var("GOLDEN_CAPTURE").is_ok() {
        println!("ASYNC_LABELS={labels}");
        println!("ASYNC_SPENT={:?}", result.outcome.budget_spent);
        println!("ASYNC_F1={f1:?}");
        return;
    }
    assert_eq!(labels, GOLDEN_ASYNC_LABELS, "inferred labels drifted");
    assert_eq!(
        result.outcome.budget_spent, GOLDEN_ASYNC_SPENT,
        "budget spend drifted"
    );
    assert_eq!(f1, GOLDEN_ASYNC_F1, "F1 drifted");
}
