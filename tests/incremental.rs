//! Incremental inference engine: warm-started, dirty-set EM across staged
//! answer deliveries must agree with one cold inference over the final
//! answer set — same labels (≥99%), same accuracy (within 0.01) — and the
//! dirty-set E-step must reproduce the full sweep bit-for-bit on the
//! objects it touches.

use crowdrl::inference::{
    DawidSkene, EngineConfig, InferenceEngine, InferenceResult, JointConfig, JointInference,
};
use crowdrl::nn::{ClassifierConfig, SoftmaxClassifier};
use crowdrl::prelude::*;
use crowdrl::sim::Platform;
use crowdrl::types::rng::{sample_indices, seeded};
use crowdrl::types::{Budget, ObjectId};

fn scenario(n: usize, seed: u64) -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(seed);
    let dataset = DatasetSpec::gaussian("inc", n, 4, 2)
        .with_separation(2.5)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(4, 1).generate(2, &mut rng).unwrap();
    (dataset, pool)
}

fn fresh_classifier(dim: usize, k: usize, seed: u64) -> SoftmaxClassifier {
    let mut rng = seeded(seed);
    SoftmaxClassifier::new(
        ClassifierConfig {
            epochs: 15,
            ..ClassifierConfig::default()
        },
        dim,
        k,
        &mut rng,
    )
    .unwrap()
}

/// Ask 3 random annotators about each object in `objects`.
fn ask_stage<R: rand::Rng>(
    platform: &mut Platform<'_>,
    pool: &AnnotatorPool,
    objects: std::ops::Range<usize>,
    rng: &mut R,
) {
    for obj in objects {
        let panel: Vec<_> = sample_indices(rng, pool.len(), 3)
            .into_iter()
            .map(|i| pool.profiles()[i].id)
            .collect();
        platform.ask_many(ObjectId(obj), &panel, rng);
    }
}

/// Label agreement between two results over the objects both labelled.
fn agreement(a: &InferenceResult, b: &InferenceResult) -> f64 {
    let mut total = 0usize;
    let mut same = 0usize;
    for obj in a.inferred_objects() {
        if let (Some(la), Some(lb)) = (a.label(obj), b.label(obj)) {
            total += 1;
            if la == lb {
                same += 1;
            }
        }
    }
    assert!(total > 0, "no commonly labelled objects");
    same as f64 / total as f64
}

/// Accuracy of a result's MAP labels over its inferred objects.
fn accuracy(dataset: &Dataset, result: &InferenceResult) -> f64 {
    let mut total = 0usize;
    let mut ok = 0usize;
    for obj in result.inferred_objects() {
        if let Some(label) = result.label(obj) {
            total += 1;
            if label == dataset.truth(obj.index()) {
                ok += 1;
            }
        }
    }
    assert!(total > 0, "no labelled objects");
    ok as f64 / total as f64
}

#[test]
fn joint_incremental_matches_cold_inference() {
    let (dataset, pool) = scenario(120, 1);
    let mut platform = Platform::new(&dataset, &pool, Budget::new(1e6).unwrap());
    let mut ask_rng = seeded(2);
    let model = JointInference {
        config: JointConfig::default(),
    };

    // Warm path: answers arrive in six stages of 20 objects; the engine
    // carries posteriors/confusions/classifier state between stages.
    let mut engine = InferenceEngine::joint(model.clone(), EngineConfig::default());
    let mut warm_classifier = fresh_classifier(dataset.dim(), dataset.num_classes(), 3);
    let mut warm_rng = seeded(4);
    let mut warm = None;
    for stage in 0..6 {
        ask_stage(
            &mut platform,
            &pool,
            stage * 20..(stage + 1) * 20,
            &mut ask_rng,
        );
        warm = Some(
            engine
                .infer(
                    &dataset,
                    platform.answers(),
                    pool.profiles(),
                    &mut warm_classifier,
                    &mut warm_rng,
                )
                .unwrap(),
        );
    }
    let warm = warm.unwrap();

    // Cold path: one full inference over the final answer set with a fresh
    // classifier seeded identically.
    let mut cold_classifier = fresh_classifier(dataset.dim(), dataset.num_classes(), 3);
    let mut cold_rng = seeded(4);
    let cold = model
        .infer(
            &dataset,
            platform.answers(),
            pool.profiles(),
            &mut cold_classifier,
            &mut cold_rng,
        )
        .unwrap();

    assert_eq!(
        warm.inferred_objects().count(),
        cold.inferred_objects().count(),
        "warm and cold must cover the same objects"
    );
    let agree = agreement(&warm, &cold);
    assert!(agree >= 0.99, "label agreement {agree}");
    let (wa, ca) = (accuracy(&dataset, &warm), accuracy(&dataset, &cold));
    assert!((wa - ca).abs() <= 0.01, "warm acc {wa} vs cold acc {ca}");
}

#[test]
fn dawid_skene_incremental_matches_cold_inference() {
    let (dataset, pool) = scenario(120, 5);
    let mut platform = Platform::new(&dataset, &pool, Budget::new(1e6).unwrap());
    let mut ask_rng = seeded(6);
    let ds = DawidSkene::default();

    let mut engine = InferenceEngine::dawid_skene(ds.clone(), EngineConfig::default());
    // Dawid–Skene never reads the classifier; any instance satisfies the
    // engine's signature.
    let mut dummy = fresh_classifier(dataset.dim(), dataset.num_classes(), 7);
    let mut warm_rng = seeded(8);
    let mut warm = None;
    for stage in 0..6 {
        ask_stage(
            &mut platform,
            &pool,
            stage * 20..(stage + 1) * 20,
            &mut ask_rng,
        );
        warm = Some(
            engine
                .infer(
                    &dataset,
                    platform.answers(),
                    pool.profiles(),
                    &mut dummy,
                    &mut warm_rng,
                )
                .unwrap(),
        );
    }
    let warm = warm.unwrap();
    let cold = ds
        .infer(platform.answers(), dataset.num_classes(), pool.len())
        .unwrap();

    assert_eq!(
        warm.inferred_objects().count(),
        cold.inferred_objects().count()
    );
    let agree = agreement(&warm, &cold);
    assert!(agree >= 0.99, "label agreement {agree}");
    let (wa, ca) = (accuracy(&dataset, &warm), accuracy(&dataset, &cold));
    assert!((wa - ca).abs() <= 0.01, "warm acc {wa} vs cold acc {ca}");
}

#[test]
fn dirty_set_sweep_matches_full_sweep_on_touched_objects() {
    // After one new answer lands on a single object, a dirty-set E-step
    // and a full-sweep E-step start from the same carried state and the
    // same freshly re-estimated confusions, so the posterior they produce
    // for that object must be bit-identical — the dirty set only skips
    // work, it never changes it.
    let (dataset, pool) = scenario(80, 9);
    let mut platform = Platform::new(&dataset, &pool, Budget::new(1e6).unwrap());
    let mut ask_rng = seeded(10);
    ask_stage(&mut platform, &pool, 0..60, &mut ask_rng);

    let ds = DawidSkene::default();
    let mut dummy = fresh_classifier(dataset.dim(), dataset.num_classes(), 11);
    let mut rng = seeded(12);
    let mut engine = InferenceEngine::dawid_skene(
        ds,
        EngineConfig {
            warm_start: true,
            full_sweep_every: 1000, // never full-sweep on the dirty engine
            warm_max_iters: 1,
            warm_epochs: 1,
        },
    );
    // Cold call converges and captures the carried state.
    engine
        .infer(
            &dataset,
            platform.answers(),
            pool.profiles(),
            &mut dummy,
            &mut rng,
        )
        .unwrap();

    // Fork the converged engine: same state, different sweep policy.
    let mut full_engine = engine.clone();
    full_engine.set_config(EngineConfig {
        full_sweep_every: 1, // every warm call sweeps all answered objects
        ..engine.config().clone()
    });

    // One new answer on one object.
    let target = ObjectId(3);
    let panel = [pool.profiles()[pool.len() - 1].id];
    platform.ask_many(target, &panel, &mut ask_rng);

    let dirty = engine
        .infer(
            &dataset,
            platform.answers(),
            pool.profiles(),
            &mut dummy,
            &mut rng,
        )
        .unwrap();
    let full = full_engine
        .infer(
            &dataset,
            platform.answers(),
            pool.profiles(),
            &mut dummy,
            &mut rng,
        )
        .unwrap();

    assert_eq!(
        dirty.posteriors[target.index()],
        full.posteriors[target.index()],
        "dirty-set posterior for the touched object must match the full sweep exactly"
    );
    // And the overall labelling still agrees.
    let agree = agreement(&dirty, &full);
    assert!(agree >= 0.99, "label agreement {agree}");
}

#[test]
fn exported_engine_state_resumes_bit_identically() {
    // Kill-and-restore: snapshot the engine, classifier and RNG after
    // stage 3 of 6, rebuild everything from the snapshot, replay the
    // remaining stages — the final result must be bit-identical to the
    // uninterrupted run, not merely statistically close.
    let (dataset, pool) = scenario(100, 17);
    let model = JointInference {
        config: JointConfig::default(),
    };
    let config = EngineConfig::default();

    // Uninterrupted run, capturing the mid-run snapshot in passing.
    let mut platform = Platform::new(&dataset, &pool, Budget::new(1e6).unwrap());
    let mut ask_rng = seeded(18);
    let mut engine = InferenceEngine::joint(model.clone(), config.clone());
    let mut classifier = fresh_classifier(dataset.dim(), dataset.num_classes(), 19);
    let mut warm_rng = seeded(20);
    let mut snapshot = None;
    let mut golden = None;
    for stage in 0..6 {
        ask_stage(
            &mut platform,
            &pool,
            stage * 16..(stage + 1) * 16,
            &mut ask_rng,
        );
        golden = Some(
            engine
                .infer(
                    &dataset,
                    platform.answers(),
                    pool.profiles(),
                    &mut classifier,
                    &mut warm_rng,
                )
                .unwrap(),
        );
        if stage == 2 {
            snapshot = Some((
                engine.export_state().expect("engine has state"),
                classifier.snapshot(),
                warm_rng.state(),
            ));
        }
    }
    let golden = golden.unwrap();
    let (engine_snap, classifier_snap, rng_state) = snapshot.unwrap();

    // Restored run: fresh objects, state loaded from the snapshot, same
    // remaining answer stages (the platform replays deterministically).
    let mut platform2 = Platform::new(&dataset, &pool, Budget::new(1e6).unwrap());
    let mut ask_rng2 = seeded(18);
    for stage in 0..3 {
        ask_stage(
            &mut platform2,
            &pool,
            stage * 16..(stage + 1) * 16,
            &mut ask_rng2,
        );
    }
    let mut engine2 = InferenceEngine::joint(model, config);
    engine2.restore_state(engine_snap, &dataset).unwrap();
    let mut classifier2 = fresh_classifier(dataset.dim(), dataset.num_classes(), 999);
    classifier2.restore(classifier_snap).unwrap();
    let mut warm_rng2 = rand::rngs::StdRng::from_state(rng_state);
    let mut resumed = None;
    for stage in 3..6 {
        ask_stage(
            &mut platform2,
            &pool,
            stage * 16..(stage + 1) * 16,
            &mut ask_rng2,
        );
        resumed = Some(
            engine2
                .infer(
                    &dataset,
                    platform2.answers(),
                    pool.profiles(),
                    &mut classifier2,
                    &mut warm_rng2,
                )
                .unwrap(),
        );
    }
    let resumed = resumed.unwrap();

    assert_eq!(golden, resumed, "restored run must match bit-for-bit");
    assert_eq!(
        classifier.network().flatten_params(),
        classifier2.network().flatten_params(),
        "classifier weights must match bit-for-bit"
    );
}

#[test]
fn unchanged_answers_return_the_cached_result() {
    let (dataset, pool) = scenario(60, 13);
    let mut platform = Platform::new(&dataset, &pool, Budget::new(1e6).unwrap());
    let mut ask_rng = seeded(14);
    ask_stage(&mut platform, &pool, 0..40, &mut ask_rng);

    let mut engine = InferenceEngine::joint(JointInference::default(), EngineConfig::default());
    let mut classifier = fresh_classifier(dataset.dim(), dataset.num_classes(), 15);
    let mut rng = seeded(16);
    let first = engine
        .infer(
            &dataset,
            platform.answers(),
            pool.profiles(),
            &mut classifier,
            &mut rng,
        )
        .unwrap();
    // Same answers again: the engine must reply from its cache — without
    // consuming any randomness (the finalize path relies on this).
    let before: u64 = rand::Rng::random(&mut rng.clone());
    let second = engine
        .infer(
            &dataset,
            platform.answers(),
            pool.profiles(),
            &mut classifier,
            &mut rng,
        )
        .unwrap();
    let after: u64 = rand::Rng::random(&mut rng.clone());
    assert_eq!(before, after, "cached reply must not consume the RNG");
    assert_eq!(first.posteriors, second.posteriors);
    assert_eq!(first.class_prior, second.class_prior);
}
