//! Chaos suite: the fault-injected asynchronous runtime stays
//! deterministic, a run killed at a checkpoint and restored from the
//! encoded snapshot finishes bit-identically to the uninterrupted run
//! (across execution modes, including killing in one mode and resuming
//! in the other), and the annotator quarantine claws back accuracy when
//! a worker drifts into a spammer.
//!
//! The faulted label string is pinned like the golden traces: re-capture
//! with `CHAOS_CAPTURE=1` only when a PR intentionally changes numerics.

use crowdrl::eval::evaluate_labels;
use crowdrl::prelude::*;
use crowdrl::serve::{
    AsyncRuntime, QuarantineConfig, RunCheckpoint, RunControl, RunOutcome, SupervisorConfig,
    TraceEvent,
};
use crowdrl::sim::{FaultPlan, QualityDrift};
use crowdrl::types::rng::seeded;

/// Labels rendered one character per object (class digit, `.` = none).
fn render(labels: &[Option<ClassId>]) -> String {
    labels
        .iter()
        .map(|l| match l {
            Some(ClassId(c)) => char::from_digit(*c as u32, 10).unwrap_or('?'),
            None => '.',
        })
        .collect()
}

/// Same fixed scenario as the golden traces: 80 Gaussian objects, 2
/// classes, 3 workers + 1 expert.
fn scenario() -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(0xD00D);
    let dataset = DatasetSpec::gaussian("golden", 80, 4, 2)
        .with_separation(2.5)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
    (dataset, pool)
}

fn config(budget: f64) -> CrowdRlConfig {
    CrowdRlConfig::builder().budget(budget).build().unwrap()
}

/// A plan that exercises every stochastic fault class at once.
fn mixed_faults() -> FaultPlan {
    FaultPlan {
        no_show_rate: 0.06,
        abandon_rate: 0.04,
        straggler_rate: 0.10,
        duplicate_rate: 0.10,
        ..FaultPlan::default()
    }
}

/// Serve config for the kill/restore runs: mixed faults, exponential
/// backoff on retries, a checkpoint every 2 refreshes.
fn chaos_serve(mode: ExecMode) -> ServeConfig {
    ServeConfig::default()
        .with_mode(mode)
        .with_faults(mixed_faults())
        .with_supervisor(SupervisorConfig {
            backoff_base: 4.0,
            ..SupervisorConfig::default()
        })
        .with_checkpoint_every(2)
}

/// The faulted run's labels, pinned. Any drift in the fault stream, the
/// backoff schedule or checkpoint plumbing shows up here first.
const CHAOS_LABELS: &str =
    "10000011010010011011000000101001010101001010100010000110010110111100011111111110";

fn run_uninterrupted(serve: &ServeConfig) -> AsyncOutcome {
    let (dataset, pool) = scenario();
    let mut rng = seeded(78);
    AsyncRuntime::new(config(220.0), serve.clone())
        .run(&dataset, &pool, &mut rng)
        .unwrap()
}

/// Run until the `halt_at`-th checkpoint, kill there, and return the
/// snapshot exactly as it would sit on disk: an encoded string.
fn run_killed(serve: &ServeConfig, halt_at: usize) -> String {
    let (dataset, pool) = scenario();
    let mut rng = seeded(78);
    let mut seen = 0usize;
    let mut encoded: Option<String> = None;
    let mut sink = |ckpt: RunCheckpoint| {
        seen += 1;
        if seen == halt_at {
            encoded = Some(ckpt.encode());
            RunControl::Halt
        } else {
            RunControl::Continue
        }
    };
    let outcome = AsyncRuntime::new(config(220.0), serve.clone())
        .run_with_checkpoints(&dataset, &pool, &mut rng, &mut sink)
        .unwrap();
    assert!(
        matches!(outcome, RunOutcome::Halted),
        "run must halt at checkpoint {halt_at}"
    );
    encoded.expect("checkpoint must have been cut before the halt")
}

fn resume_from(serve: &ServeConfig, encoded: &str) -> AsyncOutcome {
    let (dataset, pool) = scenario();
    let mut rng = seeded(78);
    let ckpt = RunCheckpoint::decode(encoded).unwrap();
    let outcome = AsyncRuntime::new(config(220.0), serve.clone())
        .resume(&dataset, &pool, &mut rng, ckpt, &mut |_| {
            RunControl::Continue
        })
        .unwrap();
    match outcome {
        RunOutcome::Completed(outcome) => *outcome,
        RunOutcome::Halted => panic!("resumed run halted although the sink always continues"),
    }
}

#[test]
fn kill_and_restore_matches_uninterrupted() {
    let single = chaos_serve(ExecMode::SingleThread);
    let pool4 = chaos_serve(ExecMode::WorkerPool { workers: 4 });

    let baseline = run_uninterrupted(&single);
    let labels = render(&baseline.outcome.labels);
    if std::env::var("CHAOS_CAPTURE").is_ok() {
        println!("CHAOS_LABELS={labels}");
        return;
    }
    assert_eq!(labels, CHAOS_LABELS, "faulted run drifted");

    // The worker pool replays the identical trace by construction, so one
    // baseline serves every kill/resume combination.
    let pooled = run_uninterrupted(&pool4);
    assert_eq!(pooled.trace, baseline.trace, "worker pool diverged");

    // Kill at different watermarks in each mode, resume in both the same
    // and the *other* mode (the config fingerprint covers the learning
    // config, not the execution mode), and demand bit-identity.
    for (kill_mode, halt_at) in [(&single, 1), (&single, 3), (&pool4, 2)] {
        let encoded = run_killed(kill_mode, halt_at);
        for resume_mode in [&single, &pool4] {
            let resumed = resume_from(resume_mode, &encoded);
            assert_eq!(
                render(&resumed.outcome.labels),
                labels,
                "labels after kill@{halt_at}/restore drifted"
            );
            assert_eq!(
                resumed.outcome.budget_spent.to_bits(),
                baseline.outcome.budget_spent.to_bits(),
                "budget spend after kill@{halt_at}/restore drifted"
            );
            assert_eq!(
                resumed.trace, baseline.trace,
                "event trace after kill@{halt_at}/restore drifted"
            );
        }
    }
}

#[test]
fn restore_rejects_config_drift() {
    let serve = chaos_serve(ExecMode::SingleThread);
    let encoded = run_killed(&serve, 1);
    let (dataset, pool) = scenario();
    let mut rng = seeded(78);
    let ckpt = RunCheckpoint::decode(&encoded).unwrap();
    // A different budget is a different learning config: the fingerprint
    // check must refuse to graft the snapshot onto it.
    let err = AsyncRuntime::new(config(150.0), serve)
        .resume(&dataset, &pool, &mut rng, ckpt, &mut |_| {
            RunControl::Continue
        })
        .unwrap_err();
    assert!(
        err.to_string().contains("fingerprint"),
        "want fingerprint mismatch, got: {err}"
    );
}

/// Drift worker 0 into a spammer immediately; the breaker must open
/// within a bounded number of its post-drift assignments.
#[test]
fn quarantine_trips_on_spammer_drift() {
    let spammer = AnnotatorId(0);
    let serve = ServeConfig::default()
        .with_faults(FaultPlan {
            drifts: vec![QualityDrift {
                annotator: spammer,
                at: 0.0,
            }],
            ..FaultPlan::default()
        })
        .with_quarantine(QuarantineConfig {
            enabled: true,
            min_answers: 6,
            ..QuarantineConfig::default()
        });
    let result = run_uninterrupted(&serve);

    let tripped_at = result
        .trace
        .iter()
        .position(
            |e| matches!(e, TraceEvent::Quarantined { annotator, .. } if *annotator == spammer),
        )
        .expect("spammer was never quarantined");
    let dispatches_before = result.trace[..tripped_at]
        .iter()
        .filter(|e| matches!(e, TraceEvent::Dispatched { annotator, .. } if *annotator == spammer))
        .count();
    assert!(
        dispatches_before <= 30,
        "breaker too slow: {dispatches_before} spammer assignments before quarantine"
    );
}

/// With two of four workers drifted into spammers, quarantining them
/// must recover at least half of the accuracy the drift cost, at equal
/// budget. Four classes make spam identifiable: a spammer agrees with
/// the truth 25% of the time, far enough below a real worker for the
/// smoothed quality estimates to separate them.
#[test]
fn quarantine_recovers_accuracy_under_drift() {
    let mut rng = seeded(0xD00D);
    let dataset = DatasetSpec::gaussian("chaos", 80, 6, 4)
        .with_separation(3.0)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(4, 1).generate(4, &mut rng).unwrap();
    let drifts = vec![
        QualityDrift {
            annotator: AnnotatorId(0),
            at: 0.0,
        },
        QualityDrift {
            annotator: AnnotatorId(1),
            at: 0.0,
        },
    ];
    // Mean accuracy over a few seeds: a single 80-object run is noisy
    // enough (~±0.04) to swamp the effect being measured.
    let accuracy = |serve: &ServeConfig| {
        let mut total = 0.0;
        for seed in [78, 79, 80, 81] {
            let mut rng = seeded(seed);
            let result = AsyncRuntime::new(config(350.0), serve.clone())
                .run(&dataset, &pool, &mut rng)
                .unwrap();
            total += evaluate_labels(&dataset, &result.outcome.labels)
                .unwrap()
                .accuracy;
        }
        total / 4.0
    };

    let base = ServeConfig::default();
    let acc_clean = accuracy(&base);
    let faulted = base.with_faults(FaultPlan {
        drifts: drifts.clone(),
        ..FaultPlan::default()
    });
    let acc_faulty = accuracy(&faulted);
    // The incremental EM shrinks everyone toward the prior, so the
    // spammer/worker gap sits around scores 0.40 vs 0.55: trip at 0.5
    // once 16 answers have stabilised the estimate. Two good workers +
    // the expert still meet a quorum of 2, so the breakers stay open;
    // long probation keeps the spammers benched instead of cycling back
    // every few refreshes.
    let acc_quarantined = accuracy(&faulted.clone().with_quarantine(QuarantineConfig {
        enabled: true,
        min_answers: 16,
        score_threshold: 0.5,
        probation_refreshes: 100,
        min_pool: 2,
        ..QuarantineConfig::default()
    }));

    let loss = acc_clean - acc_faulty;
    let recovered = acc_quarantined - acc_faulty;
    assert!(
        loss > 0.02,
        "drift must cost measurable accuracy (clean {acc_clean:.3}, faulty {acc_faulty:.3})"
    );
    assert!(
        recovered >= 0.5 * loss,
        "quarantine recovered {recovered:.3} of a {loss:.3} loss \
         (clean {acc_clean:.3}, faulty {acc_faulty:.3}, quarantined {acc_quarantined:.3})"
    );
}
