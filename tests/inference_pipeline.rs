//! Cross-crate inference tests: platform-generated answers flowing into
//! each truth-inference model, checking the paper's qualitative claims.

use crowdrl::inference::{
    ClassifierAsAnnotator, DawidSkene, InferenceResult, JointInference, MajorityVote, Pm,
};
use crowdrl::nn::{ClassifierConfig, SoftmaxClassifier};
use crowdrl::prelude::*;
use crowdrl::sim::Platform;
use crowdrl::types::rng::seeded;
use crowdrl::types::{Budget, ObjectId};

/// Ask every annotator about every object through the platform.
fn full_panel(dataset: &Dataset, pool: &AnnotatorPool, seed: u64) -> crowdrl::types::AnswerSet {
    let mut platform = Platform::new(dataset, pool, Budget::new(f64::MAX / 2.0).unwrap());
    let mut rng = seeded(seed);
    for i in 0..dataset.len() {
        for p in pool.profiles() {
            platform.ask(ObjectId(i), p.id, &mut rng).unwrap();
        }
    }
    platform.answers().clone()
}

fn accuracy(result: &InferenceResult, dataset: &Dataset) -> f64 {
    (0..dataset.len())
        .filter(|&i| result.label(ObjectId(i)) == Some(dataset.truth(i)))
        .count() as f64
        / dataset.len() as f64
}

#[test]
fn all_models_agree_on_unanimous_panels() {
    // Perfect annotators: every model must recover the truth exactly.
    let mut rng = seeded(1);
    let dataset = DatasetSpec::gaussian("u", 40, 4, 2)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(0, 3)
        .with_expert_accuracy(1.0, 1.0)
        .generate(2, &mut rng)
        .unwrap();
    let answers = full_panel(&dataset, &pool, 2);
    let mv = MajorityVote.infer(&answers, 2, 3).unwrap();
    let ds = DawidSkene::default().infer(&answers, 2, 3).unwrap();
    let pm = Pm::default().infer(&answers, 2, 3).unwrap();
    assert_eq!(accuracy(&mv, &dataset), 1.0);
    assert_eq!(accuracy(&ds, &dataset), 1.0);
    assert_eq!(accuracy(&pm, &dataset), 1.0);
}

#[test]
fn joint_model_beats_annotator_only_models_with_heterogeneous_panels() {
    // The paper's core inference claim (§V, Fig. 3): coupling the
    // classifier with annotators beats aggregating annotators alone.
    // Averaged over seeds to be robust.
    let mut joint_total = 0.0;
    let mut ds_total = 0.0;
    let seeds = [10u64, 11, 12];
    for &s in &seeds {
        let mut rng = seeded(s);
        let dataset = DatasetSpec::gaussian("h", 250, 10, 2)
            .with_separation(2.5)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
        let answers = full_panel(&dataset, &pool, s + 50);
        let ds = DawidSkene::default()
            .infer(&answers, 2, pool.len())
            .unwrap();
        let mut clf =
            SoftmaxClassifier::new(ClassifierConfig::default(), dataset.dim(), 2, &mut rng)
                .unwrap();
        let joint = JointInference::default()
            .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
            .unwrap();
        joint_total += accuracy(&joint, &dataset);
        ds_total += accuracy(&ds, &dataset);
    }
    let n = seeds.len() as f64;
    assert!(
        joint_total / n >= ds_total / n - 0.01,
        "joint ({:.3}) must not lose to DS ({:.3})",
        joint_total / n,
        ds_total / n
    );
}

#[test]
fn joint_model_beats_classifier_as_annotator() {
    // The naive composition (classifier as one more annotator) carries the
    // classifier's training bias twice; the joint model does not.
    let mut joint_total = 0.0;
    let mut naive_total = 0.0;
    let seeds = [20u64, 21, 22];
    for &s in &seeds {
        let mut rng = seeded(s);
        let dataset = DatasetSpec::gaussian("n", 200, 10, 2)
            .with_separation(2.0)
            .generate(&mut rng)
            .unwrap();
        let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
        let answers = full_panel(&dataset, &pool, s + 70);

        let mut clf_joint =
            SoftmaxClassifier::new(ClassifierConfig::default(), dataset.dim(), 2, &mut rng)
                .unwrap();
        let joint = JointInference::default()
            .infer(
                &dataset,
                &answers,
                pool.profiles(),
                &mut clf_joint,
                &mut rng,
            )
            .unwrap();
        joint_total += accuracy(&joint, &dataset);

        // Naive: train the classifier on majority-vote labels, then treat
        // it as an extra annotator in DS.
        let mv = MajorityVote.infer(&answers, 2, pool.len()).unwrap();
        let mut x = crowdrl::linalg::Matrix::zeros(dataset.len(), dataset.dim());
        let mut y = Vec::with_capacity(dataset.len());
        for i in 0..dataset.len() {
            x.row_mut(i).copy_from_slice(dataset.features(i));
            y.push(mv.label(ObjectId(i)).unwrap());
        }
        let mut clf_naive =
            SoftmaxClassifier::new(ClassifierConfig::default(), dataset.dim(), 2, &mut rng)
                .unwrap();
        clf_naive.fit_hard(&x, &y, &mut rng).unwrap();
        let naive = ClassifierAsAnnotator::default()
            .infer(&dataset, &answers, pool.len(), &clf_naive)
            .unwrap();
        naive_total += accuracy(&naive, &dataset);
    }
    let n = seeds.len() as f64;
    assert!(
        joint_total / n >= naive_total / n - 0.01,
        "joint ({:.3}) must not lose to classifier-as-annotator ({:.3})",
        joint_total / n,
        naive_total / n
    );
}

#[test]
fn expert_bounding_protects_experts_from_collusive_workers() {
    // Three identical wrong-leaning workers can outvote one expert under
    // MV; the joint model's expert bounding keeps the expert's influence.
    let mut rng = seeded(30);
    let dataset = DatasetSpec::gaussian("c", 120, 6, 2)
        .with_separation(2.0)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 1)
        .with_worker_accuracy(0.55, 0.60)
        .with_expert_accuracy(0.99, 1.0)
        .generate(2, &mut rng)
        .unwrap();
    let answers = full_panel(&dataset, &pool, 31);
    let mv = MajorityVote.infer(&answers, 2, pool.len()).unwrap();
    let mut clf =
        SoftmaxClassifier::new(ClassifierConfig::default(), dataset.dim(), 2, &mut rng).unwrap();
    let joint = JointInference::default()
        .infer(&dataset, &answers, pool.profiles(), &mut clf, &mut rng)
        .unwrap();
    let mv_acc = accuracy(&mv, &dataset);
    let joint_acc = accuracy(&joint, &dataset);
    assert!(
        joint_acc > mv_acc + 0.05,
        "joint ({joint_acc:.3}) must exploit the bounded expert over MV ({mv_acc:.3})"
    );
    // And the expert's estimated quality stays at the bound.
    let expert_quality = joint.qualities()[3];
    assert!(
        expert_quality >= 0.95 - 1e-9,
        "expert quality {expert_quality}"
    );
}
