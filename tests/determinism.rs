//! Reproducibility guarantees: every stochastic component is driven by an
//! explicit seed, so identical seeds must reproduce identical results —
//! across the simulator, the inference stack, the RL loop, and the
//! multi-threaded experiment runner.

use crowdrl::baselines::{paper_baselines, BaselineParams};
use crowdrl::eval::{Condition, ExperimentGrid};
use crowdrl::prelude::*;
use crowdrl::types::rng::seeded;

fn scenario(seed: u64) -> (Dataset, AnnotatorPool) {
    let mut rng = seeded(seed);
    let dataset = DatasetSpec::gaussian("det", 60, 4, 2)
        .with_separation(2.5)
        .generate(&mut rng)
        .unwrap();
    let pool = PoolSpec::new(3, 1).generate(2, &mut rng).unwrap();
    (dataset, pool)
}

#[test]
fn crowdrl_runs_are_bit_reproducible() {
    let (dataset, pool) = scenario(1);
    let run = |seed: u64| {
        let config = CrowdRlConfig::builder().budget(200.0).build().unwrap();
        let mut rng = seeded(seed);
        CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap()
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.budget_spent, b.budget_spent);
    assert_eq!(a.total_answers, b.total_answers);
    assert_eq!(a.iterations, b.iterations);
    // A different seed gives a different trajectory.
    let c = run(43);
    assert!(
        a.labels != c.labels || a.total_answers != c.total_answers,
        "different seeds should explore differently"
    );
}

#[test]
fn every_baseline_is_reproducible() {
    let (dataset, pool) = scenario(2);
    let params = BaselineParams::with_budget(180.0);
    for strategy in paper_baselines() {
        let run = |seed: u64| {
            let mut rng = seeded(seed);
            strategy.run(&dataset, &pool, &params, &mut rng).unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(
            a.labels,
            b.labels,
            "{} must be reproducible",
            strategy.name()
        );
        assert_eq!(a.budget_spent, b.budget_spent, "{}", strategy.name());
    }
}

#[test]
fn parallel_experiment_grid_is_schedule_independent() {
    // The grid derives per-cell seeds, so thread count must not change any
    // number.
    let (dataset, pool) = scenario(3);
    let make_conditions = || {
        vec![Condition {
            dataset: dataset.clone(),
            pool: pool.clone(),
            params: BaselineParams::with_budget(150.0),
        }]
    };
    let strategies = paper_baselines();
    let single = ExperimentGrid {
        repetitions: 2,
        master_seed: 99,
        threads: 1,
    }
    .run(&strategies, &make_conditions())
    .unwrap();
    let parallel = ExperimentGrid {
        repetitions: 2,
        master_seed: 99,
        threads: 4,
    }
    .run(&strategies, &make_conditions())
    .unwrap();
    assert_eq!(single.len(), parallel.len());
    for (a, b) in single.iter().zip(&parallel) {
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.metrics.accuracy, b.metrics.accuracy, "{}", a.strategy);
        assert_eq!(a.budget_spent, b.budget_spent, "{}", a.strategy);
    }
}

#[test]
fn results_are_invariant_to_worker_pool_size() {
    // The parallel hot paths (blocked matmul, chunked E/M-steps, batched
    // DQN scoring) fix chunk boundaries by data size and merge partials in
    // chunk-index order, so the worker-pool size must never change a bit
    // of the output — batch workflow and async runtime alike.
    let (dataset, pool) = scenario(4);
    let batch_run = || {
        let config = CrowdRlConfig::builder().budget(200.0).build().unwrap();
        let mut rng = seeded(21);
        CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap()
    };
    let async_run = || {
        let config = CrowdRlConfig::builder().budget(150.0).build().unwrap();
        let mut rng = seeded(22);
        CrowdRl::new(config)
            .run_async(&dataset, &pool, &ServeConfig::default(), &mut rng)
            .unwrap()
    };

    crowdrl::linalg::pool::set_threads(1);
    let batch_ref = batch_run();
    let async_ref = async_run();
    for threads in [2usize, 4] {
        crowdrl::linalg::pool::set_threads(threads);
        let batch = batch_run();
        assert_eq!(batch_ref.labels, batch.labels, "{threads} threads");
        assert_eq!(
            batch_ref.budget_spent, batch.budget_spent,
            "{threads} threads"
        );
        assert_eq!(
            batch_ref.total_answers, batch.total_answers,
            "{threads} threads"
        );
        assert_eq!(batch_ref.iterations, batch.iterations, "{threads} threads");
        let run = async_run();
        assert_eq!(async_ref.trace, run.trace, "{threads} threads");
        assert_eq!(
            async_ref.outcome.labels, run.outcome.labels,
            "{threads} threads"
        );
        assert_eq!(
            async_ref.outcome.budget_spent, run.outcome.budget_spent,
            "{threads} threads"
        );
    }
    // Restore the environment-derived default for the rest of the suite.
    crowdrl::linalg::pool::set_threads(0);
}

#[test]
fn incremental_engine_is_reproducible_at_every_pool_width() {
    // The warm engine's dirty-set E-step chunks its *active* set with the
    // same fixed chunk geometry as the cold sweep and merges partials in
    // chunk-index order, so staged incremental inference must be
    // bit-identical run-to-run and at any worker-pool size.
    use crowdrl::inference::{EngineConfig, InferenceEngine, JointInference};
    use crowdrl::nn::{ClassifierConfig, SoftmaxClassifier};
    use crowdrl::sim::Platform;
    use crowdrl::types::rng::sample_indices;
    use crowdrl::types::{Budget, ObjectId};

    let (dataset, pool) = scenario(6);
    let staged_run = || {
        let mut platform = Platform::new(&dataset, &pool, Budget::new(1e6).unwrap());
        let mut ask_rng = seeded(51);
        let mut em_rng = seeded(52);
        let mut classifier = SoftmaxClassifier::new(
            ClassifierConfig::default(),
            dataset.dim(),
            dataset.num_classes(),
            &mut seeded(53),
        )
        .unwrap();
        let mut engine = InferenceEngine::joint(JointInference::default(), EngineConfig::default());
        let mut result = None;
        for stage in 0..4 {
            for obj in stage * 15..(stage + 1) * 15 {
                let panel: Vec<_> = sample_indices(&mut ask_rng, pool.len(), 3)
                    .into_iter()
                    .map(|i| pool.profiles()[i].id)
                    .collect();
                platform.ask_many(ObjectId(obj), &panel, &mut ask_rng);
            }
            result = Some(
                engine
                    .infer(
                        &dataset,
                        platform.answers(),
                        pool.profiles(),
                        &mut classifier,
                        &mut em_rng,
                    )
                    .unwrap(),
            );
        }
        result.unwrap()
    };

    crowdrl::linalg::pool::set_threads(1);
    let reference = staged_run();
    let repeat = staged_run();
    assert_eq!(reference.posteriors, repeat.posteriors, "repeat run");
    assert_eq!(reference.class_prior, repeat.class_prior, "repeat run");
    for threads in [2usize, 4] {
        crowdrl::linalg::pool::set_threads(threads);
        let run = staged_run();
        assert_eq!(reference.posteriors, run.posteriors, "{threads} threads");
        assert_eq!(reference.class_prior, run.class_prior, "{threads} threads");
        assert_eq!(reference.confusions, run.confusions, "{threads} threads");
    }
    crowdrl::linalg::pool::set_threads(0);
}

#[test]
fn dataset_and_pool_generation_are_seed_stable() {
    let (d1, _) = scenario(10);
    let (d2, _) = scenario(10);
    assert_eq!(d1, d2);
    let mut rng_a = seeded(11);
    let mut rng_b = seeded(11);
    let p1 = PoolSpec::new(4, 2).generate(3, &mut rng_a).unwrap();
    let p2 = PoolSpec::new(4, 2).generate(3, &mut rng_b).unwrap();
    for (a, b) in p1.profiles().iter().zip(p2.profiles()) {
        assert_eq!(a, b);
    }
    for i in 0..p1.len() {
        let id = crowdrl::types::AnnotatorId(i);
        assert_eq!(p1.latent_confusion(id), p2.latent_confusion(id));
    }
}

#[test]
fn recording_a_trace_never_changes_the_run() {
    // The observability layer is read-only: every recording call feeds on
    // values the run already computed, and wall-clock timestamps exist
    // only in the trace output. A run with a recorder installed must
    // therefore be bit-identical to the same run with recording disabled.
    let (dataset, pool) = scenario(5);
    let batch_run = || {
        let config = CrowdRlConfig::builder().budget(200.0).build().unwrap();
        let mut rng = seeded(31);
        CrowdRl::new(config).run(&dataset, &pool, &mut rng).unwrap()
    };
    let async_run = || {
        let config = CrowdRlConfig::builder().budget(150.0).build().unwrap();
        let mut rng = seeded(32);
        CrowdRl::new(config)
            .run_async(&dataset, &pool, &ServeConfig::default(), &mut rng)
            .unwrap()
    };

    crowdrl::obs::Recorder::disabled().install();
    let batch_off = batch_run();
    let async_off = async_run();

    let sink = crowdrl::obs::BufferSink::new();
    crowdrl::obs::Recorder::to_writer(Box::new(sink.clone())).install();
    let batch_on = batch_run();
    let async_on = async_run();
    crowdrl::obs::shutdown();

    assert_eq!(batch_off.labels, batch_on.labels);
    assert_eq!(batch_off.budget_spent, batch_on.budget_spent);
    assert_eq!(batch_off.total_answers, batch_on.total_answers);
    assert_eq!(batch_off.iterations, batch_on.iterations);
    assert_eq!(async_off.trace, async_on.trace);
    assert_eq!(async_off.outcome.labels, async_on.outcome.labels);
    assert_eq!(
        async_off.outcome.budget_spent,
        async_on.outcome.budget_spent
    );
    assert_eq!(
        async_off.metrics.answers_delivered,
        async_on.metrics.answers_delivered
    );

    // And the recorded trace is real: non-empty, parseable JSONL with
    // completed spans from both execution paths.
    let trace = crowdrl::obs::analyze::parse_trace(&sink.contents()).unwrap();
    assert!(!trace.events.is_empty());
    let profile = trace.profile();
    let names: Vec<&str> = profile.iter().map(|p| p.name.as_str()).collect();
    assert!(names.contains(&"workflow.run"), "{names:?}");
    assert!(names.contains(&"serve.run"), "{names:?}");
}
